"""Packaging shim; all metadata lives in pyproject.toml.

The one thing that cannot be expressed declaratively is the *optional*
compiled kernel: ``repro/core/_kernel.c`` holds C implementations of the
scheduler inner loops (see ``repro/core/kernel.py`` for the
``REPRO_KERNEL`` backend contract).  ``optional=True`` makes the build
best-effort -- on a machine without a C toolchain the extension is simply
skipped and the engine runs its pure-Python loops, bit-identically.

Build it in place for development with::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup

setup(
    ext_modules=[
        Extension(
            "repro.core._kernel",
            sources=["src/repro/core/_kernel.c"],
            optional=True,
        ),
    ],
)
