#!/usr/bin/env python
"""Run every experiment and write the consolidated report used by
EXPERIMENTS.md.

Usage::

    python examples/run_all_experiments.py [--all] [--scale S] [-o FILE]
                                           [--jobs N] [--shards S]

Simulations fan out over ``--jobs`` worker processes and hit the on-disk
result cache (see ``python -m repro cache info``), so re-runs are
near-instant.  ``--shards`` additionally splits every benchmark into
checkpointed slices (see docs/ARCHITECTURE.md, "Checkpointing & sharded
runs") so even a single long benchmark spreads over all workers; keep the
default of 1 when bit-exact cycle counts matter.
"""

import argparse
import os
import sys

from repro.experiments import DEFAULT_BENCHMARKS, FAST_BENCHMARKS, telemetry
from repro.experiments import (
    ablations,
    diagnostics,
    figure4,
    figure5,
    figure6,
    figure7,
)
from repro.integration.config import LispMode


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all", action="store_true")
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("-o", "--output", default=None)
    parser.add_argument("--skip-ablations", action="store_true")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel simulation processes; 0 = one per CPU")
    parser.add_argument("--shards", type=int, default=None,
                        help="checkpointed slices per benchmark "
                             "(1 = bit-exact unsharded engine)")
    args = parser.parse_args()
    if args.shards is not None:
        # The figure modules resolve shards through REPRO_SHARDS.
        os.environ["REPRO_SHARDS"] = str(args.shards)
    benchmarks = DEFAULT_BENCHMARKS if args.all else FAST_BENCHMARKS

    out = open(args.output, "w") if args.output else sys.stdout

    def emit(text: str) -> None:
        out.write(text + "\n")
        out.flush()

    emit(f"benchmarks: {', '.join(benchmarks)}\n")

    r4 = figure4.run(benchmarks=benchmarks, scale=args.scale,
                     lisp_modes=(LispMode.REALISTIC, LispMode.ORACLE),
                     jobs=args.jobs)
    emit(figure4.report(r4, lisp="realistic"))
    emit("")
    emit(figure4.report(r4, lisp="oracle"))
    emit("")
    for ext in figure4.EXTENSION_CONFIGS:
        emit(f"MEAN {ext:9s} realistic: speedup {r4.mean_speedup(ext):+.3f} "
             f"rate {r4.mean_integration_rate(ext):.3f} | oracle: speedup "
             f"{r4.mean_speedup(ext, 'oracle'):+.3f} "
             f"rate {r4.mean_integration_rate(ext, 'oracle'):.3f}")
    emit(f"MEAN reverse-integration rate (+reverse, realistic): "
         f"{r4.mean_reverse_rate():.3f}")
    emit("")

    d = diagnostics.run(benchmarks=benchmarks, scale=args.scale,
                        jobs=args.jobs)
    emit(diagnostics.report(d))
    emit("")

    r5 = figure5.run(benchmarks=benchmarks, scale=args.scale,
                     jobs=args.jobs)
    emit(figure5.report(r5))
    emit("")

    r6 = figure6.run(benchmarks=benchmarks, scale=args.scale,
                     jobs=args.jobs)
    emit(figure6.report(r6))
    emit("")

    r7 = figure7.run(benchmarks=benchmarks, scale=args.scale,
                     jobs=args.jobs)
    emit(figure7.report(r7))
    emit("")

    if not args.skip_ablations:
        ra = ablations.run(benchmarks=benchmarks, scale=args.scale,
                           jobs=args.jobs)
        emit(ablations.report(ra))

    emit(f"\n{telemetry.simulations} simulations, "
         f"{telemetry.memory_hits} memory hits, "
         f"{telemetry.disk_hits} disk hits")

    if args.output:
        out.close()


if __name__ == "__main__":
    main()
