#!/usr/bin/env python
"""Reproduce the paper's Figure 4 (and the Section 3.2 diagnostics).

Runs the four extension configurations (squash reuse, +general reuse,
+opcode indexing, +reverse integration), each against the no-integration
baseline, over the synthetic SPEC2000-INT-like suite and prints the
per-benchmark speedups and integration rates plus their means.

Usage::

    python examples/reproduce_figure4.py                 # fast subset
    python examples/reproduce_figure4.py --all           # all 16 benchmarks
    python examples/reproduce_figure4.py --scale 1.0     # longer runs
"""

import argparse

from repro.experiments import DEFAULT_BENCHMARKS, FAST_BENCHMARKS
from repro.experiments import diagnostics, figure4
from repro.integration.config import LispMode


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all", action="store_true",
                        help="run all 16 benchmarks (slower)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default REPRO_SCALE)")
    parser.add_argument("--oracle", action="store_true",
                        help="also run with oracle mis-integration suppression")
    args = parser.parse_args()

    benchmarks = DEFAULT_BENCHMARKS if args.all else FAST_BENCHMARKS
    lisp_modes = [LispMode.REALISTIC]
    if args.oracle:
        lisp_modes.append(LispMode.ORACLE)

    result = figure4.run(benchmarks=benchmarks, scale=args.scale,
                         lisp_modes=lisp_modes)
    for mode in lisp_modes:
        print(figure4.report(result, lisp=mode.value))
        print()
    print("Means (realistic LISP):")
    for extension in figure4.EXTENSION_CONFIGS:
        print(f"  {extension:9s} speedup {result.mean_speedup(extension):+6.1%}"
              f"  integration rate "
              f"{result.mean_integration_rate(extension):6.1%}")
    print(f"  reverse-integration share of +reverse: "
          f"{result.mean_reverse_rate():.1%}")

    diag = diagnostics.run(benchmarks=benchmarks, scale=args.scale)
    print()
    print(diagnostics.report(diag))


if __name__ == "__main__":
    main()
