#!/usr/bin/env python
"""Reproduce the paper's Figure 7: integration vs. execution-core complexity.

Simulates four machine organisations -- the 4-way/40-reservation-station
baseline, a 20-RS machine, a 3-way machine with a single load/store port,
and both reductions combined -- with and without integration, and reports
speedups relative to the baseline machine without integration.  The paper's
claim is that a 1K-entry 4-way integration table can compensate for a 25%
issue-width reduction or a 50% buffering reduction.

Usage::

    python examples/complexity_tradeoff.py [--all] [--scale S]
"""

import argparse

from repro.experiments import DEFAULT_BENCHMARKS, FAST_BENCHMARKS, figure7


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--all", action="store_true",
                        help="run all 16 benchmarks (slower)")
    parser.add_argument("--scale", type=float, default=None)
    args = parser.parse_args()

    benchmarks = DEFAULT_BENCHMARKS if args.all else FAST_BENCHMARKS
    result = figure7.run(benchmarks=benchmarks, scale=args.scale)
    print(figure7.report(result))


if __name__ == "__main__":
    main()
