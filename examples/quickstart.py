#!/usr/bin/env python
"""Quickstart: assemble a small program and run it through the simulator.

The example assembles a loop that calls a tiny leaf function (so there are
stack saves and restores to bypass), runs it on the functional emulator to
get the reference result, and then simulates it on the timing core twice --
without integration and with the paper's full configuration -- printing the
cycle counts, IPC and integration statistics.

Run with::

    python examples/quickstart.py
"""

from repro.isa import assemble
from repro.functional import Emulator
from repro.core import MachineConfig, simulate
from repro.integration import IntegrationConfig

PROGRAM = """
# Sum of squares of 1..20, with the squaring in a called function.
main:
    li   s0, 0            # accumulator
    li   s1, 20           # loop counter
loop:
    mov  a0, s1
    bsr  ra, square
    addq s0, s0, v0
    subqi s1, s1, 1
    bgt  s1, loop
    mov  a0, s0
    syscall 1             # print the result
    syscall 0             # exit with the result

square:
    lda  sp, -16(sp)
    stq  ra, 0(sp)
    stq  s0, 8(sp)
    mov  s0, a0
    mulq v0, s0, s0
    ldq  s0, 8(sp)
    ldq  ra, 0(sp)
    lda  sp, 16(sp)
    ret
"""


def main() -> None:
    program = assemble(PROGRAM, name="quickstart")

    # 1. Functional (architectural) reference run.
    reference = Emulator(program).run()
    print(f"functional reference: {reference.instructions} instructions, "
          f"output={reference.output}, exit code={reference.exit_code}")

    # 2. Timing simulation without integration.
    baseline_cfg = MachineConfig().with_integration(
        IntegrationConfig.disabled())
    baseline = simulate(program, baseline_cfg, name="quickstart")
    print(f"\nno integration : {baseline.cycles} cycles, "
          f"IPC {baseline.ipc:.2f}")

    # 3. Timing simulation with all three extensions (the paper's
    #    1K-entry 4-way IT, general reuse, opcode indexing, reverse
    #    integration, realistic LISP).
    full_cfg = MachineConfig().with_integration(IntegrationConfig.full())
    full = simulate(program, full_cfg, name="quickstart")
    speedup = baseline.cycles / full.cycles - 1
    print(f"with integration: {full.cycles} cycles, IPC {full.ipc:.2f} "
          f"({speedup:+.1%} speedup)")
    print(f"  integration rate      : {full.integration_rate:.1%}")
    print(f"  direct integrations   : {full.integrated_direct}")
    print(f"  reverse integrations  : {full.integrated_reverse} "
          f"(speculative memory bypassing of the stack saves/restores)")
    print(f"  mis-integrations      : {full.mis_integrations}")

    # The timing core must retire exactly the architectural result.
    assert full.retired == reference.instructions
    assert baseline.retired == reference.instructions


if __name__ == "__main__":
    main()
