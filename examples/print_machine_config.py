#!/usr/bin/env python
"""Print the simulated machine configuration (the paper's Section 3.1 table).

Run with::

    python examples/print_machine_config.py
"""

from repro.core import MachineConfig


def main() -> None:
    cfg = MachineConfig()
    icfg = cfg.integration
    mem = cfg.memsys
    bp = cfg.branch_predictor
    print("Simulated machine (paper Section 3.1 defaults)")
    print("=" * 52)
    print(f"pipeline            : {cfg.pipeline_depth} stages "
          f"({cfg.fetch_stages} fetch, {cfg.decode_stages} decode, "
          f"{cfg.rename_stages} rename, {cfg.schedule_stages} schedule, "
          f"{cfg.regread_stages} regread, 1 execute, "
          f"{cfg.writeback_stages} writeback, {cfg.diva_stages} DIVA, "
          f"{cfg.retire_stages} retire)")
    print(f"widths              : fetch {cfg.fetch_width}, rename "
          f"{cfg.rename_width}, issue {cfg.ports.issue_width} "
          f"({cfg.ports.simple_int} simple int, {cfg.ports.complex_fp} "
          f"complex/FP, {cfg.ports.loads} load, {cfg.ports.stores} store), "
          f"retire {cfg.retire_width}")
    print(f"window              : {cfg.rob_size} instructions, "
          f"{cfg.lsq_size} memory ops, {cfg.rs_entries} reservation stations")
    print(f"branch predictor    : hybrid gshare/bimodal "
          f"({bp.gshare_entries}+{bp.bimodal_entries} entries, "
          f"{bp.btb_entries}-entry BTB, {bp.ras_entries}-entry RAS)")
    print(f"I-cache             : {mem.il1.size_bytes // 1024}KB, "
          f"{mem.il1.line_bytes}B lines, {mem.il1.associativity}-way")
    print(f"D-cache             : {mem.dl1.size_bytes // 1024}KB, "
          f"{mem.dl1.line_bytes}B lines, {mem.dl1.associativity}-way, "
          f"{mem.dl1.hit_latency}-cycle, {mem.dl1.mshrs} MSHRs, "
          f"{mem.write_buffer_entries}-entry write buffer")
    print(f"TLBs                : {mem.itlb.entries}-entry I, "
          f"{mem.dtlb.entries}-entry D, {mem.dtlb.miss_latency}-cycle miss")
    print(f"L2                  : {mem.l2.size_bytes // (1024 * 1024)}MB, "
          f"{mem.l2.line_bytes}B lines, {mem.l2.associativity}-way, "
          f"{mem.l2.hit_latency}-cycle")
    print(f"memory              : {mem.memory_latency}-cycle")
    print(f"physical registers  : {icfg.num_physical_regs}")
    print(f"integration table   : {icfg.it_entries} entries, "
          f"{icfg.it_assoc}-way, indexed by {icfg.index_scheme.value}")
    print(f"mis-integration     : {icfg.generation_bits}-bit generation "
          f"counters, {icfg.lisp_entries}-entry {icfg.lisp_assoc}-way LISP "
          f"({icfg.lisp_mode.value})")
    print(f"reference counters  : {icfg.refcount_bits}-bit")


if __name__ == "__main__":
    main()
