#!/usr/bin/env python
"""Speculative memory bypassing via reverse integration (paper Section 2.4).

This example runs the call-heavy ``save_restore_chain`` and recursive
Fibonacci micro-kernels -- programs dominated by stack saves and restores --
and shows how reverse integration turns the restores (register fills) into
integrations that bypass the execution engine entirely.  It prints the
per-instruction-type integration rates so you can see the paper's claim that
stack-pointer loads integrate at far higher rates than anything else.

Run with::

    python examples/memory_bypassing.py
"""

from repro.analysis.breakdowns import (
    full_breakdown_report,
    per_type_integration_rates,
)
from repro.core import MachineConfig, simulate
from repro.integration import IntegrationConfig
from repro.workloads import fib_recursive, save_restore_chain


def run_one(name, program) -> None:
    baseline_cfg = MachineConfig().with_integration(
        IntegrationConfig.disabled())
    direct_cfg = MachineConfig().with_integration(
        IntegrationConfig.opcode())          # extensions 1+2, no reverse
    full_cfg = MachineConfig().with_integration(IntegrationConfig.full())

    baseline = simulate(program, baseline_cfg, name=name)
    direct = simulate(program, direct_cfg, name=name)
    full = simulate(program, full_cfg, name=name)

    print(f"== {name} ==")
    print(f"  baseline            : {baseline.cycles} cycles")
    print(f"  direct-only         : {direct.cycles} cycles "
          f"(integration rate {direct.integration_rate:.1%})")
    print(f"  with reverse        : {full.cycles} cycles "
          f"(integration rate {full.integration_rate:.1%}, of which "
          f"reverse {full.reverse_integration_rate:.1%})")
    print(f"  speedup from reverse integration alone: "
          f"{direct.cycles / full.cycles - 1:+.1%}")
    rates = per_type_integration_rates(full)
    print(f"  stack-load integration rate : {rates['load_sp']:.1%}")
    print(f"  other-load integration rate : {rates['load']:.1%}")
    print()
    print(full_breakdown_report(full))
    print()


def main() -> None:
    run_one("save_restore_chain", save_restore_chain(depth=6, iterations=48))
    run_one("fib(14)", fib_recursive(14))


if __name__ == "__main__":
    main()
