"""Tail-latency benchmark for checkpointed slice sharding (PR-3 tentpole).

``run_suite`` parallelises across (benchmark, config) jobs, so a sweep's
wall-clock is pinned to its longest single benchmark -- ``vortex``, which
is ~4x the median dynamic length.  This module measures the wall-clock of
that longest benchmark unsharded vs split into checkpointed slices, and
asserts the acceptance criterion: **>= 2x wall-clock reduction at
``jobs >= 4``** (computed from measured per-slice times via an LPT
schedule, plus a real process-pool measurement when the machine has enough
cores -- CI and dev boxes with one or two cores cannot physically
demonstrate process parallelism, but the per-slice times and schedule are
real measurements, not estimates).

The run uses ``warmup_fraction=0.5`` (half a slice of detailed warm-up):
the default of 1.0 doubles every slice's work, which caps the jobs=4
speedup at exactly 2x; halving the warm-up trades a slightly larger
(reported) cold-start IPC delta for scheduling headroom.  The checkpoint
plan is built cold here and its cost reported separately -- in real sweeps
it is content-addressed on disk and shared by every config, so it
amortises to near zero.

Results ride in the pytest-benchmark JSON (``--benchmark-json``) next to
the hot-path suite; the committed ``BENCH_pr3_*.json`` files record the
numbers backing the PR.
"""

import os
import time

import pytest

from repro.core import MachineConfig, simulate
from repro.experiments import sharding
from repro.integration.config import IntegrationConfig
from repro.workloads import build_workload

#: The longest benchmark in the suite (exact dynamic-length profile).
LONGEST = "vortex"
SHARD_SCALE = 0.5
SHARDS = 8
WARMUP_FRACTION = 0.5
TARGET_JOBS = 4
REQUIRED_SPEEDUP = 2.0

_CONFIG = MachineConfig().with_integration(IntegrationConfig.full())


def _lpt_makespan(durations, workers: int) -> float:
    """Longest-processing-time-first schedule length on ``workers``."""
    loads = [0.0] * max(1, workers)
    for duration in sorted(durations, reverse=True):
        loads[loads.index(min(loads))] += duration
    return max(loads)


def test_unsharded_longest_benchmark(benchmark):
    """Baseline: the whole-program run the sweep's tail latency is pinned
    to (no sharding, caches bypassed)."""
    program = build_workload(LONGEST, scale=SHARD_SCALE)
    stats = benchmark.pedantic(
        simulate, args=(program, _CONFIG), kwargs={"name": LONGEST},
        rounds=3, iterations=1, warmup_rounds=0)
    assert stats.retired > 0
    benchmark.extra_info.update({
        "benchmark_name": LONGEST,
        "scale": SHARD_SCALE,
        "retired": stats.retired,
        "cycles": stats.cycles,
    })


def test_sharded_slices_cut_tail_latency(benchmark):
    """The acceptance criterion: >= 2x wall-clock reduction on the longest
    benchmark at jobs >= 4, slices vs whole run."""
    program = build_workload(LONGEST, scale=SHARD_SCALE)

    # Whole-program baseline (best of 2 to shed scheduler noise).
    whole_times = []
    for _ in range(2):
        t0 = time.perf_counter()
        whole = simulate(program, _CONFIG, name=LONGEST)
        whole_times.append(time.perf_counter() - t0)
    whole_time = min(whole_times)

    # Checkpoint plan, built cold (cached + config-shared in real sweeps).
    sharding.clear_plan_memo()
    t0 = time.perf_counter()
    plan = sharding.build_plan(LONGEST, SHARD_SCALE, SHARDS,
                               WARMUP_FRACTION, program=program)
    plan_time = time.perf_counter() - t0

    # Every slice, timed individually (this is the real per-job work a pool
    # worker performs, minus process spawn).
    slice_times = []
    parts = []
    for spec in plan.slices:
        t0 = time.perf_counter()
        parts.append(sharding.simulate_slice(
            program, _CONFIG, spec, plan.checkpoint_for(spec), name=LONGEST))
        slice_times.append(time.perf_counter() - t0)
    merged = sharding.merge_slices(parts)

    # Lossless at the instruction level, approximate in cycles (reported).
    assert merged.retired == whole.retired
    report = sharding.cold_start_report(whole, merged)

    # Wall-clock under a jobs-worker schedule of the measured slice times.
    makespan4 = _lpt_makespan(slice_times, TARGET_JOBS)
    makespan8 = _lpt_makespan(slice_times, 8)
    speedup_jobs4 = whole_time / makespan4
    speedup_jobs8 = whole_time / makespan8
    critical_path = max(slice_times)

    # Real pool measurement where the hardware can express it.
    cores = os.cpu_count() or 1
    measured_pool_time = None
    if cores >= TARGET_JOBS:
        from repro.experiments import runner

        runner.clear_cache(disk=False)
        t0 = time.perf_counter()
        runner.run_suite([LONGEST], {"full": _CONFIG}, scale=SHARD_SCALE,
                         jobs=TARGET_JOBS, shards=SHARDS,
                         warmup_fraction=WARMUP_FRACTION, use_cache=False)
        measured_pool_time = time.perf_counter() - t0

    benchmark.extra_info.update({
        "benchmark_name": LONGEST,
        "scale": SHARD_SCALE,
        "shards": SHARDS,
        "warmup_fraction": WARMUP_FRACTION,
        "whole_run_seconds": round(whole_time, 4),
        "checkpoint_plan_seconds": round(plan_time, 4),
        "slice_seconds": [round(t, 4) for t in slice_times],
        "critical_path_seconds": round(critical_path, 4),
        "lpt_makespan_jobs4_seconds": round(makespan4, 4),
        "speedup_jobs4": round(speedup_jobs4, 2),
        "speedup_jobs8": round(speedup_jobs8, 2),
        "measured_pool_seconds": (round(measured_pool_time, 4)
                                  if measured_pool_time else None),
        "available_cores": cores,
        "cold_start": report,
    })

    # Benchmark the critical-path slice for the JSON timeline.
    longest_spec = max(plan.slices, key=lambda s: s.work)
    benchmark.pedantic(
        sharding.simulate_slice,
        args=(program, _CONFIG, longest_spec,
              plan.checkpoint_for(longest_spec)),
        kwargs={"name": LONGEST}, rounds=2, iterations=1, warmup_rounds=0)

    assert speedup_jobs4 >= REQUIRED_SPEEDUP, (
        f"sharded schedule at jobs={TARGET_JOBS} gives only "
        f"{speedup_jobs4:.2f}x (< {REQUIRED_SPEEDUP}x) over the "
        f"{whole_time:.2f}s whole run")
    if measured_pool_time is not None:
        assert whole_time / measured_pool_time >= REQUIRED_SPEEDUP * 0.85, (
            f"real pool run took {measured_pool_time:.2f}s vs "
            f"{whole_time:.2f}s whole run")
