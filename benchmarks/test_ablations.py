"""Design-choice ablations (DESIGN.md Section 5).

These go beyond the paper's figures and isolate the support mechanisms it
argues for: generation counters suppress register mis-integrations, the LISP
suppresses load mis-integrations, reverse entries are responsible for the
stack-load integrations, and the call-depth index mixing matters for
call-intensive codes.
"""

import pytest

from repro.experiments import ablations
from repro.integration.config import IndexScheme, IntegrationConfig, LispMode

_ABLATION_SUBSET = {
    "full (4b gen, 4b rc)": IntegrationConfig.full(),
    "gen counters 0b": IntegrationConfig.full(generation_bits=0),
    "lisp off": IntegrationConfig.full(lisp_mode=LispMode.OFF),
    "no reverse entries": IntegrationConfig.full(reverse=False),
    "refcount 1b": IntegrationConfig.full(refcount_bits=1),
    "pc indexing": IntegrationConfig.full(index_scheme=IndexScheme.PC),
}


@pytest.fixture(scope="module")
def ablation_result(suite):
    return ablations.run(benchmarks=suite["benchmarks"], scale=suite["scale"],
                         configs=_ABLATION_SUBSET)


def test_ablation_report(benchmark, ablation_result):
    table = benchmark.pedantic(lambda: ablations.report(ablation_result),
                               rounds=1, iterations=1)
    print()
    print(table)


def test_generation_counters_control_register_misintegrations(ablation_result):
    """Disabling generation counters can only increase register
    mis-integrations (usually dramatically)."""
    with_counters = ablation_result.mean_register_mis_integrations(
        "full (4b gen, 4b rc)")
    without = ablation_result.mean_register_mis_integrations("gen counters 0b")
    assert without >= with_counters


def test_reverse_entries_supply_the_stack_load_integrations(ablation_result):
    """Removing reverse entries removes (almost) all reverse integrations."""
    full_runs = ablation_result.results["full (4b gen, 4b rc)"]
    no_rev_runs = ablation_result.results["no reverse entries"]
    full_reverse = sum(r.integrated_reverse for r in full_runs.values())
    no_reverse = sum(r.integrated_reverse for r in no_rev_runs.values())
    assert no_reverse == 0
    assert full_reverse > 0


def test_saturated_refcounts_only_lose_some_integrations(ablation_result):
    """1-bit reference counters forbid simultaneous sharing but integration
    still functions (subsequent instances integrate the fresh register)."""
    full_rate = ablation_result.mean_integration_rate("full (4b gen, 4b rc)")
    narrow_rate = ablation_result.mean_integration_rate("refcount 1b")
    assert narrow_rate > 0.0
    assert narrow_rate <= full_rate + 0.02
