"""Simulation hot-path wall-clock benchmarks.

Unlike the figure benchmarks (which regenerate paper results through the
cached experiment engine), these time :func:`repro.core.simulate` itself --
the per-cycle scheduler select, LSQ disambiguation and event-queue drain
that dominate runtime.  They are the guardrail for the scan-free LSQ and
ready-tracking scheduler work: run with ``--benchmark-json`` and compare
against the previous ``BENCH_*.json`` to track the perf trajectory per PR.

The cache layers are deliberately bypassed (``simulate`` is called directly,
not through ``run_benchmark``), so every round performs real simulation
work.
"""

from dataclasses import replace

import pytest

from repro.core import MachineConfig, simulate
from repro.memsys.hierarchy import MemSysConfig
from repro.experiments.runner import SMOKE_BENCHMARKS
from repro.integration.config import IntegrationConfig
from repro.workloads import build_workload, pointer_chase_memory_bound

#: Scale used for the hot-path timings: big enough that per-cycle costs
#: dominate Processor construction, small enough for CI.
HOT_PATH_SCALE = 0.3

_CONFIGS = {
    "full": IntegrationConfig.full(),
    "none": IntegrationConfig.disabled(),
}


@pytest.mark.parametrize("config_name", sorted(_CONFIGS))
@pytest.mark.parametrize("bench_name", sorted(SMOKE_BENCHMARKS))
def test_simulate_hot_path(benchmark, bench_name, config_name):
    """Time one full simulation of a smoke benchmark (no caching)."""
    config = MachineConfig().with_integration(_CONFIGS[config_name])
    program = build_workload(bench_name, scale=HOT_PATH_SCALE)

    stats = benchmark(simulate, program, config, name=bench_name)

    # Sanity: the run actually simulated to completion.
    assert stats.cycles > 0 and stats.retired > 0
    benchmark.extra_info.update({
        "cycles": stats.cycles,
        "retired": stats.retired,
        "kilocycles_per_second": round(
            stats.cycles / 1000.0 / benchmark.stats.stats.mean, 1),
    })


def test_simulate_memory_bound(benchmark):
    """Time the DRAM-latency-dominated pointer chase.

    Every hop of this chase misses DL1 and L2 by construction, so almost
    all simulated cycles are quiescent waits on a single in-flight load.
    The memory latency is raised from the paper-era 80 cycles to a
    modern-memory-wall 400 so the quiescent spans dominate (98% of cycles
    are elidable).  This is the showcase (and the regression tripwire) for
    event-horizon cycle elision: most of its wall-clock is spent in cycles
    the elision driver can jump over arithmetically.
    """
    config = replace(MachineConfig(),
                     memsys=replace(MemSysConfig(), memory_latency=400))
    program = pointer_chase_memory_bound()

    stats = benchmark(simulate, program, config, name="pointer_chase_mem")

    assert stats.cycles > 0 and stats.retired > 0
    benchmark.extra_info.update({
        "cycles": stats.cycles,
        "retired": stats.retired,
        "cycles_elided": stats.cycles_elided,
        "elided_fraction": round(stats.cycles_elided / stats.cycles, 3),
        "kilocycles_per_second": round(
            stats.cycles / 1000.0 / benchmark.stats.stats.mean, 1),
    })
