"""Figure 4 (top): speedups of the three extensions over no integration.

Regenerates the paper's headline result: squash reuse alone is worth ~1%,
general reuse a few percent, opcode indexing a little more, and adding
reverse integration (speculative memory bypassing) gives the largest jump --
8% on the paper's machine.  We check ordering and rough magnitude, not
absolute numbers (the substrate here is a synthetic-workload simulator, not
the authors' SPEC setup).
"""

import pytest

from repro.experiments import figure4
from repro.integration.config import LispMode


@pytest.fixture(scope="module")
def fig4_result(suite):
    return figure4.run(benchmarks=suite["benchmarks"], scale=suite["scale"],
                       lisp_modes=(LispMode.REALISTIC,))


def test_fig4_speedups(benchmark, suite, fig4_result):
    """Regenerate the Figure 4 speedup rows."""
    def rows():
        return {ext: fig4_result.mean_speedup(ext)
                for ext in figure4.EXTENSION_CONFIGS}

    means = benchmark.pedantic(rows, rounds=1, iterations=1)
    print()
    print(figure4.report(fig4_result))
    benchmark.extra_info.update({f"speedup {k}": round(v, 4)
                                 for k, v in means.items()})

    # Paper shape: the full configuration (+reverse) is the best of the four
    # and clearly positive; squash reuse alone is marginal.
    assert means["+reverse"] > 0.01
    assert means["+reverse"] >= means["+general"]
    assert means["+reverse"] >= means["squash"]
    assert abs(means["squash"]) < 0.05


def test_fig4_extension_ordering_per_benchmark(suite, fig4_result):
    """+reverse never loses badly to squash-only on any single benchmark."""
    for name in fig4_result.benchmarks:
        squash = fig4_result.speedups("squash")[name]
        reverse = fig4_result.speedups("+reverse")[name]
        assert reverse >= squash - 0.05, name
