"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures on the
synthetic SPEC-like suite.  To keep wall-clock time reasonable the default
uses a representative benchmark subset and a reduced workload scale; both can
be widened through environment variables:

* ``REPRO_BENCH_SET``   -- ``smoke`` (3 benchmarks), ``fast`` (8, default),
  or ``all`` (16);
* ``REPRO_BENCH_SCALE`` -- workload scale factor (default 0.3).
"""

import os

import pytest

from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    FAST_BENCHMARKS,
    SMOKE_BENCHMARKS,
    env_float,
)

_BENCH_SETS = {
    "smoke": SMOKE_BENCHMARKS,
    "fast": FAST_BENCHMARKS,
    "all": DEFAULT_BENCHMARKS,
}


def bench_benchmarks():
    name = os.environ.get("REPRO_BENCH_SET", "smoke").lower()
    return list(_BENCH_SETS.get(name, SMOKE_BENCHMARKS))


def bench_scale() -> float:
    return env_float("REPRO_BENCH_SCALE", "0.3")


@pytest.fixture(scope="session")
def suite():
    """The benchmark names and scale used throughout the harness."""
    return {"benchmarks": bench_benchmarks(), "scale": bench_scale()}
