"""Figure 4 (bottom): integration rates and mis-integrations per million.

The paper's progression is 2% (squash) -> 10% (+general) -> 12.3% (+opcode)
-> 17% (+reverse).  We check the qualitative staircase: each extension adds
integration opportunity on average, squash-only is tiny, and the full
configuration reaches double digits with a visible reverse-integration
component.
"""

import pytest

from repro.experiments import figure4
from repro.integration.config import LispMode


@pytest.fixture(scope="module")
def fig4_result(suite):
    return figure4.run(benchmarks=suite["benchmarks"], scale=suite["scale"],
                       lisp_modes=(LispMode.REALISTIC,))


def test_fig4_integration_rates(benchmark, suite, fig4_result):
    def rows():
        return {ext: fig4_result.mean_integration_rate(ext)
                for ext in figure4.EXTENSION_CONFIGS}

    rates = benchmark.pedantic(rows, rounds=1, iterations=1)
    benchmark.extra_info.update({f"rate {k}": round(v, 4)
                                 for k, v in rates.items()})
    print()
    for ext, rate in rates.items():
        print(f"  {ext:9s} mean integration rate {rate:.1%}")
    print(f"  +reverse mean reverse share {fig4_result.mean_reverse_rate():.1%}")

    assert rates["squash"] < 0.05                      # squash reuse is rare
    assert rates["+general"] > rates["squash"]         # extension 1 adds reuse
    assert rates["+reverse"] > rates["+general"]       # extension 3 adds more
    assert rates["+reverse"] > 0.08                    # double-digit-ish rate
    assert fig4_result.mean_reverse_rate() > 0.005     # reverse share visible


def test_fig4_mis_integration_rates(suite, fig4_result):
    """Mis-integrations stay rare (the LISP and generation counters work)."""
    per_million = fig4_result.mis_integrations_per_million("+reverse")
    for name, value in per_million.items():
        # The paper sees tens to a few thousand per million retired.
        assert value < 20_000, (name, value)
