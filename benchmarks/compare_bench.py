#!/usr/bin/env python
"""Diff two pytest-benchmark JSON files and flag perf regressions.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--threshold 1.25]

Compares mean wall-clock per benchmark *name* (only names present in both
files -- newly added benchmarks are listed but not judged).  Exits non-zero
if any common benchmark got slower than ``threshold x`` the baseline mean,
so CI can flag the regression; machine-to-machine noise means this is a
tripwire, not a precision instrument, hence the generous default threshold.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_means(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return {bench["fullname"]: bench["stats"]["mean"]
            for bench in data.get("benchmarks", [])}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail when current mean > threshold x baseline "
                             "(default: 1.25)")
    args = parser.parse_args()

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    common = sorted(set(baseline) & set(current))
    added = sorted(set(current) - set(baseline))

    regressions = []
    print(f"{'benchmark':<72} {'base(s)':>10} {'now(s)':>10} {'ratio':>7}")
    print("-" * 102)
    for name in common:
        ratio = current[name] / baseline[name] if baseline[name] else 0.0
        flag = "  << REGRESSION" if ratio > args.threshold else ""
        print(f"{name:<72} {baseline[name]:>10.5f} {current[name]:>10.5f} "
              f"{ratio:>6.2f}x{flag}")
        if ratio > args.threshold:
            regressions.append((name, ratio))
    for name in added:
        print(f"{name:<72} {'-':>10} {current[name]:>10.5f}   (new)")

    if not common:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 0
    if regressions:
        print(f"\n{len(regressions)} benchmark(s) slower than "
              f"{args.threshold:.2f}x baseline", file=sys.stderr)
        return 1
    print(f"\nok: {len(common)} common benchmark(s) within "
          f"{args.threshold:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
