#!/usr/bin/env python
"""Diff two pytest-benchmark JSON files and flag perf regressions.

Usage::

    python benchmarks/compare_bench.py BASELINE.json CURRENT.json \
        [--threshold 1.25] [--max-regression 1.10]

Compares mean wall-clock per benchmark *name* (only names present in both
files -- newly added benchmarks are listed but not judged) and prints the
geometric-mean speedup of current over baseline across the common set.
Exits non-zero if

* any common benchmark got slower than ``threshold x`` the baseline mean
  (per-benchmark tripwire), or
* ``--max-regression R`` is given and the geomean ``current/baseline``
  ratio exceeds ``R`` (aggregate tripwire: individual noise cancels in the
  geomean, so this threshold can be much tighter than ``--threshold``), or
* the common benchmark set is empty / nothing was comparable (exit 2: a
  comparison that compared nothing must not pass a CI gate).

Machine-to-machine noise means the per-benchmark check is a tripwire, not a
precision instrument, hence its generous default.
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def load_means(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    return {bench["fullname"]: bench["stats"]["mean"]
            for bench in data.get("benchmarks", [])}


def geomean_ratio(baseline: dict, current: dict, common) -> float:
    """Geometric mean of ``current/baseline`` over the common benchmarks.

    Raises :class:`ValueError` when no pair is comparable (no common names,
    or every mean is zero/negative) -- a silent ``1.0`` here once let a
    renamed suite sail through the CI ``--max-regression`` gate with
    nothing actually compared.
    """
    log_sum = 0.0
    counted = 0
    for name in common:
        if baseline[name] > 0 and current[name] > 0:
            log_sum += math.log(current[name] / baseline[name])
            counted += 1
    if not counted:
        raise ValueError("no comparable benchmark pairs (zero or negative "
                         "means everywhere)")
    return math.exp(log_sum / counted)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="fail when any current mean > threshold x its "
                             "baseline (default: 1.25)")
    parser.add_argument("--max-regression", type=float, default=None,
                        metavar="R",
                        help="fail when the geomean current/baseline ratio "
                             "exceeds R (e.g. 1.10 allows a 10%% aggregate "
                             "slowdown); off by default")
    args = parser.parse_args()

    baseline = load_means(args.baseline)
    current = load_means(args.current)
    common = sorted(set(baseline) & set(current))
    added = sorted(set(current) - set(baseline))

    regressions = []
    print(f"{'benchmark':<72} {'base(s)':>10} {'now(s)':>10} {'ratio':>7}")
    print("-" * 102)
    for name in common:
        ratio = current[name] / baseline[name] if baseline[name] else 0.0
        flag = "  << REGRESSION" if ratio > args.threshold else ""
        print(f"{name:<72} {baseline[name]:>10.5f} {current[name]:>10.5f} "
              f"{ratio:>6.2f}x{flag}")
        if ratio > args.threshold:
            regressions.append((name, ratio))
    for name in added:
        print(f"{name:<72} {'-':>10} {current[name]:>10.5f}   (new)")

    if not common:
        # A comparison that compared nothing must not pass the CI gate:
        # a renamed suite or an empty results file would otherwise look
        # like "no regressions".
        print("error: no common benchmarks between "
              f"{args.baseline} ({len(baseline)} entries) and "
              f"{args.current} ({len(current)} entries); nothing was "
              "compared -- did the suite or the baseline get renamed?",
              file=sys.stderr)
        return 2

    try:
        ratio = geomean_ratio(baseline, current, common)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    speedup = 1.0 / ratio if ratio else 0.0
    print(f"\ngeomean speedup (baseline/current) over {len(common)} common "
          f"benchmark(s): {speedup:.2f}x "
          f"(geomean current/baseline ratio: {ratio:.3f})")

    failed = False
    if regressions:
        print(f"{len(regressions)} benchmark(s) slower than "
              f"{args.threshold:.2f}x baseline", file=sys.stderr)
        failed = True
    if args.max_regression is not None and ratio > args.max_regression:
        print(f"geomean ratio {ratio:.3f} exceeds --max-regression "
              f"{args.max_regression:.2f}", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print(f"ok: {len(common)} common benchmark(s) within "
          f"{args.threshold:.2f}x of baseline"
          + (f", geomean within {args.max_regression:.2f}x"
             if args.max_regression is not None else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
