"""Figure 6 (left): integration-table associativity sweep.

The paper finds that low associativity does not destroy integration's
benefit (6%/7%/8% for 1/2/4-way, 10% fully associative with oracle
suppression); reverse integration in particular is insensitive to
associativity because the stack-frame layout gives save/restore pairs a
natural conflict-free indexing.
"""

import pytest

from repro.experiments import figure6


@pytest.fixture(scope="module")
def assoc_result(suite):
    return figure6.run(benchmarks=suite["benchmarks"], scale=suite["scale"],
                       sizes=())        # associativity half only


def test_fig6_associativity_sweep(benchmark, assoc_result):
    speedups = benchmark.pedantic(assoc_result.assoc_speedups,
                                  rounds=1, iterations=1)
    rates = assoc_result.assoc_integration_rates()
    print()
    for label in speedups:
        print(f"  IT {label:6s}: mean speedup {speedups[label]:+.1%}, "
              f"mean integration rate {rates[label]:.1%}")
    benchmark.extra_info.update({k: round(v, 4) for k, v in speedups.items()})

    # Every organisation, even direct-mapped, keeps a positive mean speedup.
    assert speedups["1-way"] > -0.02
    assert speedups["4-way"] > 0.0
    # Higher associativity finds at least as much integration opportunity.
    assert rates["full"] >= rates["1-way"] - 0.02
    # Low associativity does not collapse the benefit relative to 4-way.
    assert speedups["1-way"] > speedups["4-way"] - 0.10


def test_fig6_reverse_insensitive_to_associativity(assoc_result):
    """Reverse integration survives even a direct-mapped IT."""
    def mean_reverse(label):
        runs = assoc_result.assoc_results[label]
        return sum(r.reverse_integration_rate for r in runs.values()) / len(runs)

    assert mean_reverse("1-way") > 0.25 * mean_reverse("4-way")
