"""Figure 6 (right): integration-table size sweep (64 / 256 / 1K / 4K,
fully associative, LRU).

Integration is a temporally local phenomenon: a small table already captures
most of the benefit, and growing the table mostly helps the call-intensive
programs whose reverse integrations span whole function bodies.
"""

import pytest

from repro.experiments import figure6


@pytest.fixture(scope="module")
def size_result(suite):
    return figure6.run(benchmarks=suite["benchmarks"], scale=suite["scale"],
                       associativities=())     # size half only


def test_fig6_size_sweep(benchmark, size_result):
    speedups = benchmark.pedantic(size_result.size_speedups,
                                  rounds=1, iterations=1)
    rates = size_result.size_integration_rates()
    print()
    for size in speedups:
        print(f"  IT {size:5d} entries: mean speedup {speedups[size]:+.1%}, "
              f"mean integration rate {rates[size]:.1%}")
    benchmark.extra_info.update({str(k): round(v, 4)
                                 for k, v in speedups.items()})

    # Bigger tables never find less reuse (LRU, fully associative).
    assert rates[4096] >= rates[256] - 0.02
    assert rates[1024] >= rates[64] - 0.02
    # Temporal locality: a 256-entry table already captures a large fraction
    # of what the 4K-entry table finds.
    assert rates[256] >= 0.4 * rates[4096]
    # The default 1K configuration keeps a positive mean speedup.
    assert speedups[1024] > 0.0
