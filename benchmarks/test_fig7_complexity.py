"""Figure 7: integration as a substitute for execution-core complexity.

The paper's claims: halving the reservation stations costs ~10%, dropping to
3-way issue with one load/store port costs ~12%, both together cost ~18%;
with integration each reduced machine recovers most of the loss (to within
1%/2%/7% of the full-complexity baseline).  We check the qualitative shape:
the reductions hurt, integration recovers a substantial share of the loss,
and integration shrinks the executed-instruction count and reservation-
station occupancy.
"""

import pytest

from repro.experiments import figure7


@pytest.fixture(scope="module")
def fig7_result(suite):
    return figure7.run(benchmarks=suite["benchmarks"], scale=suite["scale"])


def test_fig7_reduced_complexity(benchmark, fig7_result):
    def means():
        return {(variant, integ): fig7_result.mean_speedup(variant, integ)
                for variant in figure7.MACHINE_VARIANTS
                for integ in ("none", "integration")}

    speedups = benchmark.pedantic(means, rounds=1, iterations=1)
    print()
    print(figure7.report(fig7_result))
    benchmark.extra_info.update({f"{v}/{i}": round(s, 4)
                                 for (v, i), s in speedups.items()})

    # Complexity reductions hurt the machine without integration.
    assert speedups[("RS", "none")] < 0.0
    assert speedups[("IW", "none")] < 0.0
    assert speedups[("IW+RS", "none")] <= min(speedups[("RS", "none")],
                                              speedups[("IW", "none")]) + 0.02

    # Integration recovers a substantial share of each loss.
    for variant in ("RS", "IW", "IW+RS"):
        without = speedups[(variant, "none")]
        with_int = speedups[(variant, "integration")]
        assert with_int > without, variant
    # With integration, the half-RS machine recovers a meaningful part of
    # the loss relative to the full-complexity no-integration baseline.
    rs_without = speedups[("RS", "none")]
    assert speedups[("RS", "integration")] > rs_without + 0.2 * abs(rs_without)


def test_fig7_execution_stream_compression(fig7_result):
    """Integration reduces executed instructions, executed loads and RS
    occupancy on the baseline machine (paper Section 3.5)."""
    assert fig7_result.executed_reduction() > 0.03
    assert fig7_result.load_reduction() > 0.03
    assert (fig7_result.rs_occupancy("integration")
            < fig7_result.rs_occupancy("none"))
