"""Figure 5: breakdowns of the integration retirement stream.

Checks the paper's qualitative observations: loads integrate at higher rates
than the overall average with stack loads far ahead of everything else;
reverse integrations appear only in the stack-load and ALU categories; only
a minority of integrations reuse very recent results (so integration can be
pipelined); a substantial fraction of results are integrated while the
original mapping is still live (simultaneous sharing); and high sharing
degrees are rare.
"""

import pytest

from repro.analysis import breakdowns
from repro.core.stats import IntegrationType, ResultStatus
from repro.experiments import figure5


@pytest.fixture(scope="module")
def fig5_result(suite):
    return figure5.run(benchmarks=suite["benchmarks"], scale=suite["scale"])


def _aggregate(stats_by_bench):
    """Pool the retired-integration counters across benchmarks."""
    pooled = {"integrated": 0, "loads": 0, "loads_int": 0,
              "sp_loads": 0, "sp_loads_int": 0}
    for stats in stats_by_bench.values():
        pooled["integrated"] += stats.integrated
        pooled["loads"] += (stats.retired_by_type[IntegrationType.LOAD_SP]
                            + stats.retired_by_type[IntegrationType.LOAD_OTHER])
        pooled["loads_int"] += (
            stats.integration_by_type[IntegrationType.LOAD_SP]
            + stats.integration_by_type[IntegrationType.LOAD_OTHER])
        pooled["sp_loads"] += stats.retired_by_type[IntegrationType.LOAD_SP]
        pooled["sp_loads_int"] += stats.integration_by_type[
            IntegrationType.LOAD_SP]
    return pooled


def test_fig5_type_breakdown(benchmark, fig5_result):
    pooled = benchmark.pedantic(_aggregate, args=(fig5_result.stats,),
                                rounds=1, iterations=1)
    print()
    print(figure5.report(fig5_result)[:2000])
    assert pooled["integrated"] > 0
    overall_rate = sum(s.integration_rate for s in fig5_result.stats.values()
                       ) / len(fig5_result.stats)
    load_rate = pooled["loads_int"] / pooled["loads"]
    sp_rate = pooled["sp_loads_int"] / max(1, pooled["sp_loads"])
    # Paper: loads integrate above the overall rate; stack loads far above.
    assert load_rate > overall_rate * 0.8
    assert sp_rate > load_rate
    assert sp_rate > 0.3


def test_fig5_reverse_only_in_sp_load_and_alu(fig5_result):
    for name, stats in fig5_result.stats.items():
        for itype, count in stats.reverse_by_type.items():
            if count:
                assert itype in (IntegrationType.LOAD_SP,
                                 IntegrationType.ALU), (name, itype)


def test_fig5_distance_breakdown(fig5_result):
    """Only a minority of integrations reuse very recent results."""
    total = sum(s.integrated for s in fig5_result.stats.values())
    within4 = sum(s.integration_distance.get(4, 0)
                  for s in fig5_result.stats.values())
    assert total > 0
    assert within4 / total < 0.5


def test_fig5_status_and_refcount(fig5_result):
    """Simultaneous sharing exists, and extreme sharing degrees are rare."""
    total_status = 0
    active = 0
    high_refcount = 0
    total_refcount = 0
    for stats in fig5_result.stats.values():
        for status, count in stats.integration_status.items():
            total_status += count
            if status is not ResultStatus.SHADOW_SQUASH:
                active += count
        for refcount, count in stats.integration_refcount.items():
            total_refcount += count
            if refcount > 7:
                high_refcount += count
    assert total_status > 0
    assert active > 0                       # some simultaneous sharing
    assert high_refcount / max(1, total_refcount) < 0.5
