"""Section 3.2 diagnostics: branch-resolution latency and fetched instructions.

The paper reports that integration shortens mis-predicted-branch resolution
(26 -> 23.5 cycles) and slightly reduces the number of fetched instructions
(~0.6%) because less wrong-path work is fetched.
"""

import pytest

from repro.experiments import diagnostics


@pytest.fixture(scope="module")
def diag_result(suite):
    return diagnostics.run(benchmarks=suite["benchmarks"],
                           scale=suite["scale"])


def test_branch_resolution_latency(benchmark, diag_result):
    latency = benchmark.pedantic(diag_result.resolution_latency,
                                 rounds=1, iterations=1)
    print()
    print(diagnostics.report(diag_result))
    benchmark.extra_info.update({k: round(v, 2) for k, v in latency.items()})
    # Integration must not lengthen branch resolution on average; the paper
    # sees a ~10% reduction.
    assert latency["with"] <= latency["without"] * 1.10


def test_fetched_instructions(diag_result):
    """Integration does not blow up the fetch stream (the paper sees a small
    net reduction despite mis-integration re-fetches)."""
    reduction = diag_result.fetched_reduction()
    assert reduction > -0.10
