"""Chaos suite: the crash-point x fault matrix over real simulations.

The payoff test for the reliability layer.  Every scenario injects a
deterministic fault schedule (``FaultPlan``) into the *real* cache/queue/
worker stack, lets recovery run, and asserts the three invariants the
protocol promises:

1. **no lost jobs** -- the queue drains to ``done`` with zero dead
   letters and zero stragglers;
2. **no double-counted stats** -- resolving the sweep afterwards touches
   the cache only (``telemetry.simulations == 0``);
3. **bit-identical results** -- the merged SimStats equal a fault-free
   reference run, field for field.

Covered: a worker crashing at each named protocol step (with a rescue
worker reclaiming the lease), torn cache writes recovered through
quarantine + stale-done-marker resubmission, transient queue EIO
absorbed by bounded retry, the ``repro worker`` CLI's crash exit code,
hypothesis-generated fault schedules against the drain invariant, and a
``repro fleet`` subprocess surviving an injected crash via supervised
restart.  Unit-level reliability coverage lives in
``tests/test_reliability.py``.
"""

import os
import subprocess
import sys
import time
import uuid
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MachineConfig
from repro.distrib import worker as worker_mod
from repro.distrib.backend import DistributedBackend
from repro.distrib.queue import JobQueue
from repro.experiments import cache as cache_mod
from repro.experiments import runner
from repro.experiments.cache import ResultCache
from repro.integration.config import IntegrationConfig
from repro.reliability import (
    CRASH_POINTS,
    FaultPlan,
    SimulatedCrash,
    install_plan,
    reset_plan,
)

SUITE = {
    "none": MachineConfig().with_integration(IntegrationConfig.disabled()),
}
SCALE = 0.06
LEASE_TTL = 0.3


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    reset_plan()
    yield
    reset_plan()


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    """Fresh cache + queue roots; cold in-process state."""
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path))
    monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.setattr(runner, "_DISK_CACHE", None)
    runner._MEMORY_CACHE.clear()
    runner.telemetry.reset()
    yield tmp_path
    runner._MEMORY_CACHE.clear()
    runner.clear_cache()
    monkeypatch.setattr(runner, "_DISK_CACHE", None)


def _reference_then_cold(shards=1):
    """Fault-free reference results, then a cold cache with the same
    sweep pending again."""
    reference = runner.run_suite(["gzip"], SUITE, scale=SCALE,
                                 shards=shards)
    runner.clear_cache(disk=True)
    runner._MEMORY_CACHE.clear()
    plan = runner.plan_suite(["gzip"], SUITE, SCALE, shards, 1.0,
                             use_cache=True)
    assert plan.jobs_list
    return reference, plan.jobs_list


def _submit_all(queue, jobs_list):
    for est, (key, benchmark, config, scale, _uc, spec, ckpt) in jobs_list:
        assert queue.submit(
            worker_mod.make_payload(key, benchmark, config, scale,
                                    slice_spec=spec, checkpoint=ckpt),
            est_work=est)


def _assert_resolved_from_cache(reference, shards=1):
    """Invariants 2 + 3: the sweep resolves without a single simulation
    and the merged stats match the fault-free reference bit for bit."""
    runner._MEMORY_CACHE.clear()
    runner.telemetry.reset()
    results = runner.run_suite(["gzip"], SUITE, scale=SCALE,
                               shards=shards)
    assert runner.telemetry.simulations == 0
    assert results == reference


def _drained(status, done):
    return (status.pending, status.claimed,
            status.done, status.dead) == (0, 0, done, 0)


# ----------------------------------------------------------------------
# the crash-point matrix
# ----------------------------------------------------------------------
class TestCrashMatrix:
    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_at_every_protocol_step_loses_nothing(
            self, isolated_cache, point):
        reference, jobs_list = _reference_then_cold()
        queue = JobQueue(isolated_cache / "queue", lease_ttl=LEASE_TTL)
        _submit_all(queue, jobs_list)
        install_plan(FaultPlan.parse(f"point:{point}:nth=1:crash"))

        if point == "mid-heartbeat":
            # A crash inside the heartbeat thread kills only the thread:
            # the worker itself finishes the job (re-verifying ownership
            # before publishing, since its lease may have gone stale).
            summary = worker_mod.run_worker(
                queue=queue, cache=ResultCache(), worker_id="crashy",
                max_jobs=len(jobs_list), poll_interval=0.02,
                idle_timeout=0.5)
            assert summary.executed == len(jobs_list)
            assert summary.fenced == 0
        else:
            with pytest.raises(SimulatedCrash):
                worker_mod.run_worker(
                    queue=queue, cache=ResultCache(), worker_id="crashy",
                    max_jobs=len(jobs_list), poll_interval=0.02,
                    idle_timeout=0.5)
            reset_plan()
            time.sleep(LEASE_TTL + 0.05)       # the lease goes stale
            rescue = worker_mod.run_worker(
                queue=queue, cache=ResultCache(), worker_id="rescue",
                poll_interval=0.02, idle_timeout=0.5)
            assert rescue.reclaimed >= 1
            assert rescue.jobs_done == len(jobs_list)
            if point == "after-publish-before-done":
                # The result survived the crash: the rescue worker must
                # resolve it from the cache, not re-simulate.
                assert rescue.cache_hits == len(jobs_list)

        assert _drained(queue.status(), done=len(jobs_list))
        _assert_resolved_from_cache(reference)

    def test_sharded_crash_merges_bit_identical(self, isolated_cache):
        """The crash lands mid-way through a sharded sweep; the merged
        SimStats must still match the fault-free reference exactly."""
        reference, jobs_list = _reference_then_cold(shards=2)
        assert len(jobs_list) >= 2              # one job per slice
        queue = JobQueue(isolated_cache / "queue", lease_ttl=LEASE_TTL)
        _submit_all(queue, jobs_list)
        install_plan(
            FaultPlan.parse("point:after-publish-before-done:nth=1:crash"))
        with pytest.raises(SimulatedCrash):
            worker_mod.run_worker(
                queue=queue, cache=ResultCache(), worker_id="crashy",
                max_jobs=len(jobs_list), poll_interval=0.02,
                idle_timeout=0.5)
        reset_plan()
        time.sleep(LEASE_TTL + 0.05)
        rescue = worker_mod.run_worker(
            queue=queue, cache=ResultCache(), worker_id="rescue",
            poll_interval=0.02, idle_timeout=0.5)
        assert rescue.reclaimed >= 1
        assert _drained(queue.status(), done=len(jobs_list))
        _assert_resolved_from_cache(reference, shards=2)


# ----------------------------------------------------------------------
# data faults through the full stack
# ----------------------------------------------------------------------
class TestDataFaults:
    def test_torn_cache_write_recovers_via_resubmission(
            self, isolated_cache, capsys):
        """A torn result write passes silently at publish time, the
        integrity check quarantines it at read time, and the waiting
        submitter resubmits the job behind the stale done marker."""
        reference, jobs_list = _reference_then_cold()
        runner.telemetry.reset()
        install_plan(FaultPlan.parse("write:@cache:nth=1:torn"))
        backend = DistributedBackend(queue_dir=isolated_cache / "queue",
                                     lease_ttl=LEASE_TTL,
                                     poll_interval=0.05, timeout=60)
        results = runner.run_suite(["gzip"], SUITE, scale=SCALE,
                                   backend=backend)
        assert results == reference
        assert runner.telemetry.corrupt_quarantined >= 1
        assert list((isolated_cache / "corrupt").iterdir())
        assert "quarantined corrupt entry" in capsys.readouterr().err
        queue = JobQueue(isolated_cache / "queue")
        status = queue.status()
        assert (status.pending, status.claimed, status.dead) == (0, 0, 0)
        _assert_resolved_from_cache(reference)

    def test_transient_queue_eio_is_absorbed_by_retry(self,
                                                      isolated_cache):
        reference, jobs_list = _reference_then_cold()
        runner.telemetry.reset()
        install_plan(FaultPlan.parse(
            "write:@queue:nth=1:eio;fsync:@queue:nth=1:eio"))
        backend = DistributedBackend(queue_dir=isolated_cache / "queue",
                                     lease_ttl=LEASE_TTL,
                                     poll_interval=0.05, timeout=60)
        results = runner.run_suite(["gzip"], SUITE, scale=SCALE,
                                   backend=backend)
        assert results == reference
        assert runner.telemetry.io_retries >= 1
        status = JobQueue(isolated_cache / "queue").status()
        assert (status.pending, status.claimed, status.dead) == (0, 0, 0)


# ----------------------------------------------------------------------
# the worker CLI's crash contract
# ----------------------------------------------------------------------
class TestWorkerCliCrash:
    def test_injected_crash_exits_70_and_job_is_rescuable(
            self, isolated_cache, capsys):
        from repro.__main__ import main

        queue_dir = isolated_cache / "queue"
        queue = JobQueue(queue_dir, lease_ttl=0.1)
        assert queue.submit({"key": "k-crash"})
        install_plan(FaultPlan.parse("point:after-claim:nth=1:crash"))
        rc = main(["worker", "--queue-dir", str(queue_dir),
                   "--idle-timeout", "0.2", "--poll-interval", "0.02",
                   "--quiet"])
        assert rc == 70                         # distinct crash signal
        assert "worker crashed" in capsys.readouterr().err
        assert queue.status().claimed == 1      # abandoned mid-claim
        reset_plan()
        time.sleep(0.15)                        # claimed-file mtime ages out
        assert queue.reclaim_expired() == 1
        job = queue.claim("rescue")
        assert job is not None and queue.complete(job)
        assert _drained(queue.status(), done=1)


# ----------------------------------------------------------------------
# hypothesis-generated fault schedules
# ----------------------------------------------------------------------
_FAULT_OPS = st.sampled_from(["rename", "write", "unlink", "any"])
_FAULT_MATCHES = st.sampled_from(["*", "@queue", "@lease", "claimed",
                                  "pending"])


@st.composite
def _fault_schedules(draw):
    n_rules = draw(st.integers(min_value=1, max_value=3))
    rules = []
    for _ in range(n_rules):
        op = draw(_FAULT_OPS)
        match = draw(_FAULT_MATCHES)
        nth = draw(st.integers(min_value=1, max_value=6))
        rules.append(f"{op}:{match}:nth={nth}:eio")
    return ";".join(rules)


class TestFaultScheduleInvariants:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(n_jobs=st.integers(min_value=1, max_value=5),
           spec=_fault_schedules())
    def test_queue_drains_every_job_exactly_once(self, tmp_path, n_jobs,
                                                 spec):
        """Under any generated schedule of transient queue faults, every
        submitted job completes exactly once: none lost, none
        dead-lettered, none duplicated."""
        reset_plan()
        queue = JobQueue(tmp_path / f"q-{uuid.uuid4().hex[:8]}",
                         lease_ttl=0.05, max_attempts=10)
        keys = [f"key-{i:03d}" for i in range(n_jobs)]
        for key in keys:
            assert queue.submit({"key": key})
        install_plan(FaultPlan.parse(spec))
        completed = []
        deadline = time.monotonic() + 20.0
        try:
            while len(completed) < n_jobs:
                assert time.monotonic() < deadline, \
                    f"drain wedged under {spec!r}: {completed}"
                try:
                    queue.reclaim_expired()
                    job = queue.claim("drainer")
                except OSError:
                    time.sleep(0.06)
                    continue
                if job is None:
                    time.sleep(0.06)
                    continue
                if queue.complete(job):
                    completed.append(job.key)
        finally:
            reset_plan()
        assert sorted(completed) == keys
        assert _drained(queue.status(), done=n_jobs)


# ----------------------------------------------------------------------
# fleet supervision end to end (subprocess)
# ----------------------------------------------------------------------
class TestFleetEndToEnd:
    def test_fleet_survives_injected_crash_by_restarting(
            self, isolated_cache):
        """`repro fleet` against a one-shot crash plan: the first worker
        dies at the claim step, the supervisor restarts it with the fault
        plan stripped, and the restarted worker drains the queue."""
        reference, jobs_list = _reference_then_cold()
        queue_dir = isolated_cache / "queue"
        queue = JobQueue(queue_dir, lease_ttl=LEASE_TTL)
        _submit_all(queue, jobs_list)

        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(isolated_cache)
        env["REPRO_FAULTS"] = "point:after-claim:nth=1:crash"
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "fleet", "-n", "1",
             "--queue-dir", str(queue_dir),
             "--lease-ttl", str(LEASE_TTL),
             "--idle-timeout", "2", "--poll-interval", "0.05",
             "--max-restarts", "3"],
            env=env, capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        assert "restarting" in proc.stderr      # the crash was supervised
        assert _drained(queue.status(), done=len(jobs_list))
        _assert_resolved_from_cache(reference)
