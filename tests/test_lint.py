"""Tests for ``repro lint``: the engine, all six rules, and the CLI.

The self-hosted test at the top is the tier-1 contract: the repository's
own sources stay clean under every rule.  The per-rule tests copy the
paired good/bad fixtures from ``tests/lint_fixtures/`` into temporary
trees with the repository layout and assert the bad member fires (with
the expected messages) while the good member is silent.  The kernel-parity
tests mutate *copies of the real files*, proving the acceptance property
directly: renaming a ``window.py`` field makes lint fail.
"""

import importlib.util
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import (BASELINE_NAME, Finding, Project, load_baseline,
                        run_lint, write_baseline)
from repro.lint.rules import (ALL_RULES, CacheKeyRule, DeterminismRule,
                              EnvVarRule, FastPathRule, KernelParityRule,
                              StatsMergeRule)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def make_tree(tmp_path, files):
    """Materialize ``{relpath: content-or-fixture-Path}`` as a project."""
    for rel, content in files.items():
        dest = tmp_path / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        if isinstance(content, Path):
            content = content.read_text(encoding="utf-8")
        dest.write_text(content, encoding="utf-8")
    return tmp_path


def _load_fixture_module(name, relpath):
    spec = importlib.util.spec_from_file_location(name, FIXTURES / relpath)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


configs = _load_fixture_module("lint_cache_key_configs",
                               Path("cache_key") / "configs.py")


# ---------------------------------------------------------------------------
# Self-hosting: the repository's own sources stay clean.

def test_self_hosted_src_is_clean():
    baseline = load_baseline(REPO_ROOT / BASELINE_NAME)
    report = run_lint(REPO_ROOT, baseline_keys=baseline)
    rendered = "\n".join(f.render() for f in report.findings)
    assert report.ok, f"repro lint found new violations:\n{rendered}"
    # All six rules must actually run against the real tree (a skipped
    # rule would make the clean run vacuous).
    assert sorted(report.rules) == sorted(r.id for r in ALL_RULES)
    assert report.skipped_rules == []


def test_committed_baseline_stays_empty():
    # Policy (docs/ARCHITECTURE.md): intentional violations use inline
    # suppressions; the baseline only grandfathers and should stay empty.
    assert load_baseline(REPO_ROOT / BASELINE_NAME) == set()


# ---------------------------------------------------------------------------
# determinism

def test_determinism_bad_fixture_fires(tmp_path):
    tree = make_tree(tmp_path, {
        "src/repro/core/engine.py": FIXTURES / "determinism" / "bad.py"})
    report = run_lint(tree, rules=[DeterminismRule()])
    messages = [f.message for f in report.findings]
    assert len(messages) == 6
    for needle in ("unordered set", "random.random", "time.time",
                   "Random()", "id(...)"):
        assert any(needle in m for m in messages), needle
    assert all(f.rule == "determinism" for f in report.findings)
    assert all(f.path == "src/repro/core/engine.py"
               for f in report.findings)


def test_determinism_good_fixture_clean(tmp_path):
    tree = make_tree(tmp_path, {
        "src/repro/core/engine.py": FIXTURES / "determinism" / "good.py"})
    assert run_lint(tree, rules=[DeterminismRule()]).ok


def test_determinism_scope_excludes_experiment_layers(tmp_path):
    # The experiments/distrib layers legitimately read clocks; the same
    # source outside the engine packages is not flagged.
    tree = make_tree(tmp_path, {
        "src/repro/core/__init__.py": "",
        "src/repro/experiments/runner2.py":
            FIXTURES / "determinism" / "bad.py"})
    assert run_lint(tree, rules=[DeterminismRule()]).ok


# ---------------------------------------------------------------------------
# suppressions and baseline semantics

BAD_LINE = "stamp = time.time()\n"


def _one_finding_tree(tmp_path, body):
    return make_tree(tmp_path, {
        "src/repro/core/engine.py": "import time\n\n" + body})


def test_inline_suppression_same_line(tmp_path):
    tree = _one_finding_tree(
        tmp_path,
        "stamp = time.time()  # repro: lint-ok[determinism] test fixture\n")
    report = run_lint(tree, rules=[DeterminismRule()])
    assert report.ok and report.suppressed == 1


def test_inline_suppression_line_above(tmp_path):
    tree = _one_finding_tree(
        tmp_path,
        "# repro: lint-ok[determinism] test fixture\nstamp = time.time()\n")
    report = run_lint(tree, rules=[DeterminismRule()])
    assert report.ok and report.suppressed == 1


def test_inline_suppression_list_and_wildcard(tmp_path):
    tree = _one_finding_tree(
        tmp_path, "stamp = time.time()  # repro: lint-ok[other, determinism]\n")
    assert run_lint(tree, rules=[DeterminismRule()]).ok
    tree2 = _one_finding_tree(
        tmp_path / "w", "stamp = time.time()  # repro: lint-ok[*] fixture\n")
    assert run_lint(tree2, rules=[DeterminismRule()]).ok


def test_wrong_rule_does_not_suppress(tmp_path):
    tree = _one_finding_tree(
        tmp_path, "stamp = time.time()  # repro: lint-ok[cache-key] nope\n")
    report = run_lint(tree, rules=[DeterminismRule()])
    assert not report.ok and report.suppressed == 0


def test_baseline_grandfathers_without_line_numbers(tmp_path):
    tree = _one_finding_tree(tmp_path, BAD_LINE)
    first = run_lint(tree, rules=[DeterminismRule()])
    assert len(first.findings) == 1
    keys = {f.baseline_key() for f in first.findings}
    # Baseline keys carry no line numbers, so unrelated drift (the finding
    # moving down two lines) keeps the entry matched.
    drifted = _one_finding_tree(tmp_path / "v2",
                                "x = 1\ny = 2\n" + BAD_LINE)
    report = run_lint(drifted, rules=[DeterminismRule()],
                      baseline_keys=keys)
    assert report.ok and report.baselined == 1
    # ... but a genuinely new finding still fails.
    doubled = _one_finding_tree(tmp_path / "v3",
                                BAD_LINE + "tie = id(object())\n")
    report = run_lint(doubled, rules=[DeterminismRule()],
                      baseline_keys=keys)
    assert not report.ok and report.baselined == 1
    assert len(report.findings) == 1


def test_baseline_file_roundtrip(tmp_path):
    findings = [Finding("src/repro/a.py", 3, "determinism", "msg one"),
                Finding("src/repro/b.py", 9, "env-var", "msg two")]
    path = tmp_path / "baseline.txt"
    assert write_baseline(path, findings) == 2
    assert load_baseline(path) == {f.baseline_key() for f in findings}
    assert load_baseline(tmp_path / "missing.txt") == set()


def test_baseline_rejects_malformed_entries(tmp_path):
    path = tmp_path / "baseline.txt"
    path.write_text("not a tab separated entry\n")
    with pytest.raises(ValueError):
        load_baseline(path)


# ---------------------------------------------------------------------------
# stats-merge

def test_stats_merge_bad_fixture_fires(tmp_path):
    tree = make_tree(tmp_path, {
        "src/repro/core/stats.py":
            FIXTURES / "stats_merge" / "bad_stats.py"})
    report = run_lint(tree, rules=[StatsMergeRule()])
    assert len(report.findings) == 2
    assert {m.split(":")[0].split(".")[-1]
            for m in (f.message for f in report.findings)} \
        == {"ipc", "trace"}


def test_stats_merge_good_fixture_clean(tmp_path):
    tree = make_tree(tmp_path, {
        "src/repro/core/stats.py":
            FIXTURES / "stats_merge" / "good_stats.py"})
    assert run_lint(tree, rules=[StatsMergeRule()]).ok


# ---------------------------------------------------------------------------
# fast-path

def _fast_path_tree(tmp_path, pipeline_fixture):
    return make_tree(tmp_path, {
        "src/repro/core/pipeline.py":
            FIXTURES / "fast_path" / pipeline_fixture,
        "src/repro/core/stages/stages.py":
            FIXTURES / "fast_path" / "stages.py",
        "src/repro/core/support.py":
            FIXTURES / "fast_path" / "support.py"})


def test_fast_path_good_fixture_clean(tmp_path):
    tree = _fast_path_tree(tmp_path, "good_pipeline.py")
    report = run_lint(tree, rules=[FastPathRule()])
    assert report.ok, [f.render() for f in report.findings]


def test_fast_path_bad_fixture_fires(tmp_path):
    tree = _fast_path_tree(tmp_path, "bad_pipeline.py")
    report = run_lint(tree, rules=[FastPathRule()])
    messages = [f.message for f in report.findings]
    assert len(messages) == 3
    assert any("isinstance" in m for m in messages)
    assert any("TracingCommit" in m and "overrides" in m for m in messages)
    assert any("_missing_ready" in m for m in messages)


# ---------------------------------------------------------------------------
# env-var

_ENV_REGISTRY = {
    "REPRO_TEST_KNOB": frozenset({"src/repro/knobs.py::test_knob"})}


def test_env_var_good_fixture_clean(tmp_path):
    tree = make_tree(tmp_path, {
        "src/repro/knobs.py": FIXTURES / "env_var" / "good_reader.py",
        "docs/ARCHITECTURE.md": FIXTURES / "env_var" / "docs_good.md"})
    rule = EnvVarRule(registry=_ENV_REGISTRY, generic=frozenset())
    report = run_lint(tree, rules=[rule])
    assert report.ok, [f.render() for f in report.findings]


def test_env_var_bad_fixture_fires(tmp_path):
    tree = make_tree(tmp_path, {
        "src/repro/other.py": FIXTURES / "env_var" / "bad_reader.py",
        "docs/ARCHITECTURE.md": FIXTURES / "env_var" / "docs_bad.md"})
    rule = EnvVarRule(registry=_ENV_REGISTRY, generic=frozenset())
    report = run_lint(tree, rules=[rule])
    messages = [f.message for f in report.findings]
    assert any("must be read through its accessor" in m for m in messages)
    assert any("no registered accessor" in m for m in messages)
    assert any("dynamic os.environ read" in m for m in messages)
    undocumented = [m for m in messages if "not documented" in m]
    assert len(undocumented) == 2  # REPRO_TEST_KNOB and REPRO_MYSTERY_KNOB
    assert len(messages) == 5


def test_env_var_missing_docs_file(tmp_path):
    tree = make_tree(tmp_path, {
        "src/repro/knobs.py": FIXTURES / "env_var" / "good_reader.py"})
    rule = EnvVarRule(registry=_ENV_REGISTRY, generic=frozenset())
    report = run_lint(tree, rules=[rule])
    assert any("not found" in f.message for f in report.findings)


# ---------------------------------------------------------------------------
# cache-key (loader-injected; the live-tree loader is exercised by the
# self-hosted run above)

def _cache_key_report(cls):
    rule = CacheKeyRule(loader=lambda project: cls)
    return run_lint(REPO_ROOT, rules=[rule])


def test_cache_key_good_config_clean():
    assert _cache_key_report(configs.GoodConfig).ok


def test_cache_key_elided_default_is_legitimate():
    assert _cache_key_report(configs.ElidedConfig).ok


def test_cache_key_regression_pre_pr1_shape():
    # The historical _config_key bug: a declared field that never reaches
    # the canonical rendering, so configs differing only there collide.
    report = _cache_key_report(configs.BrokenKeyConfig)
    assert len(report.findings) == 1
    assert "assoc" in report.findings[0].message
    assert "missing from canonical to_dict()" in report.findings[0].message


def test_cache_key_fingerprint_blind_field():
    report = _cache_key_report(configs.BlindFingerprintConfig)
    assert len(report.findings) == 1
    assert "ways" in report.findings[0].message
    assert "does not change fingerprint()" in report.findings[0].message


def test_cache_key_audits_nested_configs():
    report = _cache_key_report(configs.BrokenChildParent)
    assert any("BrokenKeyConfig.assoc" in f.message
               for f in report.findings)


def test_cache_key_not_applicable_on_fixture_trees(tmp_path):
    tree = make_tree(tmp_path, {"src/repro/__init__.py": ""})
    report = run_lint(tree, rules=[CacheKeyRule()])
    assert report.skipped_rules == ["cache-key"]
    assert report.rules == []


# ---------------------------------------------------------------------------
# kernel-parity (copies of the real files, mutated)

_PARITY_FILES = ("src/repro/core/window.py", "src/repro/core/scheduler.py",
                 "src/repro/core/lsq.py", "src/repro/core/stages/execute.py",
                 "src/repro/rename/physical.py",
                 "src/repro/core/_kernel.c", "src/repro/core/kernel.py")


def _parity_tree(tmp_path, mutate=None):
    files = {}
    for rel in _PARITY_FILES:
        text = (REPO_ROOT / rel).read_text(encoding="utf-8")
        if mutate:
            text = mutate(rel, text)
        files[rel] = text
    return make_tree(tmp_path, files)


def test_kernel_parity_real_files_clean(tmp_path):
    tree = _parity_tree(tmp_path)
    report = run_lint(tree, rules=[KernelParityRule()])
    assert report.ok, [f.render() for f in report.findings]


def test_kernel_parity_catches_window_field_rename(tmp_path):
    # The acceptance property: renaming a window.py field (without
    # updating the scheduler/C side) makes lint fail.
    def mutate(rel, text):
        if rel.endswith("window.py"):
            assert '"sort_key"' in text
            return text.replace('"sort_key"', '"order_key"')
        return text

    tree = _parity_tree(tmp_path, mutate)
    report = run_lint(tree, rules=[KernelParityRule()])
    assert any("sort_key" in f.message and "__slots__" in f.message
               for f in report.findings)


def test_kernel_parity_catches_define_value_drift(tmp_path):
    def mutate(rel, text):
        if rel.endswith("_kernel.c"):
            assert "#define SEQ_BITS 48" in text
            return text.replace("#define SEQ_BITS 48",
                                "#define SEQ_BITS 40")
        return text

    tree = _parity_tree(tmp_path, mutate)
    report = run_lint(tree, rules=[KernelParityRule()])
    assert any("SEQ_BITS" in f.message and "disagrees" in f.message
               for f in report.findings)


def test_kernel_parity_catches_unexported_checked_constant(tmp_path):
    def mutate(rel, text):
        if rel.endswith("_kernel.c"):
            assert '"SEQ_BITS"' in text
            return text.replace('"SEQ_BITS"', '"SEQ_BITS_RENAMED"')
        return text

    tree = _parity_tree(tmp_path, mutate)
    report = run_lint(tree, rules=[KernelParityRule()])
    assert any("SEQ_BITS" in f.message
               and "PyModule_AddIntConstant" in f.message
               for f in report.findings)


# ---------------------------------------------------------------------------
# CLI (--json schema, exit codes)

def _run_cli(args, cwd):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "lint", *args],
        cwd=cwd, env=env, capture_output=True, text=True)


def test_mypy_strict_modules_clean():
    # mypy is an optional (CI-installed) dependency; the staged config in
    # pyproject.toml holds these four modules to strict annotations.
    pytest.importorskip("mypy")
    files = ["src/repro/core/window.py", "src/repro/core/kernel.py",
             "src/repro/serialization.py", "src/repro/distrib/queue.py"]
    proc = subprocess.run([sys.executable, "-m", "mypy", *files],
                          cwd=REPO_ROOT, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


def test_cli_json_roundtrip_and_exit_codes(tmp_path):
    tree = make_tree(tmp_path, {
        "src/repro/core/engine.py": FIXTURES / "determinism" / "bad.py"})
    proc = _run_cli(["--json", "--root", str(tree),
                     "--rules", "determinism"], cwd=REPO_ROOT)
    assert proc.returncode == 1, proc.stderr
    payload = json.loads(proc.stdout)
    assert payload["rules"] == ["determinism"]
    assert payload["counts"]["new"] == 6
    assert payload["counts"] == {"new": 6, "suppressed": 0, "baselined": 0}
    # Schema roundtrip: every finding reconstructs exactly.
    for entry in payload["findings"]:
        finding = Finding.from_dict(entry)
        assert finding.to_dict() == entry
        assert finding.rule == "determinism"

    clean = make_tree(tmp_path / "clean", {
        "src/repro/core/engine.py": FIXTURES / "determinism" / "good.py"})
    proc = _run_cli(["--root", str(clean), "--rules", "determinism"],
                    cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ok: 0 new finding(s)" in proc.stdout
