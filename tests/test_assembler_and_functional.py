"""Tests for the text assembler, the program builder and the functional
emulator (including the micro-kernels used throughout the suite)."""

import pytest

from repro.functional import ArchState, Emulator, SparseMemory, execute_step
from repro.functional.emulator import EmulationLimitExceeded, run_program
from repro.isa import AssemblerError, Opcode, ProgramBuilder, assemble
from repro.isa.program import INST_SIZE
from repro.workloads import (
    array_sum,
    counted_loop,
    fib_recursive,
    matrix_smooth,
    pointer_chase,
    save_restore_chain,
)


class TestAssembler:
    def test_basic_program(self):
        prog = assemble("""
        main:
            li   t0, 5
            addqi t0, t0, 3
            mov  a0, t0
            syscall 0
        """)
        assert len(prog) == 4
        result = run_program(prog)
        assert result.exit_code == 8

    def test_memory_operands(self):
        prog = assemble("""
            li   t0, 42
            stq  t0, 16(sp)
            ldq  t1, 16(sp)
            mov  a0, t1
            syscall 0
        """)
        assert run_program(prog).exit_code == 42

    def test_labels_and_branches(self):
        prog = assemble("""
            li t0, 3
            li t1, 0
        loop:
            addqi t1, t1, 10
            subqi t0, t0, 1
            bgt t0, loop
            mov a0, t1
            syscall 0
        """)
        assert run_program(prog).exit_code == 30

    def test_call_and_ret(self):
        prog = assemble("""
        main:
            li a0, 7
            bsr ra, double
            mov a0, v0
            syscall 0
        double:
            addq v0, a0, a0
            ret
        """)
        assert run_program(prog).exit_code == 14

    def test_comments_and_blank_lines(self):
        prog = assemble("""
            # a comment
            li a0, 1   ; trailing comment

            syscall 0
        """)
        assert len(prog) == 2

    def test_label_pcs_recorded(self):
        prog = assemble("""
        start:
            nop
        second:
            nop
        """)
        assert prog.label_pc("start") == 0
        assert prog.label_pc("second") == INST_SIZE

    def test_errors(self):
        with pytest.raises(AssemblerError):
            assemble("addq t0, t1")           # missing operand
        with pytest.raises(AssemblerError):
            assemble("ldq t0, t1")            # not a memory operand
        with pytest.raises(AssemblerError):
            assemble("bogus t0, t1, t2")      # unknown opcode
        with pytest.raises(ValueError):
            assemble("br nowhere")            # undefined label


class TestProgramBuilder:
    def test_duplicate_label_rejected(self):
        builder = ProgramBuilder()
        builder.label("x")
        builder.nop()
        with pytest.raises(ValueError):
            builder.label("x")

    def test_forward_reference_resolution(self):
        builder = ProgramBuilder()
        builder.cbr("beq", "t0", "later")
        builder.nop()
        builder.label("later")
        builder.nop()
        prog = builder.build()
        assert prog.at(0).target == 2 * INST_SIZE

    def test_data_initialisation(self):
        builder = ProgramBuilder()
        builder.set_data(0x1000, 77)
        builder.ldq("a0", 0x1000, "zero")
        builder.syscall(0)
        prog = builder.build()
        assert run_program(prog).exit_code == 77


class TestEmulator:
    def test_zero_register_writes_are_discarded(self):
        prog = assemble("""
            li zero, 99
            mov a0, zero
            syscall 0
        """)
        assert run_program(prog).exit_code == 0

    def test_putint_syscall(self):
        prog = assemble("""
            li a0, 5
            syscall 1
            li a0, 6
            syscall 1
            syscall 0
        """)
        result = run_program(prog)
        assert result.output == [5, 6]

    def test_limit_exceeded(self):
        prog = assemble("""
        spin:
            br spin
        """)
        with pytest.raises(EmulationLimitExceeded):
            Emulator(prog).run(max_instructions=100)

    def test_non_strict_run_returns_partial(self):
        prog = assemble("""
        spin:
            addqi t0, t0, 1
            br spin
        """)
        result = Emulator(prog).run(max_instructions=50, strict=False)
        assert result.instructions == 50
        assert not result.halted

    def test_running_off_the_end_halts(self):
        prog = assemble("nop\nnop")
        result = run_program(prog)
        assert result.instructions == 2
        assert result.exit_code is None

    def test_execute_step_store_and_load(self):
        prog = assemble("""
            li t0, 123
            stq t0, 8(sp)
            ldq t1, 8(sp)
        """)
        state = ArchState(pc=0)
        for _ in range(3):
            inst = prog.at(state.pc)
            execute_step(state, inst)
        assert state.read_reg(2) == 123       # t1


class TestSparseMemory:
    def test_alignment(self):
        mem = SparseMemory()
        mem.write(0x1004, 9)
        assert mem.read(0x1000) == 9
        assert SparseMemory.align(0x1007) == 0x1000

    def test_default_zero_and_copy(self):
        mem = SparseMemory({0x20: 5})
        assert mem.read(0x20) == 5
        assert mem.read(0x28) == 0
        clone = mem.copy()
        clone.write(0x20, 6)
        assert mem.read(0x20) == 5


class TestKernels:
    """The micro-kernels produce their closed-form results functionally."""

    def test_counted_loop(self):
        result = run_program(counted_loop(iterations=50, step=4))
        assert result.exit_code == 200

    def test_array_sum(self):
        result = run_program(array_sum(length=32))
        assert result.exit_code == sum(range(32))

    def test_fib(self):
        result = run_program(fib_recursive(10))
        assert result.exit_code == 55

    def test_pointer_chase(self):
        result = run_program(pointer_chase(nodes=16, hops=64))
        assert result.exit_code is not None
        assert result.load_count >= 64

    def test_save_restore_chain(self):
        result = run_program(save_restore_chain(depth=4, iterations=8))
        assert result.exit_code is not None
        # Every call level saves three registers.
        assert result.store_count >= 4 * 8 * 3

    def test_matrix_smooth_has_fp(self):
        from repro.isa.opcodes import OpClass
        result = run_program(matrix_smooth(size=6, passes=2))
        assert result.class_counts.get(OpClass.FP_ADD, 0) > 0
        assert result.class_counts.get(OpClass.FP_MUL, 0) > 0
