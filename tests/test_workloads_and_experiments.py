"""Tests for the synthetic SPEC-like workload generators, the statistics /
analysis helpers, and the experiment harness plumbing."""

import pytest

from repro.analysis import (
    arithmetic_mean,
    distance_breakdown,
    geometric_mean,
    refcount_breakdown,
    speedup,
    status_breakdown,
    type_breakdown,
)
from repro.analysis.metrics import format_table
from repro.core import MachineConfig, SimStats, simulate
from repro.core.stats import IntegrationType, ResultStatus, distance_bucket
from repro.experiments import runner
from repro.experiments import figure4
from repro.functional import Emulator
from repro.integration import IntegrationConfig, LispMode
from repro.workloads import SPEC_WORKLOADS, build_workload, workload_names
from repro.workloads.spec_like import WorkloadSpec, _Generator


class TestWorkloadGenerators:
    def test_all_sixteen_benchmarks_registered(self):
        names = workload_names()
        assert len(names) == 16
        for expected in ("bzip2", "crafty", "gcc", "gzip", "mcf", "parser",
                         "twolf", "vortex"):
            assert expected in names

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            build_workload("spec2017")

    def test_generation_is_deterministic(self):
        first = build_workload("gcc", scale=0.2)
        second = build_workload("gcc", scale=0.2)
        assert len(first) == len(second)
        assert [str(i) for i in first] == [str(i) for i in second]

    def test_scale_controls_dynamic_length(self):
        short = Emulator(build_workload("gzip", scale=0.2)).run()
        long = Emulator(build_workload("gzip", scale=0.6)).run()
        assert long.instructions > short.instructions

    @pytest.mark.parametrize("name", workload_names())
    def test_every_workload_halts_functionally(self, name):
        result = Emulator(build_workload(name, scale=0.1)).run(
            max_instructions=500_000)
        assert result.halted
        assert result.exit_code is not None
        assert result.instructions > 200

    def test_call_intensive_workloads_have_more_calls(self):
        vortex = Emulator(build_workload("vortex", scale=0.15)).run()
        gzip = Emulator(build_workload("gzip", scale=0.15)).run()
        assert (vortex.call_count / vortex.instructions
                > gzip.call_count / gzip.instructions)

    def test_mcf_is_load_heavy(self):
        mcf = Emulator(build_workload("mcf", scale=0.4)).run()
        gzip = Emulator(build_workload("gzip", scale=0.4)).run()
        assert (mcf.load_count / mcf.instructions
                > gzip.load_count / gzip.instructions)
        assert mcf.load_count / mcf.instructions > 0.08

    def test_spec_workload_specs_are_frozen_and_scalable(self):
        spec = SPEC_WORKLOADS["gcc"]
        scaled = spec.scaled(0.5)
        assert scaled.outer_iters == max(1, round(spec.outer_iters * 0.5))
        assert spec.outer_iters != 0

    def test_generator_plans_respect_call_depth(self):
        spec = WorkloadSpec(name="tmp", seed=1, description="",
                            num_funcs=6, call_depth=3)
        gen = _Generator(spec)
        levels = {plan.level for plan in gen.plans}
        assert max(levels) <= spec.call_depth - 1
        for plan in gen.plans:
            for callee in plan.callees:
                callee_plan = next(p for p in gen.plans if p.name == callee)
                assert callee_plan.level == plan.level + 1


class TestStatsAndAnalysis:
    def _run(self, integration=True):
        program = build_workload("crafty", scale=0.1)
        icfg = (IntegrationConfig.full() if integration
                else IntegrationConfig.disabled())
        return simulate(program, MachineConfig().with_integration(icfg),
                        name="crafty")

    def test_speedup_and_means(self):
        base = SimStats(cycles=1000, retired=100)
        better = SimStats(cycles=800, retired=100)
        assert speedup(base, better) == pytest.approx(0.25)
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert geometric_mean([0.1, 0.1]) == pytest.approx(0.1)
        assert geometric_mean([]) == 0.0

    def test_distance_bucket_mapping(self):
        assert distance_bucket(1) == 4
        assert distance_bucket(5) == 16
        assert distance_bucket(1000) == 1024
        assert distance_bucket(100000) > 1024

    def test_breakdowns_normalise_to_one(self):
        stats = self._run()
        assert stats.integrated > 0
        types = type_breakdown(stats)
        total_types = sum(v for k, v in types.items()
                          if not k.endswith("_reverse"))
        assert total_types == pytest.approx(1.0, abs=1e-6)
        statuses = status_breakdown(stats)
        assert sum(statuses.values()) == pytest.approx(1.0, abs=1e-6)
        refcounts = refcount_breakdown(stats)
        assert sum(refcounts.values()) == pytest.approx(1.0, abs=1e-6)
        distances = distance_breakdown(stats)
        assert max(distances.values()) == pytest.approx(1.0, abs=1e-6)

    def test_stats_derived_properties(self):
        stats = self._run()
        assert 0 < stats.ipc < 4
        assert 0 <= stats.integration_rate <= 1
        assert stats.integrated == (stats.integrated_direct
                                    + stats.integrated_reverse)
        assert stats.avg_rs_occupancy >= 0
        summary = stats.summary()
        assert set(summary) >= {"ipc", "integration_rate", "cycles"}

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 0.5}, {"a": 20, "b": None}],
                            ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5


class TestExperimentHarness:
    def test_runner_cache_reuses_results(self):
        runner.clear_cache()
        cfg = MachineConfig().with_integration(IntegrationConfig.disabled())
        first = runner.run_benchmark("gzip", cfg, scale=0.1)
        second = runner.run_benchmark("gzip", cfg, scale=0.1)
        assert first is second
        third = runner.run_benchmark("gzip", cfg, scale=0.1, use_cache=False)
        assert third is not first
        assert third.cycles == first.cycles       # deterministic simulation

    def test_run_suite_shape(self):
        configs = {
            "none": MachineConfig().with_integration(
                IntegrationConfig.disabled()),
            "full": MachineConfig().with_integration(IntegrationConfig.full()),
        }
        results = runner.run_suite(["gzip"], configs, scale=0.1)
        assert set(results) == {"none", "full"}
        assert set(results["none"]) == {"gzip"}

    def test_figure4_config_mapping(self):
        squash = figure4.integration_config_for("squash")
        assert not squash.general_reuse and not squash.reverse
        reverse = figure4.integration_config_for("+reverse",
                                                 LispMode.ORACLE)
        assert reverse.reverse and reverse.lisp_mode is LispMode.ORACLE
        with pytest.raises(ValueError):
            figure4.integration_config_for("+magic")

    def test_figure4_small_run_and_report(self):
        result = figure4.run(benchmarks=["gzip"], scale=0.1,
                             lisp_modes=(LispMode.REALISTIC,))
        speedups = result.speedups("+reverse")
        assert "gzip" in speedups and "GMean" in speedups
        text = figure4.report(result)
        assert "gzip" in text and "+reverse spd" in text

    def test_default_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        assert runner.default_scale() == 0.25
