"""Unit tests for the out-of-order core structures: ROB, reservation
stations, load/store queue and collision history table, and the DIVA
checker."""

import pytest

from repro.core import (
    CollisionHistoryTable,
    DivaChecker,
    IssuePortConfig,
    LoadStoreQueue,
    ReorderBuffer,
    ReservationStations,
)
from repro.core.config import MachineConfig
from repro.core.diva import SimulationError
from repro.functional import ArchState
from repro.isa import Opcode, StaticInst
from repro.isa.instruction import DynInst


def dyn(seq, op=Opcode.ADDQ, **kwargs):
    defaults = dict(pc=seq * 4, rd=1, ra=2, rb=3)
    defaults.update(kwargs)
    return DynInst(seq, StaticInst(op=op, **defaults))


class TestReorderBuffer:
    def test_fifo_order_and_capacity(self):
        rob = ReorderBuffer(4)
        for seq in range(1, 5):
            rob.push(dyn(seq))
        assert rob.full
        with pytest.raises(RuntimeError):
            rob.push(dyn(5))
        assert rob.head().seq == 1
        assert rob.pop_head().seq == 1
        assert len(rob) == 3

    def test_squash_younger_than(self):
        rob = ReorderBuffer(8)
        for seq in range(1, 7):
            rob.push(dyn(seq))
        squashed = rob.squash_younger_than(3)
        assert [d.seq for d in squashed] == [6, 5, 4]   # youngest first
        assert [d.seq for d in rob] == [1, 2, 3]

    def test_squash_all(self):
        rob = ReorderBuffer(8)
        for seq in range(1, 4):
            rob.push(dyn(seq))
        squashed = rob.squash_all()
        assert [d.seq for d in squashed] == [3, 2, 1]
        assert rob.empty


class TestReservationStations:
    def always_ready(self, _):
        return True

    def test_capacity(self):
        rs = ReservationStations(2, IssuePortConfig())
        rs.insert(dyn(1))
        rs.insert(dyn(2))
        assert not rs.has_space()
        with pytest.raises(RuntimeError):
            rs.insert(dyn(3))

    def test_port_limits_respected(self):
        ports = IssuePortConfig(issue_width=4, simple_int=2, complex_fp=2,
                                loads=1, stores=1)
        rs = ReservationStations(16, ports)
        for seq in range(1, 7):
            rs.insert(dyn(seq, op=Opcode.ADDQ))
        selected = rs.select(self.always_ready, self.always_ready)
        assert len(selected) == 2              # simple-int port limit

    def test_total_issue_width(self):
        ports = IssuePortConfig(issue_width=3, simple_int=2, complex_fp=2,
                                loads=1, stores=1)
        rs = ReservationStations(16, ports)
        rs.insert(dyn(1, op=Opcode.ADDQ))
        rs.insert(dyn(2, op=Opcode.MULT, rd=33, ra=34, rb=35))
        rs.insert(dyn(3, op=Opcode.LDQ, rd=1, ra=2, rb=None, imm=0))
        rs.insert(dyn(4, op=Opcode.STQ, rd=None, ra=1, rb=2, imm=0))
        selected = rs.select(self.always_ready, self.always_ready)
        assert len(selected) == 3

    def test_priority_classes_first_then_age(self):
        rs = ReservationStations(16, IssuePortConfig())
        old_alu = dyn(1, op=Opcode.ADDQ)
        young_load = dyn(2, op=Opcode.LDQ, rd=1, ra=2, rb=None, imm=0)
        rs.insert(old_alu)
        rs.insert(young_load)
        selected = rs.select(self.always_ready, self.always_ready)
        assert selected[0] is young_load       # loads have priority

    def test_combined_load_store_port(self):
        rs = ReservationStations(16, IssuePortConfig(), combined_ldst_port=True)
        rs.insert(dyn(1, op=Opcode.LDQ, rd=1, ra=2, rb=None, imm=0))
        rs.insert(dyn(2, op=Opcode.STQ, rd=None, ra=1, rb=2, imm=0))
        selected = rs.select(self.always_ready, self.always_ready)
        mem_ops = [d for d in selected if d.op in (Opcode.LDQ, Opcode.STQ)]
        assert len(mem_ops) == 1

    def test_not_ready_instructions_stay(self):
        rs = ReservationStations(16, IssuePortConfig())
        rs.insert(dyn(1))
        selected = rs.select(lambda d: False, self.always_ready)
        assert selected == []
        assert rs.occupancy == 1

    def test_squash_removes_entries(self):
        rs = ReservationStations(16, IssuePortConfig())
        a, b = dyn(1), dyn(2)
        rs.insert(a)
        rs.insert(b)
        assert rs.squash({2}) == 1
        assert rs.occupancy == 1


def load(seq, addr_reg=2, imm=0):
    return DynInst(seq, StaticInst(pc=seq * 4, op=Opcode.LDQ, rd=1,
                                   ra=addr_reg, imm=imm))


def store(seq, imm=0):
    return DynInst(seq, StaticInst(pc=seq * 4, op=Opcode.STQ, ra=1, rb=2,
                                   imm=imm))


class TestLoadStoreQueue:
    def test_forwarding_from_youngest_older_store(self):
        lsq = LoadStoreQueue(8)
        st1, st2, ld = store(1), store(2), load(3)
        for d in (st1, st2, ld):
            lsq.insert(d)
        st1.store_value = 10
        st2.store_value = 20
        lsq.resolve_store(st1, 0x100)
        lsq.resolve_store(st2, 0x100)
        found, ready = lsq.forward_from(ld, 0x100)
        assert found is st2 and ready

    def test_no_forwarding_from_younger_store(self):
        lsq = LoadStoreQueue(8)
        ld, st = load(1), store(2)
        lsq.insert(ld)
        lsq.insert(st)
        lsq.resolve_store(st, 0x100)
        found, _ = lsq.forward_from(ld, 0x100)
        assert found is None

    def test_violation_detection(self):
        lsq = LoadStoreQueue(8)
        st, ld = store(1), load(2)
        lsq.insert(st)
        lsq.insert(ld)
        lsq.record_load(ld, 0x200)            # load executed first
        violations = lsq.resolve_store(st, 0x200)
        assert violations == [ld]
        # A store to a different word does not flag the load.
        lsq2 = LoadStoreQueue(8)
        st2, ld2 = store(1), load(2)
        lsq2.insert(st2)
        lsq2.insert(ld2)
        lsq2.record_load(ld2, 0x200)
        assert lsq2.resolve_store(st2, 0x300) == []

    def test_older_unresolved_store_tracking(self):
        lsq = LoadStoreQueue(8)
        st, ld = store(1), load(2)
        lsq.insert(st)
        lsq.insert(ld)
        assert lsq.older_stores_unresolved(ld)
        lsq.resolve_store(st, 0x500)
        assert not lsq.older_stores_unresolved(ld)

    def test_capacity_and_squash(self):
        lsq = LoadStoreQueue(2)
        lsq.insert(load(1))
        lsq.insert(store(2))
        assert not lsq.has_space()
        assert lsq.squash({2}) == 1
        assert lsq.has_space()


class TestCollisionHistoryTable:
    def test_train_and_predict(self):
        cht = CollisionHistoryTable(16)
        assert not cht.predicts_collision(0x40)
        cht.train(0x40)
        assert cht.predicts_collision(0x40)
        # Direct-mapped: a conflicting PC evicts the old entry.
        cht.train(0x40 + 16 * 4)
        assert not cht.predicts_collision(0x40)


class TestDivaChecker:
    def test_detects_wrong_value(self):
        arch = ArchState(pc=0)
        checker = DivaChecker(arch)
        inst = StaticInst(pc=0, op=Opcode.ADDQI, rd=1, ra=31, imm=5)
        d = DynInst(1, inst)
        step, fault = checker.check_and_commit(d, observed_value=99,
                                               observed_taken=None,
                                               observed_next_pc=None)
        assert fault is not None and fault.kind == "value"
        assert step.dest_value == 5
        assert arch.read_reg(1) == 5           # architectural state corrected

    def test_accepts_correct_value_and_advances_pc(self):
        arch = ArchState(pc=0)
        checker = DivaChecker(arch)
        inst = StaticInst(pc=0, op=Opcode.ADDQI, rd=1, ra=31, imm=5)
        _, fault = checker.check_and_commit(DynInst(1, inst), 5, None, None)
        assert fault is None
        assert arch.pc == 4

    def test_detects_wrong_branch_direction(self):
        arch = ArchState(pc=0)
        checker = DivaChecker(arch)
        inst = StaticInst(pc=0, op=Opcode.BEQ, ra=31, imm=16, target=20)
        _, fault = checker.check_and_commit(DynInst(1, inst), None,
                                            observed_taken=False,
                                            observed_next_pc=None)
        assert fault is not None and fault.kind == "branch"
        assert fault.correct_next_pc == 20

    def test_pc_divergence_is_a_simulator_bug(self):
        arch = ArchState(pc=100)
        checker = DivaChecker(arch)
        inst = StaticInst(pc=0, op=Opcode.NOP)
        with pytest.raises(SimulationError):
            checker.check_and_commit(DynInst(1, inst), None, None, None)


class TestMachineConfigPresets:
    def test_pipeline_depth_is_thirteen_stages(self):
        assert MachineConfig().pipeline_depth == 13

    def test_figure7_variants(self):
        base = MachineConfig()
        assert base.reduced_rs().rs_entries == 20
        iw = base.reduced_issue_width()
        assert iw.ports.issue_width == 3
        assert iw.combined_ldst_port
        both = base.reduced_both()
        assert both.rs_entries == 20 and both.ports.issue_width == 3
