"""The distributed execution subsystem: queue protocol, backends, CLI.

Covers the tentpole acceptance criteria:

* the filesystem queue never double-claims under concurrency (hypothesis),
  reclaims crashed workers' leases, and dead-letters after bounded retry;
* serial, pool and distributed backends produce identical merged SimStats;
* a sweep submitted via ``repro submit`` and drained by two independent
  worker *processes* (sharing only the cache directory) matches the pool
  backend bit for bit, and a killed worker's job is neither lost nor
  duplicated;
* the satellite commands: ``repro cache gc`` (age/size bounds, orphaned
  ``*.tmp`` sweep, queue subtree immunity) and ``repro profile``.
"""

import json
import os
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import MachineConfig
from repro.distrib import backend as backend_mod
from repro.distrib import worker as worker_mod
from repro.distrib.backend import (
    BackendError,
    DistributedBackend,
    PoolBackend,
    SerialBackend,
    resolve_backend,
)
from repro.distrib.queue import JobQueue, job_id_for
from repro.experiments import cache as cache_mod
from repro.experiments import runner
from repro.experiments.cache import ResultCache
from repro.integration.config import IntegrationConfig


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    """Fresh cache + queue roots; cold in-process state."""
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path))
    monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.setattr(runner, "_DISK_CACHE", None)
    runner._MEMORY_CACHE.clear()
    runner.telemetry.reset()
    yield tmp_path
    runner._MEMORY_CACHE.clear()
    runner.clear_cache()
    monkeypatch.setattr(runner, "_DISK_CACHE", None)


SUITE_CONFIGS = {
    "none": MachineConfig().with_integration(IntegrationConfig.disabled()),
    "full": MachineConfig().with_integration(IntegrationConfig.full()),
}


def _dummy_jobs(queue, count):
    for i in range(count):
        assert queue.submit({"key": f"key-{i:04d}"}, est_work=i)


# ----------------------------------------------------------------------
# queue protocol
# ----------------------------------------------------------------------
class TestQueueProtocol:
    def test_submit_is_deduplicated_while_in_flight(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        assert queue.submit({"key": "k1"}, est_work=5)
        assert not queue.submit({"key": "k1"}, est_work=5)   # pending
        job = queue.claim("w1")
        assert not queue.submit({"key": "k1"}, est_work=5)   # claimed
        assert queue.complete(job)
        # After done, a resubmission is honored: submitters probe the
        # cache first, so reaching submit() again means the result was
        # evicted and the done marker is stale (see
        # test_stale_done_marker_does_not_block_resubmission).
        assert queue.submit({"key": "k1"}, est_work=5)

    def test_claim_order_is_longest_first(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        for key, work in (("small", 10), ("big", 1000), ("mid", 100)):
            queue.submit({"key": key}, est_work=work)
        order = [queue.claim("w").payload["key"] for _ in range(3)]
        assert order == ["big", "mid", "small"]

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    @given(jobs=st.integers(1, 24), claimers=st.integers(2, 8))
    def test_concurrent_claimers_never_double_claim(self, tmp_path, jobs,
                                                    claimers):
        """N threads hammering claim() each get a disjoint set of jobs and
        between them exactly drain the queue."""
        queue = JobQueue(tmp_path / f"q-{jobs}-{claimers}-{time.time_ns()}")
        _dummy_jobs(queue, jobs)

        def drain(worker):
            got = []
            while True:
                job = queue.claim(worker)
                if job is None:
                    return got
                got.append(job.payload["key"])
        with ThreadPoolExecutor(max_workers=claimers) as pool:
            grabbed = list(pool.map(drain, [f"w{i}" for i in range(claimers)]))
        flat = [key for keys in grabbed for key in keys]
        assert sorted(flat) == sorted(f"key-{i:04d}" for i in range(jobs))
        assert len(flat) == len(set(flat))      # no double claims
        assert queue.status().pending == 0

    def test_lease_expiry_reclaims_crashed_worker(self, tmp_path):
        """A claimed job whose owner dies (no heartbeat, no complete) comes
        back to pending with one attempt burned, and is claimable again."""
        queue = JobQueue(tmp_path / "q", lease_ttl=0.05)
        queue.submit({"key": "k1"})
        job = queue.claim("crashed-worker")
        assert job is not None
        assert queue.reclaim_expired() == 0       # lease still fresh
        time.sleep(0.1)
        assert queue.reclaim_expired() == 1
        assert queue.status().pending == 1
        again = queue.claim("rescue-worker")
        assert again is not None
        assert again.payload["attempts"] == 1
        assert "lease expired" in again.payload["errors"][-1]
        assert queue.complete(again)
        assert queue.status().done == 1

    def test_live_lease_is_never_stolen(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_ttl=0.2)
        queue.submit({"key": "k1"})
        job = queue.claim("w1")
        for _ in range(3):
            time.sleep(0.1)
            queue.heartbeat(job)
            assert queue.reclaim_expired() == 0

    def test_retry_then_dead_letter(self, tmp_path):
        queue = JobQueue(tmp_path / "q", max_attempts=2)
        queue.submit({"key": "k1"})
        job = queue.claim("w1")
        assert queue.fail(job, "boom 1") == "pending"   # retry
        job = queue.claim("w1")
        assert job.payload["attempts"] == 1
        assert queue.fail(job, "boom 2") == "dead"      # bound reached
        assert queue.claim("w1") is None
        status = queue.status()
        assert (status.pending, status.claimed, status.dead) == (0, 0, 1)
        (dead,) = queue.dead_jobs()
        assert dead.key == "k1"
        assert dead.attempts == 2
        assert ["boom 1", "boom 2"] == dead.errors

    def test_losing_the_done_race_is_harmless(self, tmp_path):
        """complete() after a reclaim returns False instead of corrupting
        state -- the canonical duplicated-execution scenario."""
        queue = JobQueue(tmp_path / "q", lease_ttl=0.01)
        queue.submit({"key": "k1"})
        slow = queue.claim("slow-worker")
        time.sleep(0.05)
        assert queue.reclaim_expired() == 1
        fast = queue.claim("fast-worker")
        assert queue.complete(fast)
        assert not queue.complete(slow)           # lost the race, no crash
        status = queue.status()
        assert (status.pending, status.claimed, status.done) == (0, 0, 1)

    def test_job_id_embeds_descending_work_prefix(self):
        small = job_id_for("aaaa", 10)
        big = job_id_for("bbbb", 100000)
        assert sorted([small, big]) == [big, small]   # big sorts first

    def test_corrupt_job_file_is_dead_lettered(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        queue.submit({"key": "k1"})
        (path,) = list((tmp_path / "q" / "pending").iterdir())
        path.write_bytes(b"not json")
        assert queue.claim("w1") is None
        assert queue.status().dead == 1
        # The key survives via the filename, so a blocking submitter's
        # dead-letter watch can still match the job.
        (dead,) = queue.dead_jobs()
        assert dead.key == "k1"
        assert queue.find_dead(dead.job_id).key == "k1"

    def test_stale_done_marker_does_not_block_resubmission(self, tmp_path):
        """done/ dedup must yield when the cached result was evicted:
        submitters only reach submit() after a cache miss, so a done
        marker there is stale and the job must run again."""
        queue = JobQueue(tmp_path / "q")
        queue.submit({"key": "k1"}, est_work=7)
        job = queue.claim("w1")
        assert queue.complete(job)
        assert queue.status().done == 1
        # Same sweep resubmitted after `cache gc` evicted the result:
        assert queue.submit({"key": "k1"}, est_work=7)
        status = queue.status()
        assert (status.pending, status.done) == (1, 0)
        # ...while a dead letter still blocks (poison stays dead).
        dead_q = JobQueue(tmp_path / "q2", max_attempts=1)
        dead_q.submit({"key": "k2"})
        assert dead_q.fail(dead_q.claim("w1"), "poison") == "dead"
        assert not dead_q.submit({"key": "k2"})

    def test_prune_terminal_spares_live_work(self, tmp_path):
        queue = JobQueue(tmp_path / "q", max_attempts=1)
        for i in range(4):
            queue.submit({"key": f"k{i}"}, est_work=i)
        done = queue.claim("w1")
        queue.complete(done)
        assert queue.fail(queue.claim("w1"), "boom") == "dead"
        live = queue.claim("w1")                  # stays claimed
        queue.record_worker("w1", {"executed": 1})
        assert queue.prune_terminal() >= 3        # done + dead + workers
        status = queue.status()
        assert (status.pending, status.claimed) == (1, 1)
        assert (status.done, status.dead) == (0, 0)
        assert not status.workers
        assert live is not None                   # claimed job untouched
        # Age-bounded prune keeps young records.
        queue.complete(live)
        assert queue.prune_terminal(max_age_seconds=3600) == 0
        assert queue.status().done == 1

    def test_purge_empties_every_state(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        _dummy_jobs(queue, 3)
        job = queue.claim("w1")
        queue.complete(job)
        queue.record_worker("w1", {"executed": 1})
        assert queue.purge() == 3
        status = queue.status()
        assert (status.pending, status.claimed, status.done,
                status.dead) == (0, 0, 0, 0)
        assert not status.workers


# ----------------------------------------------------------------------
# backends
# ----------------------------------------------------------------------
class TestBackendEquivalence:
    def _run(self, backend, shards=1, jobs=1):
        return runner.run_suite(["gzip", "mcf"], SUITE_CONFIGS, scale=0.08,
                                jobs=jobs, shards=shards, backend=backend)

    @pytest.mark.parametrize("shards", [1, 2])
    def test_serial_pool_distributed_identical(self, isolated_cache, shards):
        reference = self._run(SerialBackend(), shards=shards)
        runner.clear_cache(disk=True)
        pooled = self._run(PoolBackend(2), shards=shards, jobs=2)
        runner.clear_cache(disk=True)
        distributed = self._run(
            DistributedBackend(queue_dir=isolated_cache / "q",
                               poll_interval=0.01),
            shards=shards)
        for config_name in SUITE_CONFIGS:
            for benchmark in ("gzip", "mcf"):
                assert (reference[config_name][benchmark]
                        == pooled[config_name][benchmark])
                assert (reference[config_name][benchmark]
                        == distributed[config_name][benchmark])

    def test_distributed_backend_drains_inline(self, isolated_cache):
        backend = DistributedBackend(queue_dir=isolated_cache / "q",
                                     poll_interval=0.01)
        results = runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.08,
                                   backend=backend)
        assert results["none"]["gzip"].retired > 0
        assert runner.telemetry.simulations == 2       # drained locally
        assert runner.telemetry.remote_jobs == 0
        status = backend.queue().status()
        assert status.done == 2 and status.depth == 0

    def test_distributed_counts_remote_jobs(self, isolated_cache):
        """Jobs executed by another worker (simulated by publishing their
        results to the shared cache after submission) land in remote_jobs,
        not in simulations -- keeping the --verbose summary truthful."""
        plan = runner.plan_suite(["gzip"], SUITE_CONFIGS, 0.08, 1, 1.0,
                                 use_cache=True)
        assert len(plan.jobs_list) == 2
        # The "remote worker": resolve the planned jobs out-of-band.
        cache = ResultCache()
        for _, job in plan.jobs_list:
            key = job[0]
            cache.store(key, worker_mod.execute_payload(
                worker_mod.make_payload(key, job[1], job[2], job[3])))
        runner.telemetry.reset()
        backend = DistributedBackend(queue_dir=isolated_cache / "q",
                                     poll_interval=0.01, drain=False,
                                     timeout=60)
        outcomes = backend.execute(plan.jobs_list, use_cache=True)
        assert len(outcomes) == 2
        assert runner.telemetry.remote_jobs == 2
        assert runner.telemetry.simulations == 0

    def test_distributed_reclaims_abandoned_lease(self, isolated_cache):
        """A job claimed by a dead worker is reclaimed and finished by the
        backend's inline drain; telemetry records the reclaim."""
        backend = DistributedBackend(queue_dir=isolated_cache / "q",
                                     lease_ttl=0.05, poll_interval=0.01)
        queue = backend.queue()
        plan = runner.plan_suite(["gzip"], SUITE_CONFIGS, 0.08, 1, 1.0,
                                 use_cache=True)
        backend.submit(plan.jobs_list, use_cache=True)
        crashed = queue.claim("crashed-worker")
        assert crashed is not None
        time.sleep(0.1)                  # let the lease expire, no heartbeat
        results = runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.08,
                                   backend=backend)
        assert results["none"]["gzip"].retired > 0
        assert runner.telemetry.leases_reclaimed >= 1
        status = queue.status()
        assert status.done == 2 and status.depth == 0

    def test_dead_letter_aborts_the_wait(self, isolated_cache):
        """An impossible job must fail the submit-side wait with the error
        history, not hang it."""
        backend = DistributedBackend(queue_dir=isolated_cache / "q",
                                     poll_interval=0.01)
        bogus = [(1, ("deadbeef" * 8, "no-such-benchmark",
                      MachineConfig(), 0.1, True, None, None))]
        with pytest.raises(RuntimeError, match="dead-lettered"):
            backend.execute(bogus, use_cache=True)
        status = backend.queue().status()
        assert status.dead == 1 and status.depth == 0

    def test_resubmit_after_cache_eviction_reruns(self, isolated_cache):
        """`cache gc` evicting a result behind a done/ marker must not
        wedge the next submission of the same sweep (the stale-done-marker
        hang): the job re-enqueues and re-executes."""
        backend = DistributedBackend(queue_dir=isolated_cache / "q",
                                     poll_interval=0.01, timeout=30)
        reference = runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.08,
                                     backend=backend)
        assert backend.queue().status().done == 2
        # Evict everything the sweep cached; the queue keeps its markers.
        assert ResultCache().clear() > 0
        runner.clear_cache()                       # in-process memo too
        runner.telemetry.reset()
        again = runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.08,
                                 backend=backend)
        assert runner.telemetry.simulations == 2   # re-ran, no hang
        assert again == reference

    def test_timeout_is_progress_based(self, isolated_cache):
        """With no workers and drain=False the (no-progress) timeout
        fires; progress made by a worker mid-wait resets it (here: the
        whole sweep resolves before the short timeout can fire again)."""
        backend = DistributedBackend(queue_dir=isolated_cache / "q",
                                     poll_interval=0.01, drain=False,
                                     timeout=0.3)
        plan = runner.plan_suite(["gzip"], SUITE_CONFIGS, 0.08, 1, 1.0,
                                 use_cache=True)
        started = time.time()
        with pytest.raises(TimeoutError, match="no progress"):
            backend.execute(plan.jobs_list, use_cache=True)
        assert time.time() - started < 10

    def test_distributed_requires_the_disk_cache(self, isolated_cache):
        backend = DistributedBackend(queue_dir=isolated_cache / "q")
        with pytest.raises(BackendError):
            runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.08,
                             use_cache=False, backend=backend)

    def test_resolve_backend_names_and_fallbacks(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert isinstance(resolve_backend(None, jobs=1), SerialBackend)
        assert isinstance(resolve_backend(None, jobs=4), PoolBackend)
        assert isinstance(resolve_backend("serial", jobs=4), SerialBackend)
        assert isinstance(resolve_backend("pool", jobs=2), PoolBackend)
        assert isinstance(resolve_backend("distributed", jobs=1),
                          DistributedBackend)
        instance = SerialBackend()
        assert resolve_backend(instance, jobs=8) is instance
        with pytest.raises(BackendError):
            resolve_backend("bogus", jobs=1)
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert isinstance(resolve_backend(None, jobs=4), SerialBackend)
        monkeypatch.setenv("REPRO_BACKEND", "nonsense")
        with pytest.raises(runner.EnvVarError):
            resolve_backend(None, jobs=1)


# ----------------------------------------------------------------------
# the worker loop
# ----------------------------------------------------------------------
class TestWorkerLoop:
    def test_worker_drains_submitted_sweep(self, isolated_cache):
        backend = DistributedBackend(queue_dir=isolated_cache / "q")
        plan = runner.plan_suite(["gzip"], SUITE_CONFIGS, 0.08, 1, 1.0,
                                 use_cache=True)
        submitted = backend.submit(plan.jobs_list, use_cache=True)
        assert len(submitted) == 2
        summary = worker_mod.run_worker(
            queue=backend.queue(), cache=ResultCache(),
            idle_timeout=0.2, poll_interval=0.02)
        assert summary.executed == 2
        assert summary.failed == 0
        # The results are now resolvable without simulating: the blocking
        # submit-side contract.
        runner._MEMORY_CACHE.clear()
        runner.telemetry.reset()
        results = runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.08)
        assert runner.telemetry.simulations == 0
        assert results["none"]["gzip"].retired > 0

    def test_worker_skips_already_cached_jobs(self, isolated_cache):
        reference = runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.08)
        queue = JobQueue(isolated_cache / "q")
        plan = runner.plan_suite(["gzip"], SUITE_CONFIGS, 0.08, 1, 1.0,
                                 use_cache=False)   # bypass probe: 2 jobs
        DistributedBackend(queue_dir=queue.root).submit(
            plan.jobs_list, use_cache=True)
        summary = worker_mod.run_worker(queue=queue, cache=ResultCache(),
                                        idle_timeout=0.2, poll_interval=0.02)
        assert summary.cache_hits == 2 and summary.executed == 0
        assert reference["none"]["gzip"].retired > 0

    def test_worker_dead_letters_poison_job(self, isolated_cache):
        queue = JobQueue(isolated_cache / "q", max_attempts=2)
        queue.submit({"key": "k1", "benchmark": "no-such-benchmark",
                      "scale": 0.1, "config": MachineConfig().to_dict()})
        summary = worker_mod.run_worker(queue=queue, cache=ResultCache(),
                                        idle_timeout=0.2, poll_interval=0.02)
        assert summary.failed == 2                 # initial + one retry
        assert summary.executed == 0
        (dead,) = queue.dead_jobs()
        assert dead.attempts == 2

    def test_payload_roundtrip_slice_and_whole(self, isolated_cache):
        from repro.experiments import sharding
        from repro.workloads import build_workload

        plan = runner.plan_suite(["gzip"], {"none": SUITE_CONFIGS["none"]},
                                 0.08, 2, 1.0, use_cache=True)
        assert plan.jobs_list, "sharded plan should expand into slice jobs"
        _, job = plan.jobs_list[-1]
        key, benchmark, config, scale, _, spec, checkpoint = job
        payload = worker_mod.make_payload(key, benchmark, config, scale,
                                          slice_spec=spec,
                                          checkpoint=checkpoint)
        payload = json.loads(json.dumps(payload))     # through JSON, as disk
        stats = worker_mod.execute_payload(payload)
        direct = sharding.simulate_slice(
            build_workload(benchmark, scale=scale),
            config, spec, checkpoint, name=benchmark)
        assert stats == direct


# ----------------------------------------------------------------------
# two independent OS processes sharing only the cache dir (acceptance)
# ----------------------------------------------------------------------
class TestMultiprocessFleet:
    def test_two_worker_processes_drain_a_submitted_sweep(
            self, isolated_cache):
        reference = runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.06,
                                     jobs=2)
        runner.clear_cache(disk=True)
        plan = runner.plan_suite(["gzip"], SUITE_CONFIGS, 0.06, 1, 1.0,
                                 use_cache=True)
        backend = DistributedBackend(queue_dir=isolated_cache / "queue")
        assert len(backend.submit(plan.jobs_list, use_cache=True)) == 2

        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(isolated_cache)
        env.pop("REPRO_QUEUE_DIR", None)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--idle-timeout", "2", "--poll-interval", "0.05",
                 "--queue-dir", str(isolated_cache / "queue"), "--quiet"],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE)
            for _ in range(2)]
        for proc in workers:
            _out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()

        status = backend.queue().status()
        assert status.done == 2 and status.depth == 0 and status.dead == 0
        # Bit-identical to the pool backend, resolved purely from cache.
        runner._MEMORY_CACHE.clear()
        runner.telemetry.reset()
        fleet = runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.06)
        assert runner.telemetry.simulations == 0
        for config_name in SUITE_CONFIGS:
            assert fleet[config_name]["gzip"] == reference[config_name]["gzip"]


# ----------------------------------------------------------------------
# satellite: cache gc
# ----------------------------------------------------------------------
class TestCacheGc:
    def _store(self, cache, key, payload, age_seconds=0.0):
        cache.store_payload(key, payload)
        if age_seconds:
            past = time.time() - age_seconds
            os.utime(cache.path_for(key), (past, past))

    def test_orphaned_tmp_files_are_swept_after_grace(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache, "aa" * 32, {"x": 1})
        fresh = tmp_path / "aa" / "fresh.tmp"
        stale = tmp_path / "aa" / "stale.tmp"
        fresh.write_bytes(b"live writer")
        stale.write_bytes(b"killed writer debris")
        past = time.time() - 7200
        os.utime(stale, (past, past))
        stats = cache.gc(tmp_grace_seconds=3600)
        assert stats["tmp_removed"] == 1
        assert fresh.exists() and not stale.exists()
        assert stats["entries_kept"] == 1

    def test_age_bound(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache, "aa" * 32, {"old": 1}, age_seconds=7 * 86400)
        self._store(cache, "bb" * 32, {"new": 1})
        stats = cache.gc(max_age_seconds=86400)
        assert stats["aged_out"] == 1
        assert cache.load_payload("bb" * 32) == {"new": 1}
        assert cache.load_payload("aa" * 32) is None

    def test_size_bound_evicts_oldest_first(self, tmp_path):
        cache = ResultCache(tmp_path)
        for index, key in enumerate(("aa" * 32, "bb" * 32, "cc" * 32)):
            self._store(cache, key, {"blob": "x" * 200},
                        age_seconds=(3 - index) * 1000)
        total = sum(cache.path_for(k).stat().st_size
                    for k in ("aa" * 32, "bb" * 32, "cc" * 32))
        keep_two = total - 10          # forces exactly one eviction
        stats = cache.gc(max_bytes=keep_two)
        assert stats["evicted_for_size"] == 1
        assert cache.load_payload("aa" * 32) is None     # oldest went
        assert cache.load_payload("bb" * 32) is not None
        assert cache.load_payload("cc" * 32) is not None

    def test_size_bound_survives_undeletable_entries(self, tmp_path,
                                                     monkeypatch):
        """A failed unlink must stay in the totals (the cache is still
        over budget) and eviction must move on to the next-oldest."""
        cache = ResultCache(tmp_path)
        keys = ("aa" * 32, "bb" * 32, "cc" * 32)
        for index, key in enumerate(keys):
            self._store(cache, key, {"blob": "x" * 200},
                        age_seconds=(3 - index) * 1000)
        undeletable = cache.path_for(keys[0])
        real_unlink = ResultCache._unlink

        def sticky_unlink(path):
            if path == undeletable:
                return False
            return real_unlink(path)

        monkeypatch.setattr(ResultCache, "_unlink",
                            staticmethod(sticky_unlink))
        stats = cache.gc(max_bytes=0)
        assert stats["evicted_for_size"] == 2     # the two deletable ones
        assert stats["entries_kept"] == 1         # the sticky one remains
        assert stats["bytes_kept"] > 0            # ...and is still counted
        assert undeletable.exists()

    def test_gc_and_clear_never_touch_the_queue(self, tmp_path):
        cache = ResultCache(tmp_path)
        self._store(cache, "aa" * 32, {"x": 1}, age_seconds=7 * 86400)
        queue = JobQueue(tmp_path / "queue")
        queue.submit({"key": "precious"})
        stats = cache.gc(max_age_seconds=1, max_bytes=0)
        assert stats["entries_kept"] == 0
        assert queue.status().pending == 1          # job survived gc
        assert cache.clear() == 0                   # nothing left to clear
        assert queue.status().pending == 1          # ...and clear spared it
        assert cache.info()["entries"] == 0         # info excludes queue too

    def test_store_payload_cleans_tmp_on_interrupt(self, tmp_path,
                                                   monkeypatch):
        """A KeyboardInterrupt mid-write must not strand a .tmp file."""
        cache = ResultCache(tmp_path)
        real_replace = os.replace

        def interrupted(src, dst):
            raise KeyboardInterrupt

        monkeypatch.setattr(os, "replace", interrupted)
        with pytest.raises(KeyboardInterrupt):
            cache.store_payload("aa" * 32, {"x": 1})
        monkeypatch.setattr(os, "replace", real_replace)
        assert not list(tmp_path.rglob("*.tmp"))


# ----------------------------------------------------------------------
# satellite: repro profile
# ----------------------------------------------------------------------
class TestProfiling:
    def test_profile_simulate_reports_hot_path(self):
        from repro.analysis import profiling

        result = profiling.profile_simulate(["gzip"], scale=0.05, top_n=5)
        assert result.retired > 0 and result.cycles > 0
        assert len(result.top) == 5
        highlighted = {row.where for row in result.highlights}
        assert any("_execute" in where for where in highlighted)
        assert any("lsq.py" in where for where in highlighted)
        text = profiling.report(result)
        assert "hot-path highlights" in text
        assert "stages/execute.py" in text

    def test_profile_cli(self, isolated_cache, capsys):
        from repro.__main__ import main

        assert main(["profile", "--benchmarks", "gzip", "--scale", "0.05",
                     "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "top 3 by cumulative time" in out
        assert "hot-path highlights" in out


# ----------------------------------------------------------------------
# CLI: submit / worker / status / verbose summaries
# ----------------------------------------------------------------------
class TestCli:
    def test_submit_worker_status_roundtrip(self, isolated_cache, capsys):
        from repro.__main__ import main

        rc = main(["submit", "--benchmarks", "gzip", "--scale", "0.06",
                   "--no-wait"])
        assert rc == 0
        assert "submitted 2 job(s)" in capsys.readouterr().out

        assert main(["status"]) == 0
        out = capsys.readouterr().out
        assert "pending:  2" in out

        assert main(["worker", "--idle-timeout", "0.3",
                     "--poll-interval", "0.02", "--quiet"]) == 0
        capsys.readouterr()

        assert main(["status"]) == 0
        out = capsys.readouterr().out
        assert "pending:  0" in out and "done:     2" in out
        assert "jobs/min" in out

        # Blocking submit on the warm cache: zero simulations, real table.
        runner._MEMORY_CACHE.clear()
        runner.telemetry.reset()
        assert main(["submit", "--benchmarks", "gzip", "--scale", "0.06",
                     "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "0 simulations" in out
        assert "remote jobs" in out
        assert "gzip" in out

        # Safe cleanup first: only terminal records go.
        assert main(["status", "--prune"]) == 0
        assert "pruned" in capsys.readouterr().out
        assert main(["status"]) == 0
        out = capsys.readouterr().out
        assert "done:     0" in out and "pending:  0" in out

        assert main(["status", "--purge"]) == 0
        assert "purged" in capsys.readouterr().out

    def test_run_backend_flag_distributed(self, isolated_cache, capsys):
        from repro.__main__ import main

        rc = main(["run", "--benchmarks", "gzip", "--scale", "0.06",
                   "--backend", "distributed", "--verbose"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 simulations" in out          # inline drain executed both
        assert "local simulations:   2" in out

    def test_submit_wait_with_drain(self, isolated_cache, capsys):
        from repro.__main__ import main

        rc = main(["submit", "--benchmarks", "gzip", "--scale", "0.06",
                   "--drain", "--timeout", "120"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "2 simulations" in out

    def test_cache_gc_cli(self, isolated_cache, capsys):
        from repro.__main__ import main

        runner.run_benchmark("gzip", SUITE_CONFIGS["none"], scale=0.06)
        stale = isolated_cache / "zz_orphan.tmp"
        stale.write_bytes(b"debris")
        past = time.time() - 7200
        os.utime(stale, (past, past))
        assert main(["cache", "gc"]) == 0
        out = capsys.readouterr().out
        assert "orphaned tmp:      1 removed" in out
        assert not stale.exists()

    def test_backend_env_var_is_validated(self, isolated_cache, monkeypatch):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(SystemExit, match="REPRO_BACKEND"):
            main(["run", "--benchmarks", "gzip", "--scale", "0.06"])
