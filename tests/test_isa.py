"""Unit tests for the ISA layer: registers, opcodes, semantics, instructions."""

import pytest

from repro.isa import (
    Opcode,
    OpClass,
    REG_RA,
    REG_SP,
    REG_ZERO,
    StaticInst,
    is_branch,
    is_cond_branch,
    is_integrable,
    is_load,
    is_store,
    load_counterpart,
    op_info,
    reg_index,
    reg_name,
)
from repro.isa.opcodes import OPINFO, opcode_from_name
from repro.isa import semantics
from repro.isa.registers import NUM_LOGICAL_REGS, REG_FP_BASE, is_zero_reg


class TestRegisters:
    def test_aliases_map_to_alpha_numbers(self):
        assert reg_index("sp") == 30
        assert reg_index("ra") == 26
        assert reg_index("zero") == 31
        assert reg_index("v0") == 0
        assert reg_index("a0") == 16
        assert reg_index("s0") == 9
        assert reg_index("t0") == 1

    def test_numeric_and_fp_names(self):
        assert reg_index("r5") == 5
        assert reg_index("f0") == REG_FP_BASE
        assert reg_index("f31") == REG_FP_BASE + 31

    def test_round_trip_names(self):
        for idx in range(NUM_LOGICAL_REGS):
            assert reg_index(reg_name(idx)) == idx

    def test_zero_registers(self):
        assert is_zero_reg(REG_ZERO)
        assert is_zero_reg(REG_FP_BASE + 31)
        assert not is_zero_reg(REG_SP)

    def test_unknown_register_raises(self):
        with pytest.raises(ValueError):
            reg_index("r99")
        with pytest.raises(ValueError):
            reg_name(200)


class TestOpcodes:
    def test_every_opcode_has_metadata(self):
        for op in Opcode:
            info = op_info(op)
            assert info.latency >= 1
            assert 0 <= info.num_srcs <= 2

    def test_classification_helpers(self):
        assert is_load(Opcode.LDQ) and is_load(Opcode.LDT)
        assert is_store(Opcode.STQ) and not is_store(Opcode.LDQ)
        assert is_cond_branch(Opcode.BEQ)
        assert is_branch(Opcode.RET) and is_branch(Opcode.BSR)
        assert not is_branch(Opcode.ADDQ)

    def test_paper_exclusions_from_integration(self):
        """System calls, stores and direct jumps are never integrated."""
        for op in (Opcode.SYSCALL, Opcode.STQ, Opcode.STL, Opcode.STT,
                   Opcode.BR, Opcode.BSR, Opcode.NOP):
            assert not is_integrable(op), op
        for op in (Opcode.ADDQ, Opcode.LDQ, Opcode.BEQ, Opcode.LDA,
                   Opcode.ADDT):
            assert is_integrable(op), op

    def test_load_counterpart(self):
        assert load_counterpart(Opcode.STQ) is Opcode.LDQ
        assert load_counterpart(Opcode.STL) is Opcode.LDL
        assert load_counterpart(Opcode.STT) is Opcode.LDT
        with pytest.raises(ValueError):
            load_counterpart(Opcode.ADDQ)

    def test_opcode_from_name(self):
        assert opcode_from_name("addq") is Opcode.ADDQ
        assert opcode_from_name("LDQ") is Opcode.LDQ
        with pytest.raises(ValueError):
            opcode_from_name("bogus")

    def test_latencies_reflect_classes(self):
        assert OPINFO[Opcode.MULQ].latency > OPINFO[Opcode.ADDQ].latency
        assert OPINFO[Opcode.DIVT].latency > OPINFO[Opcode.ADDT].latency


class TestStaticInst:
    def test_alu_operands(self):
        inst = StaticInst(pc=0, op=Opcode.ADDQ, rd=1, ra=2, rb=3)
        assert inst.src_regs() == (2, 3)
        assert inst.dest_reg() == 1

    def test_store_has_no_destination(self):
        inst = StaticInst(pc=0, op=Opcode.STQ, ra=1, rb=30, imm=8)
        assert inst.dest_reg() is None
        assert inst.src_regs() == (1, 30)

    def test_branch_sources(self):
        inst = StaticInst(pc=0, op=Opcode.BEQ, ra=4, imm=16, target=20)
        assert inst.src_regs() == (4,)
        assert inst.dest_reg() is None


class TestSemantics:
    def test_add_sub_wraparound(self):
        big = (1 << 64) - 1
        assert semantics.evaluate(Opcode.ADDQ, big, 1, None) == 0
        assert semantics.evaluate(Opcode.SUBQ, 0, 1, None) == big

    def test_signed_comparisons(self):
        minus_one = (1 << 64) - 1
        assert semantics.evaluate(Opcode.CMPLT, minus_one, 0, None) == 1
        assert semantics.evaluate(Opcode.CMPULT, minus_one, 0, None) == 0
        assert semantics.evaluate(Opcode.CMPLE, 5, 5, None) == 1
        assert semantics.evaluate(Opcode.CMPEQ, 5, 6, None) == 0

    def test_immediate_forms(self):
        assert semantics.evaluate(Opcode.ADDQI, 10, None, 5) == 15
        assert semantics.evaluate(Opcode.LDA, 100, None, -32) == 68
        assert semantics.evaluate(Opcode.SUBQI, 10, None, 3) == 7
        assert semantics.evaluate(Opcode.SLLI, 1, None, 4) == 16
        assert semantics.evaluate(Opcode.SRAI, (1 << 64) - 8, None, 1) == \
            semantics.to_unsigned(-4)

    def test_shift_amounts_are_masked(self):
        assert semantics.evaluate(Opcode.SLL, 1, 64, None) == 1
        assert semantics.evaluate(Opcode.SRL, 8, 1, None) == 4

    def test_logical_ops(self):
        assert semantics.evaluate(Opcode.AND, 0b1100, 0b1010, None) == 0b1000
        assert semantics.evaluate(Opcode.OR, 0b1100, 0b1010, None) == 0b1110
        assert semantics.evaluate(Opcode.XOR, 0b1100, 0b1010, None) == 0b0110

    def test_fp_ops(self):
        assert semantics.evaluate(Opcode.ADDT, 1.5, 2.5, None) == 4.0
        assert semantics.evaluate(Opcode.MULT, 3.0, 2.0, None) == 6.0
        assert semantics.evaluate(Opcode.ITOFT, 7, None, None) == 7.0
        assert semantics.evaluate(Opcode.FTOIT, 7.9, None, None) == 7

    def test_branch_taken(self):
        minus = semantics.to_unsigned(-1)
        assert semantics.branch_taken(Opcode.BEQ, 0)
        assert not semantics.branch_taken(Opcode.BEQ, 1)
        assert semantics.branch_taken(Opcode.BNE, 1)
        assert semantics.branch_taken(Opcode.BLT, minus)
        assert semantics.branch_taken(Opcode.BGE, 0)
        assert semantics.branch_taken(Opcode.BGT, 3)
        assert not semantics.branch_taken(Opcode.BLE, 3)
        with pytest.raises(ValueError):
            semantics.branch_taken(Opcode.ADDQ, 0)

    def test_narrowing(self):
        wide = 0x1_2345_6789
        assert semantics.narrow_store_value(Opcode.STL, wide) == 0x2345_6789
        assert semantics.narrow_store_value(Opcode.STQ, wide) == wide
        negative32 = 0xFFFF_FFFF
        assert semantics.narrow_load_value(Opcode.LDL, negative32) == \
            semantics.to_unsigned(-1)
        assert semantics.narrow_load_value(Opcode.LDQ, negative32) == negative32

    def test_signed_round_trip(self):
        for value in (0, 1, -1, 2**63 - 1, -(2**63)):
            assert semantics.to_signed(semantics.to_unsigned(value)) == value
