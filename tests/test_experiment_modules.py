"""Plumbing tests for the per-figure experiment modules (tiny runs).

These do not validate the paper's numbers (the benchmark harness under
``benchmarks/`` does that on realistic runs); they validate that each
experiment module wires configurations correctly, returns well-formed
results, and renders a report.
"""

import pytest

from repro.core import MachineConfig
from repro.experiments import ablations, diagnostics, figure5, figure6, figure7
from repro.integration import IntegrationConfig, LispMode

BENCH = ["gzip"]
SCALE = 0.1


@pytest.fixture(scope="module")
def tiny_kwargs():
    return dict(benchmarks=BENCH, scale=SCALE)


class TestFigure5Module:
    def test_run_and_report(self, tiny_kwargs):
        result = figure5.run(**tiny_kwargs)
        assert set(result.stats) == set(BENCH)
        assert "integration" in figure5.report(result)
        types = result.type_breakdowns()["gzip"]
        assert all(0.0 <= v <= 1.0 for v in types.values())
        assert result.sharing_summary()["gzip"]["active_share"] <= 1.0


class TestFigure6Module:
    def test_associativity_and_size_sweeps(self, tiny_kwargs):
        result = figure6.run(associativities=(1, 4), sizes=(64, 1024),
                             **tiny_kwargs)
        assert set(result.assoc_results) == {"1-way", "4-way"}
        assert set(result.size_results) == {64, 1024}
        speedups = result.assoc_speedups()
        assert set(speedups) == {"1-way", "4-way"}
        report = figure6.report(result)
        assert "associativity" in report and "it size" in report.lower()


class TestFigure7Module:
    def test_variants_and_metrics(self, tiny_kwargs):
        result = figure7.run(variants=("base", "RS"), **tiny_kwargs)
        assert result.mean_speedup("base", "none") == pytest.approx(0.0)
        assert isinstance(result.executed_reduction(), float)
        assert result.rs_occupancy("none") >= 0
        assert "Figure 7" in figure7.report(result)

    def test_machine_variant_mapping(self):
        base = MachineConfig()
        assert figure7.machine_variant(base, "base") is base
        assert figure7.machine_variant(base, "RS").rs_entries == 20
        assert figure7.machine_variant(base, "IW").ports.issue_width == 3
        both = figure7.machine_variant(base, "IW+RS")
        assert both.rs_entries == 20 and both.combined_ldst_port
        with pytest.raises(ValueError):
            figure7.machine_variant(base, "XXL")


class TestDiagnosticsModule:
    def test_run_and_report(self, tiny_kwargs):
        result = diagnostics.run(**tiny_kwargs)
        latency = result.resolution_latency()
        assert set(latency) == {"without", "with"}
        assert isinstance(result.fetched_reduction(), float)
        assert "resolution" in diagnostics.report(result)


class TestAblationsModule:
    def test_named_configs_exist(self):
        configs = ablations.ablation_configs()
        assert "gen counters 0b" in configs
        assert "no reverse entries" in configs
        assert configs["no reverse entries"].reverse is False
        assert configs["lisp oracle"].lisp_mode is LispMode.ORACLE

    def test_small_ablation_run(self, tiny_kwargs):
        subset = {
            "full": IntegrationConfig.full(),
            "no reverse entries": IntegrationConfig.full(reverse=False),
        }
        result = ablations.run(configs=subset, **tiny_kwargs)
        assert result.mean_integration_rate("full") >= \
            result.mean_integration_rate("no reverse entries") - 0.02
        assert "ablation" in ablations.report(result)
