"""The parallel, disk-cached experiment engine.

Covers the tentpole acceptance criteria: ``run_suite`` with ``jobs > 1``
returns bit-identical :class:`SimStats` to the serial path, a warm on-disk
cache replays a whole sweep with zero simulations, and the CLI wires
``--jobs``/``--scale``/``--benchmarks`` through to the engine.
"""

import pytest

from repro.core import MachineConfig
from repro.experiments import cache as cache_mod
from repro.experiments import figure4, runner
from repro.integration.config import IntegrationConfig, LispMode


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    """Point the disk cache at a fresh directory and start cold."""
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path))
    monkeypatch.setattr(runner, "_DISK_CACHE", None)
    runner._MEMORY_CACHE.clear()
    runner.telemetry.reset()
    yield tmp_path
    runner._MEMORY_CACHE.clear()
    monkeypatch.setattr(runner, "_DISK_CACHE", None)


SUITE_CONFIGS = {
    "none": MachineConfig().with_integration(IntegrationConfig.disabled()),
    "full": MachineConfig().with_integration(IntegrationConfig.full()),
}


class TestParallelEquivalence:
    def test_serial_and_parallel_results_identical(self, isolated_cache):
        benchmarks = list(runner.SMOKE_BENCHMARKS)
        serial = runner.run_suite(benchmarks, SUITE_CONFIGS, scale=0.1,
                                  jobs=1)
        runner.clear_cache(disk=True)
        parallel = runner.run_suite(benchmarks, SUITE_CONFIGS, scale=0.1,
                                    jobs=4)
        for config_name in SUITE_CONFIGS:
            for benchmark in benchmarks:
                assert (serial[config_name][benchmark]
                        == parallel[config_name][benchmark]), (
                    f"{config_name}/{benchmark} differs between serial and "
                    f"parallel runs")

    def test_parallel_populates_memory_and_disk_caches(self, isolated_cache):
        runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.1, jobs=2)
        assert runner.telemetry.simulations == 2
        runner.telemetry.reset()
        # Memory-warm: no simulations, no disk reads.
        runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.1, jobs=2)
        assert runner.telemetry.simulations == 0
        assert runner.telemetry.memory_hits == 2

    def test_duplicate_configs_are_deduplicated(self, isolated_cache):
        configs = dict(SUITE_CONFIGS)
        configs["full-again"] = MachineConfig().with_integration(
            IntegrationConfig.full())
        results = runner.run_suite(["gzip"], configs, scale=0.1, jobs=1)
        assert runner.telemetry.simulations == 2   # not 3
        assert results["full-again"]["gzip"] is results["full"]["gzip"]


class TestDiskCache:
    def test_warm_figure4_sweep_runs_zero_simulations(self, isolated_cache):
        """The acceptance criterion: a repeated Figure 4 sweep on a warm
        disk cache completes without a single simulation."""
        benchmarks = ["gzip", "mcf"]
        cold = figure4.run(benchmarks=benchmarks, scale=0.1,
                           lisp_modes=(LispMode.REALISTIC,), jobs=2)
        assert runner.telemetry.simulations > 0
        # Drop the in-process memo; keep the disk.
        runner.clear_cache(disk=False)
        runner.telemetry.reset()
        warm = figure4.run(benchmarks=benchmarks, scale=0.1,
                           lisp_modes=(LispMode.REALISTIC,), jobs=2)
        assert runner.telemetry.simulations == 0
        assert runner.telemetry.disk_hits > 0
        for ext in figure4.EXTENSION_CONFIGS:
            assert (warm.speedups(ext, "realistic")
                    == cold.speedups(ext, "realistic"))

    def test_scale_participates_in_cache_key(self, isolated_cache):
        a = runner.run_benchmark("gzip", SUITE_CONFIGS["none"], scale=0.1)
        b = runner.run_benchmark("gzip", SUITE_CONFIGS["none"], scale=0.15)
        assert runner.telemetry.simulations == 2
        assert a.retired != b.retired

    def test_corrupt_cache_entry_is_recovered(self, isolated_cache):
        stats = runner.run_benchmark("gzip", SUITE_CONFIGS["none"], scale=0.1)
        key = cache_mod.result_key("gzip", 0.1, SUITE_CONFIGS["none"])
        cache = runner._disk_cache()
        cache.path_for(key).write_bytes(b"garbage, not valid JSON")
        runner.clear_cache(disk=False)
        runner.telemetry.reset()
        again = runner.run_benchmark("gzip", SUITE_CONFIGS["none"], scale=0.1)
        assert runner.telemetry.simulations == 1   # resimulated, no crash
        assert again == stats

    def test_cache_info_and_clear(self, isolated_cache):
        runner.run_benchmark("gzip", SUITE_CONFIGS["none"], scale=0.1)
        cache = runner._disk_cache()
        info = cache.info()
        assert info["entries"] == 1
        assert info["bytes"] > 0
        assert cache.clear() == 1
        assert cache.info()["entries"] == 0

    def test_cache_entries_are_json_and_roundtrip(self, isolated_cache):
        """The cache stores canonical JSON, never pickle: loading a shared
        or tampered entry must not be able to execute code.  Entries carry
        a sha256 integrity trailer after the JSON body (one line, verified
        on load) -- unsealing must both validate it and expose plain JSON."""
        import json

        from repro.experiments.cache import unseal_entry

        stats = runner.run_benchmark("gzip", SUITE_CONFIGS["none"], scale=0.1)
        paths = list(isolated_cache.rglob("*.json"))
        assert len(paths) == 1
        body, verified = unseal_entry(paths[0].read_bytes())
        assert verified                              # trailer present, valid
        payload = json.loads(body)                   # plain JSON underneath
        from repro.core import SimStats

        assert SimStats.from_dict(payload) == stats

    def test_unwritable_cache_dir_does_not_lose_results(
            self, isolated_cache, monkeypatch):
        """Cache writes are best-effort: an unusable cache directory must
        not abort the sweep after the simulations already ran."""
        blocker = isolated_cache / "blocker"
        blocker.write_text("a file where the cache dir should be")
        monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(blocker / "cache"))
        monkeypatch.setattr(runner, "_DISK_CACHE", None)
        results = runner.run_suite(["gzip"], SUITE_CONFIGS, scale=0.1,
                                   jobs=1)
        assert results["none"]["gzip"].retired > 0
        assert runner.telemetry.simulations == 2

    def test_disk_cache_can_be_disabled(self, isolated_cache, monkeypatch):
        monkeypatch.setenv(cache_mod.ENV_DISK_CACHE, "0")
        monkeypatch.setattr(runner, "_DISK_CACHE", None)
        runner.run_benchmark("gzip", SUITE_CONFIGS["none"], scale=0.1)
        assert not list(isolated_cache.rglob("*.json"))


class TestCli:
    def test_run_subcommand(self, isolated_cache, capsys):
        from repro.__main__ import main

        rc = main(["run", "--benchmarks", "gzip", "--scale", "0.1",
                   "--jobs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gzip" in out
        assert "2 simulations" in out

    def test_run_rejects_unknown_benchmark(self, isolated_cache):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["run", "--benchmarks", "nope", "--scale", "0.1"])

    def test_cache_subcommands(self, isolated_cache, capsys):
        from repro.__main__ import main

        runner.run_benchmark("gzip", SUITE_CONFIGS["none"], scale=0.1)
        assert main(["cache", "info"]) == 0
        assert "entries:      1" in capsys.readouterr().out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_jobs_zero_means_cpu_count(self):
        import os

        assert runner.default_jobs(0) == (os.cpu_count() or 1)
        assert runner.default_jobs(3) == 3
