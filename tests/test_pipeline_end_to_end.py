"""End-to-end timing-simulation tests.

The central correctness property: for any program and any configuration, the
timing core must retire exactly the instruction stream the functional
emulator executes and produce the same architectural results -- with
integration off, with every extension enabled, with tiny integration tables,
and on the reduced-complexity machines.  DIVA guarantees this in the design;
these tests guarantee it in the implementation.
"""

import pytest

from repro.core import MachineConfig, Processor, simulate
from repro.core.stats import IntegrationType
from repro.functional import Emulator
from repro.integration import IntegrationConfig, IndexScheme, LispMode
from repro.isa import assemble
from repro.workloads import (
    array_sum,
    build_workload,
    counted_loop,
    fib_recursive,
    matrix_smooth,
    pointer_chase,
    save_restore_chain,
)

KERNELS = {
    "counted_loop": counted_loop(iterations=40),
    "array_sum": array_sum(length=24),
    "fib": fib_recursive(9),
    "pointer_chase": pointer_chase(nodes=16, hops=96),
    "save_restore": save_restore_chain(depth=4, iterations=12),
    "matrix_smooth": matrix_smooth(size=6, passes=2),
}

CONFIGS = {
    "none": IntegrationConfig.disabled(),
    "squash": IntegrationConfig.squash(),
    "general": IntegrationConfig.general(),
    "opcode": IntegrationConfig.opcode(),
    "full": IntegrationConfig.full(),
    "full_oracle": IntegrationConfig.full(lisp_mode=LispMode.ORACLE),
    "tiny_it": IntegrationConfig.full(it_entries=16, it_assoc=1,
                                      num_physical_regs=256),
    "no_gen_counters": IntegrationConfig.full(generation_bits=0),
}


def reference(program):
    return Emulator(program).run()


@pytest.mark.parametrize("config_name", list(CONFIGS))
@pytest.mark.parametrize("kernel_name", list(KERNELS))
def test_timing_matches_functional(kernel_name, config_name):
    """The timing core retires the architectural execution exactly."""
    program = KERNELS[kernel_name]
    ref = reference(program)
    cfg = MachineConfig().with_integration(CONFIGS[config_name])
    stats = simulate(program, cfg, name=kernel_name)
    assert stats.retired == ref.instructions
    assert stats.cycles > 0


@pytest.mark.parametrize("kernel_name", ["fib", "save_restore"])
def test_architectural_state_matches(kernel_name):
    """Exit code, output and final memory agree with the functional run."""
    program = KERNELS[kernel_name]
    ref = reference(program)
    proc = Processor(program,
                     MachineConfig().with_integration(IntegrationConfig.full()))
    proc.run()
    assert proc.arch.exit_code == ref.state.exit_code
    assert proc.arch.output == ref.state.output
    assert proc.arch.memory.snapshot() == ref.state.memory.snapshot()
    # Architectural registers agree too.
    assert proc.arch.registers_snapshot() == ref.state.registers_snapshot()


def test_integration_never_slows_retirement_count():
    """Integration changes cycles, never the retired instruction stream."""
    program = KERNELS["save_restore"]
    base = simulate(program,
                    MachineConfig().with_integration(CONFIGS["none"]))
    full = simulate(program,
                    MachineConfig().with_integration(CONFIGS["full"]))
    assert base.retired == full.retired
    assert full.integration_rate > 0.1


def test_reverse_integration_targets_stack_loads():
    program = KERNELS["save_restore"]
    stats = simulate(program,
                     MachineConfig().with_integration(CONFIGS["full"]))
    assert stats.integrated_reverse > 0
    assert stats.integration_by_type[IntegrationType.LOAD_SP] > 0
    # Reverse integrations only come from stack loads and sp adjustments.
    for itype, count in stats.reverse_by_type.items():
        if count:
            assert itype in (IntegrationType.LOAD_SP, IntegrationType.ALU)


def test_no_integration_config_reports_zero_rate():
    program = KERNELS["counted_loop"]
    stats = simulate(program,
                     MachineConfig().with_integration(CONFIGS["none"]))
    assert stats.integrated == 0
    assert stats.integration_rate == 0.0


def test_general_reuse_integrates_program_constants():
    """The counted loop re-initialises a constant every iteration; general
    reuse integrates those instances."""
    program = KERNELS["counted_loop"]
    squash = simulate(program,
                      MachineConfig().with_integration(CONFIGS["squash"]))
    general = simulate(program,
                       MachineConfig().with_integration(CONFIGS["general"]))
    assert general.integrated > squash.integrated


def test_reduced_complexity_machines_run_correctly():
    program = KERNELS["fib"]
    ref = reference(program)
    base = MachineConfig()
    for variant in (base.reduced_rs(), base.reduced_issue_width(),
                    base.reduced_both()):
        stats = simulate(program,
                         variant.with_integration(IntegrationConfig.full()))
        assert stats.retired == ref.instructions


def test_branch_mispredictions_are_recovered():
    """A data-dependent branch pattern forces mispredictions; the machine
    must still retire the exact architectural stream."""
    program = assemble("""
    main:
        li   s0, 0
        li   s1, 40
        li   s2, 0
    loop:
        # alternate taken/not-taken based on the low bit of a changing value
        mulqi t0, s1, 2654435761
        andi  t0, t0, 1
        beq   t0, skip
        addqi s0, s0, 7
    skip:
        addqi s0, s0, 1
        subqi s1, s1, 1
        bgt   s1, loop
        mov   a0, s0
        syscall 0
    """, name="branchy")
    ref = reference(program)
    stats = simulate(program,
                     MachineConfig().with_integration(IntegrationConfig.full()))
    assert stats.retired == ref.instructions
    assert stats.retired_branches > 40


def test_memory_order_violation_recovery():
    """A store whose address resolves late (after a dependent load issued
    speculatively) must trigger recovery, not wrong results."""
    program = assemble("""
    main:
        li   t0, 5
        li   t1, 0x3000
        li   s0, 0
        li   s1, 30
    loop:
        mulq t2, t0, t0          # slow op producing the store address base
        addq t2, t1, zero
        stq  s1, 0(t2)           # store to 0x3000 (address ready late)
        ldq  t3, 0(t1)           # load from 0x3000 issued speculatively
        addq s0, s0, t3
        subqi s1, s1, 1
        bgt  s1, loop
        mov  a0, s0
        syscall 0
    """, name="memdep")
    ref = reference(program)
    stats = simulate(program,
                     MachineConfig().with_integration(IntegrationConfig.full()))
    assert stats.retired == ref.instructions
    proc_exit = simulate(program, MachineConfig().with_integration(
        IntegrationConfig.disabled()))
    assert proc_exit.retired == ref.instructions


def test_mis_integration_detection_and_lisp_training():
    """A load that integrates a stale stack value (the slot was overwritten
    by a conflicting store through a different base register) must be caught
    by DIVA and suppressed by the LISP afterwards."""
    program = assemble("""
    main:
        li   s1, 20
        li   s0, 0
    loop:
        lda  sp, -16(sp)
        stq  s1, 8(sp)           # save s1 (creates the reverse entry)
        mov  t5, sp
        addq t6, s1, zero
        stq  t6, 8(t5)           # conflicting store to the same slot
        ldq  t0, 8(sp)           # restore: reverse-integrates the stale value
        addq s0, s0, t0
        lda  sp, 16(sp)
        subqi s1, s1, 1
        bgt  s1, loop
        mov  a0, s0
        syscall 0
    """, name="misint")
    ref = reference(program)
    stats = simulate(program,
                     MachineConfig().with_integration(IntegrationConfig.full()))
    assert stats.retired == ref.instructions
    # Values must be architecturally correct even if mis-integrations occur.
    proc = Processor(program, MachineConfig().with_integration(
        IntegrationConfig.full()))
    proc.run()
    assert proc.arch.exit_code == ref.state.exit_code


@pytest.mark.parametrize("workload", ["gzip", "mcf", "crafty"])
def test_spec_like_workloads_run_on_timing_core(workload):
    program = build_workload(workload, scale=0.15)
    ref = Emulator(program).run()
    stats = simulate(program,
                     MachineConfig().with_integration(IntegrationConfig.full()),
                     name=workload)
    assert stats.retired == ref.instructions
    assert 0.0 <= stats.integration_rate < 0.9


def test_stats_summary_fields():
    stats = simulate(KERNELS["fib"],
                     MachineConfig().with_integration(IntegrationConfig.full()),
                     name="fib")
    summary = stats.summary()
    assert summary["retired"] == stats.retired
    assert 0 < summary["ipc"] < 4
    assert summary["benchmark"] == "fib"
