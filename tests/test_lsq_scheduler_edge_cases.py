"""Edge-case tests for the indexed LSQ, the ready-tracking scheduler, the
collision-history-table statistics, and the runner's environment validation.

The LSQ tests pin the behaviours the address/sequence indices must preserve
across store-forward/squash interleavings, including a randomized
cross-check against a naive list-scan reference model (the seed
implementation's semantics).
"""

import dataclasses

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import MachineConfig, simulate
from repro.core.lsq import CollisionHistoryTable, LoadStoreQueue
from repro.core.pipeline import Processor
from repro.core.scheduler import ReservationStations
from repro.experiments import runner
from repro.functional import Emulator
from repro.functional.memory import SparseMemory
from repro.integration.config import IntegrationConfig
from repro.isa import Opcode, StaticInst, assemble
from repro.isa.instruction import DynInst
from repro.rename import PhysicalRegisterFile


def load(seq, addr_reg=2, imm=0):
    return DynInst(seq, StaticInst(pc=seq * 4, op=Opcode.LDQ, rd=1,
                                   ra=addr_reg, imm=imm))


def store(seq, imm=0):
    return DynInst(seq, StaticInst(pc=seq * 4, op=Opcode.STQ, ra=1, rb=2,
                                   imm=imm))


def reference(program):
    return Emulator(program).run()


# ======================================================================
# LSQ: store-forward vs squash interleavings
# ======================================================================
class TestForwardSquashInterleaving:
    def test_squash_of_matching_store_reroutes_forwarding(self):
        lsq = LoadStoreQueue(8)
        st1, st2, ld = store(1), store(2), load(3)
        for d in (st1, st2, ld):
            lsq.insert(d)
        lsq.resolve_store(st1, 0x100)
        lsq.resolve_store(st2, 0x100)
        found, _ = lsq.forward_from(ld, 0x100)
        assert found is st2
        # Squashing the youngest matching store falls back to the next one.
        lsq.squash({2})
        found, _ = lsq.forward_from(ld, 0x100)
        assert found is st1
        # Retiring the remaining store leaves nothing to forward from.
        lsq.remove(st1)
        found, _ = lsq.forward_from(ld, 0x100)
        assert found is None

    def test_squashed_load_is_not_a_violation_victim(self):
        lsq = LoadStoreQueue(8)
        st1, ld2, ld3 = store(1), load(2), load(3)
        for d in (st1, ld2, ld3):
            lsq.insert(d)
        lsq.record_load(ld2, 0x200)
        lsq.record_load(ld3, 0x200)
        lsq.squash({3})
        assert lsq.resolve_store(st1, 0x200) == [ld2]

    def test_forwarding_ignores_younger_store_between_squashes(self):
        lsq = LoadStoreQueue(8)
        st1, st2, ld, st4 = store(1), store(2), load(3), store(4)
        for d in (st1, st2, ld, st4):
            lsq.insert(d)
        lsq.resolve_store(st1, 0x300)
        lsq.resolve_store(st2, 0x300)
        lsq.resolve_store(st4, 0x300)
        found, _ = lsq.forward_from(ld, 0x300)
        assert found is st2            # youngest *older* store, not st4
        lsq.squash({2, 4})
        found, _ = lsq.forward_from(ld, 0x300)
        assert found is st1

    def test_in_lsq_membership_flag(self):
        lsq = LoadStoreQueue(8)
        st1, ld2 = store(1), load(2)
        assert not st1.in_lsq and not ld2.in_lsq
        lsq.insert(st1)
        lsq.insert(ld2)
        assert st1.in_lsq and ld2.in_lsq
        lsq.remove(st1)
        assert not st1.in_lsq and ld2.in_lsq
        lsq.squash({2})
        assert not ld2.in_lsq
        assert len(lsq) == 0

    def test_unresolved_tracking_across_squash(self):
        lsq = LoadStoreQueue(8)
        st1, st2, ld = store(1), store(2), load(3)
        for d in (st1, st2, ld):
            lsq.insert(d)
        lsq.resolve_store(st1, 0x500)
        assert lsq.older_stores_unresolved(ld)          # st2 still unresolved
        lsq.squash({2})
        assert not lsq.older_stores_unresolved(ld)
        assert lsq.older_store_conflict_possible(ld, 0x500)
        assert not lsq.older_store_conflict_possible(ld, 0x700)


# ======================================================================
# LSQ: randomized cross-check against the seed's list-scan semantics
# ======================================================================
class _NaiveEntry:
    def __init__(self, dyn, is_store_op):
        self.dyn = dyn
        self.is_store = is_store_op
        self.addr = None
        self.data_ready = False
        self.executed = False


class NaiveLSQ:
    """Reference model: the seed's O(n)-scan load/store queue."""

    def __init__(self, size=64):
        self.size = size
        self._entries = []

    def __len__(self):
        return len(self._entries)

    def insert(self, dyn):
        self._entries.append(_NaiveEntry(dyn, dyn.info.is_store))

    def remove(self, dyn):
        self._entries = [e for e in self._entries if e.dyn.seq != dyn.seq]

    def squash(self, seqs):
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.dyn.seq not in seqs]
        return before - len(self._entries)

    def _find(self, dyn):
        for e in self._entries:
            if e.dyn.seq == dyn.seq:
                return e
        return None

    def resolve_store(self, dyn, addr):
        entry = self._find(dyn)
        if entry is None:
            return []
        entry.addr = SparseMemory.align(addr)
        entry.data_ready = True
        entry.executed = True
        violations = [e.dyn for e in self._entries
                      if (not e.is_store and e.executed
                          and e.dyn.seq > dyn.seq and e.addr == entry.addr)]
        violations.sort(key=lambda d: d.seq)
        return violations

    def record_load(self, dyn, addr):
        entry = self._find(dyn)
        if entry is not None:
            entry.addr = SparseMemory.align(addr)
            entry.executed = True

    def forward_from(self, dyn, addr):
        aligned = SparseMemory.align(addr)
        best = None
        for e in self._entries:
            if e.is_store and e.dyn.seq < dyn.seq and e.addr == aligned:
                if best is None or e.dyn.seq > best.dyn.seq:
                    best = e
        if best is None:
            return None, True
        return best.dyn, best.data_ready

    def older_stores_unresolved(self, dyn):
        return any(e.is_store and e.dyn.seq < dyn.seq and e.addr is None
                   for e in self._entries)

    def older_store_conflict_possible(self, dyn, addr):
        aligned = SparseMemory.align(addr)
        return any(e.is_store and e.dyn.seq < dyn.seq
                   and (e.addr is None or e.addr == aligned)
                   for e in self._entries)


_ACTIONS = st.lists(
    st.tuples(st.sampled_from(["ld", "st", "resolve", "record", "remove",
                               "squash"]),
              st.integers(min_value=0, max_value=5),   # address bucket
              st.integers(min_value=0, max_value=7)),  # entry pick
    min_size=1, max_size=40)


class TestLSQMatchesNaiveModel:
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(actions=_ACTIONS)
    def test_random_interleavings(self, actions):
        fast = LoadStoreQueue(64)
        naive = NaiveLSQ(64)
        dyns = []
        seq = 0
        for kind, bucket, pick in actions:
            addr = 0x1000 + bucket * 8
            if kind in ("ld", "st"):
                seq += 1
                dyn = load(seq) if kind == "ld" else store(seq)
                dyns.append(dyn)
                fast.insert(dyn)
                # The naive model must not see the in_lsq flag side effect.
                naive.insert(dyn)
            elif not dyns:
                continue
            elif kind == "resolve":
                dyn = dyns[pick % len(dyns)]
                if dyn.info.is_store:   # the pipeline only resolves stores
                    assert (fast.resolve_store(dyn, addr)
                            == naive.resolve_store(dyn, addr))
            elif kind == "record":
                dyn = dyns[pick % len(dyns)]
                if dyn.info.is_load:
                    fast.record_load(dyn, addr)
                    naive.record_load(dyn, addr)
            elif kind == "remove":
                dyn = dyns[pick % len(dyns)]
                fast.remove(dyn)
                naive.remove(dyn)
            elif kind == "squash":
                doomed = {d.seq for d in dyns if d.seq % 3 == pick % 3}
                assert fast.squash(doomed) == naive.squash(doomed)
            # Invariants after every action, probed for every live dyn.
            assert len(fast) == len(naive)
            for dyn in dyns:
                assert (fast.forward_from(dyn, addr)
                        == naive.forward_from(dyn, addr))
                assert (fast.older_stores_unresolved(dyn)
                        == naive.older_stores_unresolved(dyn))
                assert (fast.older_store_conflict_possible(dyn, addr)
                        == naive.older_store_conflict_possible(dyn, addr))


# ======================================================================
# Scheduler: event-driven readiness tracking
# ======================================================================
def _wire(entries=8):
    prf = PhysicalRegisterFile(70)
    rs = ReservationStations(entries, prf=prf)
    prf.on_ready = rs.wakeup
    return prf, rs


def _dyn_with_srcs(seq, prf_srcs):
    dyn = DynInst(seq, StaticInst(pc=seq * 4, op=Opcode.ADDQ, rd=1, ra=2,
                                  rb=3))
    dyn.src_pregs = list(prf_srcs)
    return dyn


class TestReadyTrackingScheduler:
    def always(self, _):
        return True

    def test_wakeup_promotes_waiting_instruction(self):
        prf, rs = _wire()
        preg = prf.allocate()
        dyn = _dyn_with_srcs(1, [preg])
        rs.insert(dyn)
        assert rs.select(self.always, self.always) == []
        prf.set_value(preg, 42)
        assert rs.select(self.always, self.always) == [dyn]
        assert rs.occupancy == 0

    def test_ready_at_insert_is_selectable_immediately(self):
        prf, rs = _wire()
        preg = prf.allocate(ready=True, value=7)
        dyn = _dyn_with_srcs(1, [preg])
        rs.insert(dyn)
        assert rs.select(self.always, self.always) == [dyn]

    def test_duplicate_source_needs_single_wakeup(self):
        prf, rs = _wire()
        preg = prf.allocate()
        dyn = _dyn_with_srcs(1, [preg, preg])
        rs.insert(dyn)
        assert dyn.rs_pending == 2
        prf.set_value(preg, 1)
        assert rs.select(self.always, self.always) == [dyn]

    def test_squashed_instruction_ignores_stale_wakeup(self):
        prf, rs = _wire()
        preg = prf.allocate()
        doomed = _dyn_with_srcs(1, [preg])
        survivor = _dyn_with_srcs(2, [preg])
        rs.insert(doomed)
        rs.insert(survivor)
        assert rs.squash({1}) == 1
        prf.set_value(preg, 9)
        assert rs.select(self.always, self.always) == [survivor]
        assert rs.occupancy == 0

    def test_wakeup_fires_only_on_not_ready_to_ready_transition(self):
        prf, rs = _wire()
        preg = prf.allocate()
        fired = []
        prf.on_ready = fired.append
        prf.set_value(preg, 1)
        prf.set_value(preg, 2)      # already ready: no second event
        assert fired == [preg]


# ======================================================================
# CHT statistics: one hit per dynamic load, not per poll
# ======================================================================
class TestCHTAccounting:
    def test_predicts_collision_is_pure(self):
        cht = CollisionHistoryTable(16)
        cht.train(0x40)
        assert cht.hits == 0
        assert cht.predicts_collision(0x40)
        assert cht.predicts_collision(0x40)
        assert cht.hits == 0            # pure lookup: no stat side effect
        cht.record_hit()
        assert cht.hits == 1

    def test_stalled_load_counts_one_hit_despite_repolling(self):
        """A CHT-predicted load is re-polled by select() every cycle while
        older store addresses resolve; the hit statistic must count the
        dynamic load once, not once per poll."""
        program = assemble("""
        main:
            li    t0, 0x2000
            mulqi t1, t0, 1          # slow chain: store address arrives late
            mulqi t1, t1, 1
            mulqi t1, t1, 1
            addq  t2, t1, zero
            stq   t0, 0(t2)          # address unresolved for many cycles
            ldq   t3, 0(t0)          # base ready at once: polls every cycle
            mov   a0, t3
            syscall 0
        """, name="cht-stall")
        load_pc = next(inst.pc for inst in program
                       if inst.op is Opcode.LDQ)
        proc = Processor(program, MachineConfig().with_integration(
            IntegrationConfig.disabled()))
        proc.cht.train(load_pc)
        stats = proc.run()
        assert stats.retired > 0
        assert proc.cht.hits == 1
        assert stats.cht_hits == 1
        assert stats.cht_trainings == proc.cht.trainings

    def test_cht_counters_round_trip_serialization(self):
        from repro.core.stats import SimStats
        stats = SimStats(benchmark="x", cht_hits=3, cht_trainings=2)
        clone = SimStats.from_dict(stats.to_dict())
        assert clone.cht_hits == 3 and clone.cht_trainings == 2


# ======================================================================
# In-flight events for squashed instructions with reallocated registers
# ======================================================================
def test_squashed_inflight_events_with_tiny_prf():
    """Memory-order violations squash loads whose wakeup/complete events are
    still in flight; with a minimal physical register file the squashed
    destination registers are reallocated almost immediately.  Stale events
    must not corrupt the new owners -- DIVA would fault the retirement
    stream if they did."""
    program = assemble("""
    main:
        li   t0, 5
        li   t1, 0x3000
        li   s0, 0
        li   s1, 24
    loop:
        mulq t2, t0, t0
        addq t2, t1, zero
        stq  s1, 0(t2)           # store address resolves late
        ldq  t3, 0(t1)           # speculative load: squashed on violation
        addq s0, s0, t3
        subqi s1, s1, 1
        bgt  s1, loop
        mov  a0, s0
        syscall 0
    """, name="memdep-tiny-prf")
    ref = reference(program)
    tiny = dataclasses.replace(IntegrationConfig.disabled(),
                               num_physical_regs=72)
    stats = simulate(program, MachineConfig().with_integration(tiny))
    assert stats.retired == ref.instructions
    assert stats.memory_order_violations > 0
    assert stats.squashed > 0


# ======================================================================
# Runner environment-variable validation
# ======================================================================
class TestEnvValidation:
    def test_malformed_scale_is_a_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "fast")
        with pytest.raises(runner.EnvVarError) as excinfo:
            runner.default_scale()
        assert "REPRO_SCALE" in str(excinfo.value)
        assert "fast" in str(excinfo.value)

    def test_non_positive_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(runner.EnvVarError):
            runner.default_scale()

    @pytest.mark.parametrize("value", ["inf", "-inf", "nan"])
    def test_non_finite_scale_rejected(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SCALE", value)
        with pytest.raises(runner.EnvVarError):
            runner.default_scale()

    def test_malformed_jobs_is_a_clear_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(runner.EnvVarError) as excinfo:
            runner.default_jobs()
        assert "REPRO_JOBS" in str(excinfo.value)

    def test_env_error_is_catchable_systemexit(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "x")
        with pytest.raises(SystemExit):
            runner.default_jobs()

    def test_empty_values_fall_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "")
        monkeypatch.setenv("REPRO_JOBS", "")
        assert runner.default_scale() == 0.5
        assert runner.default_jobs() == 1

    def test_valid_values_still_work(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.25")
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert runner.default_scale() == 0.25
        assert runner.default_jobs() == 3
