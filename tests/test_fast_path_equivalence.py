"""Fast-path vs slow-path engine equivalence (hypothesis cross-check).

The engine has two per-cycle drivers: the fused quiescent-skipping loop
(:meth:`Processor._run_phase_fast`, the default) and the generic
``Stage``-protocol loop (``REPRO_FAST_PATH=0``).  It also has two scheduler
inner-loop backends (``REPRO_KERNEL=py|compiled``).  All combinations must
be **cycle-for-cycle identical**: same cycle count, same per-cycle RS
occupancy samples, same squash/recovery behaviour, same integration
statistics -- on arbitrary programs and on every registered machine
variant.

These tests drive both engines over the same program and compare a
fingerprint of every order-sensitive counter.  The workload-based cases are
chosen so mid-run recovery actually happens (mispredicted branches and
memory-order violations both squash), which the tests assert rather than
assume.
"""

import os
from contextlib import contextmanager

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from repro.core import MachineConfig, simulate
from repro.integration.config import IntegrationConfig
from repro.isa import ProgramBuilder
from repro.variants import variant_names
from repro.workloads import build_workload, pointer_chase_memory_bound


def _sorted_items(counter):
    """Deterministic Counter ordering (keys may be enums, which don't sort)."""
    return tuple(sorted(counter.items(), key=lambda kv: str(kv[0])))


def _fingerprint(stats):
    """Every counter whose value depends on per-cycle event order."""
    return (
        stats.cycles, stats.fetched, stats.renamed, stats.retired,
        stats.squashed, stats.issued, stats.executed_loads,
        stats.executed_stores, stats.rs_occupancy_sum,
        stats.rs_occupancy_samples, stats.retired_branches,
        stats.retired_mispredicted_branches,
        stats.branch_resolution_latency_sum, stats.memory_order_violations,
        stats.cht_hits, stats.cht_trainings, stats.integrated_direct,
        stats.integrated_reverse, stats.mis_integrations,
        stats.load_mis_integrations, stats.register_mis_integrations,
        stats.lisp_suppressed, stats.refcount_saturation_failures,
        _sorted_items(stats.integration_by_type),
        _sorted_items(stats.integration_distance),
        _sorted_items(stats.integration_status),
        _sorted_items(stats.retired_by_type),
        _sorted_items(stats.cpi_stack),
    )


@contextmanager
def _env(**overrides):
    """Set/unset environment variables for the duration of one run.

    A plain context manager (not the monkeypatch fixture) so it can be used
    inside hypothesis-driven tests, which reuse function-scoped fixtures
    across examples.
    """
    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


def _run_both(program, config, name="equiv"):
    """Simulate once per engine driver and return both stats.

    The slow run also forces the pure-Python kernel, so a single comparison
    covers both the fused-loop/generic-loop and the compiled/py-kernel
    seams (each run is deterministic, so any divergence on either axis
    shows up as a fingerprint mismatch).
    """
    with _env(REPRO_FAST_PATH="1", REPRO_KERNEL=None):
        fast = simulate(program, config, name=name)
    with _env(REPRO_FAST_PATH="0", REPRO_KERNEL="py"):
        slow = simulate(program, config, name=name)
    return fast, slow


@st.composite
def branchy_programs(draw):
    """Random programs with data-dependent branches and aliasing memory.

    Conditional branches over skipped filler give the predictor real
    mispredictions (squash + recovery at execute); loads and stores share a
    small window of ``gp``-relative slots so store-load ordering logic is
    exercised too.  All branches are forward, so every program terminates.
    """
    builder = ProgramBuilder(name="random-branchy")
    regs = ["t0", "t1", "t2", "t3", "s0", "s1"]
    builder.label("main")
    for reg in regs:
        builder.li(reg, draw(st.integers(min_value=0, max_value=255)))
    blocks = draw(st.integers(min_value=2, max_value=5))
    for block in range(blocks):
        for _ in range(draw(st.integers(min_value=1, max_value=8))):
            kind = draw(st.integers(min_value=0, max_value=3))
            rd = draw(st.sampled_from(regs))
            ra = draw(st.sampled_from(regs))
            if kind == 0:
                op = draw(st.sampled_from(["addq", "subq", "xor", "and",
                                           "or", "cmplt"]))
                builder.rr(op, rd, ra, draw(st.sampled_from(regs)))
            elif kind == 1:
                op = draw(st.sampled_from(["addqi", "subqi", "xori", "slli"]))
                builder.ri(op, rd, ra, draw(st.integers(min_value=1,
                                                        max_value=15)))
            elif kind == 2:
                offset = 8 * draw(st.integers(min_value=0, max_value=7))
                builder.stq(ra, offset, "gp")
            else:
                offset = 8 * draw(st.integers(min_value=0, max_value=7))
                builder.load("ldq", rd, offset, "gp")
        op = draw(st.sampled_from(["beq", "bne", "blt", "bge"]))
        builder.cbr(op, draw(st.sampled_from(regs)), f"join{block}")
        for _ in range(draw(st.integers(min_value=1, max_value=4))):
            builder.ri("addqi", draw(st.sampled_from(regs)),
                       draw(st.sampled_from(regs)), 1)
        builder.label(f"join{block}")
    builder.mov("a0", draw(st.sampled_from(regs)))
    builder.syscall(0)
    return builder.build(entry="main")


class TestFastPathEquivalence:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=branchy_programs())
    def test_random_programs_match_cycle_for_cycle(self, program):
        config = MachineConfig().with_integration(IntegrationConfig.full())
        fast, slow = _run_both(program, config)
        assert _fingerprint(fast) == _fingerprint(slow)

    @pytest.mark.parametrize("variant", variant_names())
    def test_every_variant_matches_on_real_workload(self, variant):
        program = build_workload("gzip", scale=0.05)
        config = (MachineConfig()
                  .with_integration(IntegrationConfig.full())
                  .with_variant(variant))
        fast, slow = _run_both(program, config,
                               name=f"equiv-{variant}")
        assert _fingerprint(fast) == _fingerprint(slow)

    def test_equivalence_covers_midrun_recovery(self):
        """The workload comparison is only meaningful if recovery fires."""
        program = build_workload("crafty", scale=0.05)
        config = MachineConfig().with_integration(IntegrationConfig.full())
        fast, slow = _run_both(program, config,
                               name="equiv-recovery")
        assert fast.squashed > 0, "no mid-run squash exercised"
        assert fast.retired_mispredicted_branches > 0
        assert _fingerprint(fast) == _fingerprint(slow)

    def test_integration_disabled_matches_too(self):
        program = build_workload("mcf", scale=0.05)
        config = MachineConfig().with_integration(
            IntegrationConfig.disabled())
        fast, slow = _run_both(program, config,
                               name="equiv-none")
        assert _fingerprint(fast) == _fingerprint(slow)

    def test_bad_kernel_mode_rejected_with_one_liner(self):
        from repro.core.kernel import KernelEnvError, select_backend
        with _env(REPRO_KERNEL="bogus"):
            with pytest.raises(KernelEnvError) as excinfo:
                select_backend()
        assert issubclass(KernelEnvError, SystemExit)
        assert "REPRO_KERNEL='bogus'" in str(excinfo.value)


def _run_elide_both(program, config, kernel, name="elide"):
    """Simulate with elision on and off (same kernel) and return both.

    Both runs use the fused fast-path driver: elision is a refinement of
    it, and ``REPRO_ELIDE=0`` with the per-cycle loop is the ground truth
    the jumps must reproduce bit-for-bit.
    """
    with _env(REPRO_FAST_PATH="1", REPRO_KERNEL=kernel, REPRO_ELIDE="1"):
        elided = simulate(program, config, name=name)
    with _env(REPRO_FAST_PATH="1", REPRO_KERNEL=kernel, REPRO_ELIDE="0"):
        stepped = simulate(program, config, name=name)
    return elided, stepped


@st.composite
def memory_stall_programs(draw):
    """Pointer chases tuned to stall: conflict-missing rings of drawn shape.

    Drawn strides cover the full range of behaviours the elision guards
    must survive: 512KB (every hop a main-memory miss -- maximal quiescent
    spans), 4KB (L2 hits after warmup -- short spans), and 16 bytes
    (cache-resident -- elision almost never fires, exercising the veto
    paths instead).
    """
    nodes = draw(st.integers(min_value=5, max_value=10))
    hops = draw(st.integers(min_value=16, max_value=48))
    stride = draw(st.sampled_from([512 * 1024, 4096, 16]))
    return pointer_chase_memory_bound(nodes=nodes, hops=hops, stride=stride)


class TestElisionEquivalence:
    """Event-horizon cycle elision is invisible in every counter.

    ``REPRO_ELIDE=1`` (the default) jumps the clock across provably
    quiescent spans; ``REPRO_ELIDE=0`` steps them one cycle at a time.
    Every statistic except the diagnostic ``cycles_elided`` must be
    bit-identical, on both kernel backends and every machine variant.
    """

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=memory_stall_programs(),
           kernel=st.sampled_from(["py", "compiled"]))
    def test_random_memory_stall_programs_match(self, program, kernel):
        config = MachineConfig().with_integration(IntegrationConfig.full())
        elided, stepped = _run_elide_both(program, config, kernel)
        assert _fingerprint(elided) == _fingerprint(stepped)
        assert stepped.cycles_elided == 0

    @pytest.mark.parametrize("kernel", ["py", "compiled"])
    @pytest.mark.parametrize("variant", variant_names())
    def test_every_variant_and_kernel_matches(self, variant, kernel):
        program = pointer_chase_memory_bound(nodes=6, hops=64)
        config = (MachineConfig()
                  .with_integration(IntegrationConfig.full())
                  .with_variant(variant))
        elided, stepped = _run_elide_both(
            program, config, kernel, name=f"elide-{variant}")
        assert _fingerprint(elided) == _fingerprint(stepped)
        assert elided.cycles_elided > 0, \
            "no span was elided; the comparison is vacuous"
        assert stepped.cycles_elided == 0

    def test_branchy_recovery_still_matches(self):
        """Squash/recovery interleaved with stalls doesn't break elision."""
        program = build_workload("mcf", scale=0.05)
        config = MachineConfig().with_integration(IntegrationConfig.full())
        elided, stepped = _run_elide_both(program, config, "py",
                                          name="elide-recovery")
        assert elided.squashed > 0, "no mid-run squash exercised"
        assert _fingerprint(elided) == _fingerprint(stepped)

    def test_jump_accumulates_stats_exactly(self):
        """A jump's arithmetic accumulation equals the per-cycle loop.

        The elision driver accumulates ``rs_occupancy_sum`` and
        ``rs_occupancy_samples`` arithmetically (``span * len(waiting)``)
        instead of sampling each skipped cycle; this pins the exact
        equality of those two paths on a run with long jumps.
        """
        program = pointer_chase_memory_bound(nodes=8, hops=128)
        config = MachineConfig()
        elided, stepped = _run_elide_both(program, config, "py",
                                          name="elide-stats")
        assert elided.cycles_elided > 0
        assert elided.cycles == stepped.cycles
        assert elided.rs_occupancy_sum == stepped.rs_occupancy_sum
        assert elided.rs_occupancy_samples == stepped.rs_occupancy_samples
        # Elision is a driver mechanic, not an architectural event: the
        # per-cycle ground truth run reports zero.
        assert stepped.cycles_elided == 0
