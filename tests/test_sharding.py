"""Checkpointed slice sharding: the PR-3 tentpole acceptance criteria.

* :meth:`SimStats.merge` is a lossless monoid (hypothesis: associativity,
  identity) and merge-of-slices reproduces the whole run's counters;
* functional fast-forward is deterministic (emulate N then continue ==
  run straight through) and checkpoints round-trip through JSON;
* ``shards=1`` is bit-identical to the plain engine; ``shards=2`` with the
  default warm-up is exactly lossless end to end; higher shard counts keep
  instruction-level counters exact and merged IPC within the documented
  cold-start envelope;
* the runner satellites: LRU-bounded in-process memo with eviction
  telemetry, longest-first estimates, checkpoint plans shared across
  configs and cached on disk.
"""

import dataclasses
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import MachineConfig, SimStats, simulate
from repro.core.stats import IntegrationType, ResultStatus
from repro.experiments import cache as cache_mod
from repro.experiments import runner, sharding
from repro.functional import Emulator, collect_checkpoints, fast_forward
from repro.functional.emulator import Checkpoint, run_program
from repro.integration.config import IntegrationConfig
from repro.workloads import build_workload
from repro.workloads.spec_like import estimate_dynamic_insts

FULL = MachineConfig().with_integration(IntegrationConfig.full())
NONE = MachineConfig().with_integration(IntegrationConfig.disabled())


def assert_stats_equal_modulo_occupancy(a: SimStats, b: SimStats) -> None:
    """Every counter identical; the per-cycle RS-occupancy accumulator may
    drift by a few samples at a slice seam (the budget stall perturbs the
    machine for a handful of cycles without changing the retired stream).
    ``cycles_elided`` is driver mechanics, not machine behaviour: the same
    seam stall splits or shifts the elided spans, so the count is excluded
    like the occupancy accumulator.  ``cpi_stack`` is per-cycle blame: the
    seam stall re-blames the same handful of cycles without minting or
    losing any, so the total stays exact while individual buckets may
    shift by a few cycles."""
    da, db = a.to_dict(), b.to_dict()
    da.pop("cycles_elided"), db.pop("cycles_elided")
    occ_a, occ_b = da.pop("rs_occupancy_sum"), db.pop("rs_occupancy_sum")
    cpi_a, cpi_b = da.pop("cpi_stack"), db.pop("cpi_stack")
    assert da == db
    assert occ_a == pytest.approx(occ_b, rel=0.001)
    assert sum(cpi_a.values()) == sum(cpi_b.values())
    for bucket in set(cpi_a) | set(cpi_b):
        assert abs(cpi_a.get(bucket, 0) - cpi_b.get(bucket, 0)) <= 8, bucket


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    """Fresh disk cache dir, cold in-process memos."""
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path))
    monkeypatch.setattr(runner, "_DISK_CACHE", None)
    runner._MEMORY_CACHE.clear()
    sharding.clear_plan_memo()
    runner.telemetry.reset()
    yield tmp_path
    runner._MEMORY_CACHE.clear()
    sharding.clear_plan_memo()
    monkeypatch.setattr(runner, "_DISK_CACHE", None)


# ----------------------------------------------------------------------
# SimStats.merge as a monoid
# ----------------------------------------------------------------------
_counts = st.integers(min_value=0, max_value=1 << 20)
_type_counter = st.dictionaries(
    st.sampled_from(list(IntegrationType)), _counts, max_size=5
).map(Counter)
_status_counter = st.dictionaries(
    st.sampled_from(list(ResultStatus)), _counts, max_size=4
).map(Counter)
_int_counter = st.dictionaries(
    st.sampled_from([4, 16, 64, 256, 1024, 4096]), _counts, max_size=6
).map(Counter)

_stats = st.builds(
    SimStats,
    benchmark=st.sampled_from(["", "gzip", "mcf"]),
    config_name=st.sampled_from(["", "full"]),
    cycles=_counts, fetched=_counts, renamed=_counts, retired=_counts,
    squashed=_counts, issued=_counts,
    rs_occupancy_sum=_counts, rs_occupancy_samples=_counts,
    retired_branches=_counts, retired_mispredicted_branches=_counts,
    branch_resolution_latency_sum=_counts,
    cht_hits=_counts, cht_trainings=_counts,
    integrated_direct=_counts, integrated_reverse=_counts,
    mis_integrations=_counts,
    integration_by_type=_type_counter,
    reverse_by_type=_type_counter,
    integration_distance=_int_counter,
    integration_status=_status_counter,
    integration_refcount=_int_counter,
    retired_by_type=_type_counter,
)


class TestMergeMonoid:
    @given(a=_stats, b=_stats, c=_stats)
    @settings(max_examples=60,
              suppress_health_check=[HealthCheck.too_slow])
    def test_merge_is_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert left.to_dict() == right.to_dict()

    @given(a=_stats)
    @settings(max_examples=60)
    def test_empty_stats_is_identity(self, a):
        identity = SimStats()
        assert identity.merge(a).to_dict() == a.to_dict()
        assert a.merge(identity).to_dict() == a.to_dict()

    @given(a=_stats, b=_stats)
    @settings(max_examples=60)
    def test_every_numeric_field_sums(self, a, b):
        merged = a.merge(b)
        for f in dataclasses.fields(SimStats):
            mine, theirs = getattr(a, f.name), getattr(b, f.name)
            got = getattr(merged, f.name)
            if isinstance(mine, Counter):
                expected = Counter(mine)
                expected.update(theirs)
                assert got == expected
            elif isinstance(mine, str):
                assert got == (mine or theirs)
            else:
                assert got == mine + theirs

    def test_merge_all_empty_is_identity(self):
        assert SimStats.merge_all([]).to_dict() == SimStats().to_dict()

    def test_derived_rates_recombine(self):
        a = SimStats(retired=100, cycles=50, integrated_direct=10,
                     rs_occupancy_sum=200, rs_occupancy_samples=50)
        b = SimStats(retired=300, cycles=250, integrated_direct=20,
                     rs_occupancy_sum=1000, rs_occupancy_samples=250)
        m = a.merge(b)
        assert m.ipc == pytest.approx(400 / 300)
        assert m.integration_rate == pytest.approx(30 / 400)
        assert m.avg_rs_occupancy == pytest.approx(1200 / 300)


# ----------------------------------------------------------------------
# functional fast-forward and checkpoints
# ----------------------------------------------------------------------
class TestFastForwardDeterminism:
    def test_fast_forward_then_run_equals_run(self):
        program = build_workload("gzip", scale=0.2)
        whole = run_program(program)
        state = fast_forward(program, 1000)
        assert state.inst_count == 1000
        resumed = Emulator(program, state=state).run()
        assert resumed.instructions == whole.instructions - 1000
        assert resumed.exit_code == whole.exit_code
        assert resumed.state.registers_snapshot() == \
            whole.state.registers_snapshot()
        assert resumed.state.memory.snapshot() == whole.state.memory.snapshot()
        assert resumed.output == whole.output   # output accumulates in state

    def test_checkpoint_states_match_fast_forward(self):
        program = build_workload("mcf", scale=0.2)
        total, cps = collect_checkpoints(program, [0, 500, 2000])
        assert [cp.insts for cp in cps] == [0, 500, 2000]
        assert total == run_program(program).instructions
        for cp in cps:
            expected = fast_forward(program, cp.insts)
            state = cp.state()
            assert state.pc == expected.pc
            assert state.regs == expected.regs
            assert state.memory.snapshot() == expected.memory.snapshot()
            assert state.inst_count == cp.insts

    def test_checkpoint_json_roundtrip(self):
        program = build_workload("gzip", scale=0.1)
        _, (cp,) = collect_checkpoints(program, [700])
        import json

        clone = Checkpoint.from_dict(json.loads(json.dumps(cp.to_dict())))
        assert clone.insts == cp.insts
        state, original = clone.state(), cp.state()
        assert state.regs == original.regs
        assert state.pc == original.pc
        assert state.memory.snapshot() == original.memory.snapshot()

    def test_boundaries_past_program_end_are_skipped(self):
        program = build_workload("gzip", scale=0.1)
        total, cps = collect_checkpoints(program, [0, 10 ** 9])
        assert [cp.insts for cp in cps] == [0]
        assert total > 0


class TestResumedTimingCore:
    def test_exact_retire_budget(self):
        program = build_workload("gzip", scale=0.2)
        stats = simulate(program, FULL, max_instructions=1001)
        assert stats.retired == 1001   # exact, not retire-width-rounded

    def test_resumed_slices_tile_the_program(self):
        program = build_workload("crafty", scale=0.2)
        total = run_program(program).instructions
        whole = simulate(program, FULL, name="crafty")
        assert whole.retired == total
        _, cps = collect_checkpoints(program, [0, 4000, 8000])
        budgets = [4000, 4000, total - 8000]
        parts = [simulate(program, FULL, name="crafty",
                          initial_state=cp.state() if cp.insts else None,
                          max_instructions=budget)
                 for cp, budget in zip(cps, budgets)]
        merged = SimStats.merge_all(parts)
        assert merged.retired == whole.retired
        assert [p.retired for p in parts] == budgets

    def test_warmup_discards_stats_but_advances_state(self):
        program = build_workload("gzip", scale=0.2)
        total = run_program(program).instructions
        _, (cp,) = collect_checkpoints(program, [1000])
        sliced = simulate(program, FULL, initial_state=cp.state(),
                          max_instructions=total - 3000,
                          warmup_instructions=2000)
        assert sliced.retired == total - 3000   # warm-up not counted
        assert sliced.cycles > 0

    def test_full_prefix_warmup_reproduces_whole_run_tail(self):
        """Warming from reset makes the counted region exact: the slice's
        stats equal whole-run minus prefix-run counters."""
        program = build_workload("mcf", scale=0.2)
        total = run_program(program).instructions
        boundary = total // 2
        whole = simulate(program, FULL, name="mcf")
        prefix = simulate(program, FULL, name="mcf",
                          max_instructions=boundary)
        tail = simulate(program, FULL, name="mcf",
                        max_instructions=total - boundary,
                        warmup_instructions=boundary)
        merged = prefix.merge(tail)
        assert_stats_equal_modulo_occupancy(merged, whole)


# ----------------------------------------------------------------------
# plans and the sharded suite engine
# ----------------------------------------------------------------------
class TestShardPlans:
    def test_plan_boundaries_tile_exactly(self):
        slices = sharding.plan_boundaries(10_000, 4, warmup_fraction=1.0)
        assert [s.boundary for s in slices] == [0, 2500, 5000, 7500]
        assert [s.budget for s in slices] == [2500] * 4
        assert sum(s.budget for s in slices) == 10_000
        assert slices[0].warmup == 0
        assert all(s.warmup == 2500 for s in slices[1:])

    def test_plan_boundaries_clamp_tiny_programs(self):
        slices = sharding.plan_boundaries(3, 8, warmup_fraction=1.0)
        assert sum(s.budget for s in slices) == 3
        assert [s.boundary for s in slices] == [0, 1, 2]

    def test_plan_key_is_config_independent(self):
        key = sharding.plan_key("gzip", 0.2, 4, 1.0)
        assert key == sharding.plan_key("gzip", 0.2, 4, 1.0)
        assert key != sharding.plan_key("gzip", 0.2, 8, 1.0)
        assert key != sharding.plan_key("mcf", 0.2, 4, 1.0)

    def test_plan_roundtrips_through_disk_cache(self, isolated_cache):
        cache = cache_mod.PayloadCache()
        plan = sharding.build_plan("gzip", 0.1, 3, cache=cache)
        sharding.clear_plan_memo()
        again = sharding.build_plan("gzip", 0.1, 3, cache=cache)
        assert again.to_dict() == plan.to_dict()
        assert cache.hits >= 1   # second build came from disk

    def test_run_sharded_shards2_is_exact(self, isolated_cache):
        whole = simulate(build_workload("gzip", scale=0.3), FULL, name="gzip")
        merged = sharding.run_sharded("gzip", FULL, scale=0.3, shards=2)
        assert_stats_equal_modulo_occupancy(merged, whole)


class TestShardedSuite:
    def test_shards1_is_bit_identical_to_plain_engine(self, isolated_cache):
        program = build_workload("gzip", scale=0.2)
        direct = simulate(program, FULL, name="gzip")
        suite = runner.run_suite(["gzip"], {"full": FULL}, scale=0.2,
                                 jobs=1, shards=1)
        assert suite["full"]["gzip"].to_dict() == direct.to_dict()

    @pytest.mark.parametrize("bench", runner.SMOKE_BENCHMARKS)
    def test_merged_ipc_within_2_percent_of_unsharded(self, isolated_cache,
                                                      bench):
        """The acceptance criterion: sharded smoke-benchmark IPC within 2%.

        With the default warm-up (one full slice) ``shards=2`` is exactly
        lossless, so this also pins the merge plumbing end to end."""
        whole = runner.run_suite([bench], {"full": FULL}, scale=0.3,
                                 jobs=1, shards=1)["full"][bench]
        merged = runner.run_suite([bench], {"full": FULL}, scale=0.3,
                                  jobs=1, shards=2)["full"][bench]
        assert merged.retired == whole.retired
        assert merged.ipc == pytest.approx(whole.ipc, rel=0.02)
        report = sharding.cold_start_report(whole, merged)
        assert report["retired_match"]
        assert report["ipc_delta_fraction"] <= 0.02

    def test_higher_shard_counts_keep_instruction_counters_exact(
            self, isolated_cache):
        whole = runner.run_suite(["gzip"], {"full": FULL}, scale=0.3,
                                 jobs=1, shards=1)["full"]["gzip"]
        merged = runner.run_suite(["gzip"], {"full": FULL}, scale=0.3,
                                  jobs=1, shards=4)["full"]["gzip"]
        # Instruction-level counters tile exactly at any shard count; only
        # cycle-accurate metrics carry the (documented) cold-start delta.
        assert merged.retired == whole.retired
        assert merged.ipc == pytest.approx(whole.ipc, rel=0.10)

    def test_parallel_sharded_equals_serial_sharded(self, isolated_cache):
        serial = runner.run_suite(["gzip", "mcf"], {"full": FULL}, scale=0.2,
                                  jobs=1, shards=3)
        runner.clear_cache(disk=True)
        parallel = runner.run_suite(["gzip", "mcf"], {"full": FULL},
                                    scale=0.2, jobs=4, shards=3)
        for bench in ("gzip", "mcf"):
            assert (serial["full"][bench].to_dict()
                    == parallel["full"][bench].to_dict())

    def test_checkpoints_shared_across_configs(self, isolated_cache):
        configs = {"none": NONE, "full": FULL}
        runner.run_suite(["gzip"], configs, scale=0.2, jobs=1, shards=3)
        # One plan serves both configs: exactly one plan payload on disk
        # next to the slice/merged results.
        cache = cache_mod.PayloadCache()
        key = sharding.plan_key("gzip", 0.2, 3, runner.default_warmup_fraction())
        assert cache.load_payload(key) is not None
        assert runner.telemetry.slices_simulated == 6   # 3 slices x 2 configs

    def test_warm_sharded_sweep_runs_zero_simulations(self, isolated_cache):
        runner.run_suite(["gzip"], {"full": FULL}, scale=0.2, jobs=1,
                         shards=3)
        runner.clear_cache(disk=False)
        runner.telemetry.reset()
        runner.run_suite(["gzip"], {"full": FULL}, scale=0.2, jobs=1,
                         shards=3)
        assert runner.telemetry.simulations == 0
        assert runner.telemetry.disk_hits >= 1   # merged key hit

    def test_sharded_and_unsharded_results_never_collide(self,
                                                         isolated_cache):
        sharded = runner.run_suite(["gzip"], {"full": FULL}, scale=0.2,
                                   jobs=1, shards=4)["full"]["gzip"]
        runner.telemetry.reset()
        whole = runner.run_suite(["gzip"], {"full": FULL}, scale=0.2,
                                 jobs=1, shards=1)["full"]["gzip"]
        # The unsharded request re-simulated instead of returning the
        # sharded approximation.
        assert runner.telemetry.simulations == 1
        assert whole.cycles < sharded.cycles   # sharded carries cold starts

    def test_run_benchmark_accepts_shards(self, isolated_cache):
        stats = runner.run_benchmark("gzip", FULL, scale=0.2, shards=2)
        direct = simulate(build_workload("gzip", scale=0.2), FULL,
                          name="gzip")
        assert_stats_equal_modulo_occupancy(stats, direct)   # shards=2 exact

    def test_cli_accepts_shards(self, isolated_cache, capsys):
        from repro.__main__ import main

        rc = main(["run", "--benchmarks", "gzip", "--scale", "0.1",
                   "--shards", "2", "--jobs", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gzip" in out and "slices" in out

    def test_repro_shards_env_var(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "3")
        assert runner.default_shards() == 3
        monkeypatch.setenv("REPRO_SHARDS", "not-a-number")
        with pytest.raises(runner.EnvVarError):
            runner.default_shards()
        monkeypatch.setenv("REPRO_SHARDS", "0")
        with pytest.raises(runner.EnvVarError):
            runner.default_shards()

    def test_explicit_bad_shards_is_a_value_error(self, monkeypatch):
        # An explicit bad argument is the caller's bug, not an env problem:
        # it must raise a catchable ValueError, not a SystemExit subclass.
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        with pytest.raises(ValueError):
            runner.default_shards(0)
        assert runner.default_shards(3) == 3
        assert runner.default_shards(10 ** 6) == sharding.MAX_SHARDS

    def test_cli_rejects_bad_shards(self, isolated_cache):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="--shards"):
            main(["run", "--benchmarks", "gzip", "--scale", "0.1",
                  "--shards", "0"])


# ----------------------------------------------------------------------
# runner satellites: LRU memo + longest-first estimates
# ----------------------------------------------------------------------
class TestMemoryCacheBound:
    def test_lru_eviction_is_bounded_and_counted(self, isolated_cache,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_MEMCACHE_MAX", "2")
        runner.telemetry.reset()
        a, b, c = SimStats(retired=1), SimStats(retired=2), SimStats(retired=3)
        runner._MEMORY_CACHE["a"] = a
        runner._MEMORY_CACHE["b"] = b
        assert runner.telemetry.memory_evictions == 0
        runner._MEMORY_CACHE["c"] = c
        assert runner.telemetry.memory_evictions == 1
        assert "a" not in runner._MEMORY_CACHE      # least-recent dropped
        assert runner._MEMORY_CACHE.get("b") is b
        assert runner._MEMORY_CACHE.get("c") is c

    def test_lru_get_refreshes_recency(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_MEMCACHE_MAX", "2")
        runner._MEMORY_CACHE["a"] = SimStats(retired=1)
        runner._MEMORY_CACHE["b"] = SimStats(retired=2)
        runner._MEMORY_CACHE.get("a")               # refresh "a"
        runner._MEMORY_CACHE["c"] = SimStats(retired=3)
        assert "a" in runner._MEMORY_CACHE
        assert "b" not in runner._MEMORY_CACHE

    def test_zero_disables_the_bound(self, isolated_cache, monkeypatch):
        monkeypatch.setenv("REPRO_MEMCACHE_MAX", "0")
        for i in range(50):
            runner._MEMORY_CACHE[f"k{i}"] = SimStats(retired=i)
        assert len(runner._MEMORY_CACHE) == 50
        assert runner.telemetry.memory_evictions == 0


class TestLongestFirstEstimates:
    def test_estimates_rank_known_extremes(self):
        # vortex is by far the longest benchmark, vpr.r among the shortest.
        estimates = {name: estimate_dynamic_insts(name, 0.3)
                     for name in runner.DEFAULT_BENCHMARKS}
        ranked = sorted(estimates, key=estimates.get, reverse=True)
        assert ranked[0] == "vortex"
        assert estimates["vortex"] > estimates["gzip"] > 0

    def test_estimates_scale_monotonically(self):
        assert (estimate_dynamic_insts("crafty", 1.0)
                > estimate_dynamic_insts("crafty", 0.3)
                > estimate_dynamic_insts("crafty", 0.1) > 0)

    def test_unknown_benchmark_estimates_zero(self):
        assert estimate_dynamic_insts("no-such-benchmark", 1.0) == 0
