"""Property-based tests (hypothesis) on the core data structures and
invariants: ISA semantics, the reference-counted physical register file, the
integration table, the LISP, caches, and end-to-end architectural
equivalence of the timing core for randomly generated straight-line
programs."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import MachineConfig, simulate
from repro.functional import Emulator
from repro.integration import (
    IndexScheme,
    IntegrationConfig,
    IntegrationTable,
    ITEntry,
    LoadIntegrationSuppressionPredictor,
)
from repro.isa import Opcode, ProgramBuilder
from repro.isa import semantics
from repro.memsys import Cache, CacheConfig
from repro.rename import PhysicalRegisterFile, ZERO_PREG

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)
imm16 = st.integers(min_value=-32768, max_value=32767)

INT_RR_OPS = [Opcode.ADDQ, Opcode.SUBQ, Opcode.AND, Opcode.OR, Opcode.XOR,
              Opcode.SLL, Opcode.SRL, Opcode.SRA, Opcode.CMPEQ, Opcode.CMPLT,
              Opcode.CMPLE, Opcode.CMPULT, Opcode.MULQ]
INT_RI_OPS = [Opcode.ADDQI, Opcode.SUBQI, Opcode.ANDI, Opcode.ORI,
              Opcode.XORI, Opcode.SLLI, Opcode.SRLI, Opcode.SRAI,
              Opcode.CMPEQI, Opcode.CMPLTI, Opcode.CMPLEI, Opcode.LDA,
              Opcode.MULQI]


class TestSemanticsProperties:
    @given(op=st.sampled_from(INT_RR_OPS), a=u64, b=u64)
    def test_integer_results_stay_in_64_bits(self, op, a, b):
        result = semantics.evaluate(op, a, b, None)
        assert 0 <= result < (1 << 64)

    @given(op=st.sampled_from(INT_RI_OPS), a=u64, imm=imm16)
    def test_immediate_results_stay_in_64_bits(self, op, a, imm):
        result = semantics.evaluate(op, a, None, imm)
        assert 0 <= result < (1 << 64)

    @given(a=u64, b=u64)
    def test_add_sub_inverse(self, a, b):
        added = semantics.evaluate(Opcode.ADDQ, a, b, None)
        assert semantics.evaluate(Opcode.SUBQ, added, b, None) == a

    @given(a=u64, imm=imm16)
    def test_lda_inverse_pairs(self, a, imm):
        """The stack-adjustment idiom reverse integration relies on:
        lda rd, imm(ra) followed by lda ra', -imm(rd) restores the value."""
        down = semantics.evaluate(Opcode.LDA, a, None, imm)
        up = semantics.evaluate(Opcode.LDA, down, None, -imm)
        assert up == a

    @given(value=st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_signed_unsigned_round_trip(self, value):
        assert semantics.to_signed(semantics.to_unsigned(value)) == value

    @given(a=u64)
    def test_compare_results_are_boolean(self, a):
        for op in (Opcode.CMPEQ, Opcode.CMPLT, Opcode.CMPULT):
            assert semantics.evaluate(op, a, a, None) in (0, 1)

    @given(a=u64)
    def test_branch_direction_consistency(self, a):
        """Exactly one of beq/bne is taken, and blt/bge partition the space."""
        assert semantics.branch_taken(Opcode.BEQ, a) != \
            semantics.branch_taken(Opcode.BNE, a)
        assert semantics.branch_taken(Opcode.BLT, a) != \
            semantics.branch_taken(Opcode.BGE, a)


class TestPhysicalRegisterFileProperties:
    @given(ops=st.lists(st.sampled_from(["alloc", "ref", "release",
                                         "release_squash"]),
                        min_size=1, max_size=200))
    def test_reference_counts_never_negative_and_never_leak(self, ops):
        """Under arbitrary allocate/add_ref/release sequences the reference
        counts stay consistent: never negative, zero-count registers are
        exactly the free ones, and the zero register is untouched."""
        prf = PhysicalRegisterFile(num_pregs=80, refcount_bits=4)
        live = []           # (preg, outstanding_refs)
        for action in ops:
            if action == "alloc":
                preg = prf.allocate()
                if preg is not None:
                    live.append([preg, 1])
            elif action == "ref" and live:
                preg, refs = live[-1]
                if prf.add_ref(preg):
                    live[-1][1] += 1
            elif action in ("release", "release_squash") and live:
                preg, refs = live[-1]
                prf.release(preg, via_squash=(action == "release_squash"))
                live[-1][1] -= 1
                if live[-1][1] == 0:
                    live.pop()
            # Invariants after every step.
            assert all(count >= 0 for count in prf.refcount)
            expected = sum(refs for _, refs in live)
            assert prf.total_references() == expected
        assert prf.refcount[ZERO_PREG] == 1

    @given(width=st.integers(min_value=1, max_value=6))
    def test_refcount_saturation_respects_width(self, width):
        prf = PhysicalRegisterFile(num_pregs=70, refcount_bits=width)
        preg = prf.allocate()
        added = 0
        while prf.add_ref(preg):
            added += 1
            assert added < 200
        assert prf.refcount[preg] == prf.max_refcount == (1 << width) - 1


class TestIntegrationTableProperties:
    @given(entries=st.integers(min_value=1, max_value=60),
           assoc=st.sampled_from([1, 2, 4, 0]),
           scheme=st.sampled_from(list(IndexScheme)))
    def test_occupancy_never_exceeds_capacity(self, entries, assoc, scheme):
        size = 64
        table = IntegrationTable(size, assoc, scheme)
        for i in range(entries * 4):
            entry = ITEntry(pc=4 * i, opcode=Opcode.ADDQI, imm=i % 7,
                            in1=i % 30, gen1=0, in2=None, gen2=0,
                            out=i % 50, out_gen=0)
            table.insert(entry, call_depth=i % 5)
        assert table.occupancy() <= size
        for cache_set in table._sets:
            assert len(cache_set) <= table.assoc

    @given(pcs=st.lists(st.integers(min_value=0, max_value=4000).map(
        lambda x: x * 4), min_size=1, max_size=50))
    def test_lisp_always_suppresses_most_recent_training(self, pcs):
        lisp = LoadIntegrationSuppressionPredictor(entries=16, assoc=2)
        for pc in pcs:
            lisp.train(pc)
            assert lisp.suppresses(pc)


class TestCacheProperties:
    @given(addresses=st.lists(st.integers(min_value=0, max_value=1 << 20),
                              min_size=1, max_size=100))
    def test_latency_bounds_and_hit_rate_sanity(self, addresses):
        cache = Cache(CacheConfig("c", size_bytes=2048, line_bytes=32,
                                  associativity=2, hit_latency=2))
        for cycle, addr in enumerate(addresses * 2):
            latency, hit = cache.access(addr, cycle * 10, fill_latency=50)
            assert latency >= cache.config.hit_latency
            assert latency <= 2 + 50 + 52          # hit + fill + mshr wait
        assert cache.stats.accesses == 2 * len(addresses)
        assert cache.stats.hits + cache.stats.misses == cache.stats.accesses


@st.composite
def straight_line_programs(draw):
    """Random straight-line integer programs ending in an exit syscall."""
    builder = ProgramBuilder(name="random")
    regs = ["t0", "t1", "t2", "t3", "s0", "s1"]
    builder.label("main")
    for reg in regs:
        builder.li(reg, draw(st.integers(min_value=0, max_value=1000)))
    num_insts = draw(st.integers(min_value=1, max_value=40))
    for _ in range(num_insts):
        kind = draw(st.integers(min_value=0, max_value=3))
        rd = draw(st.sampled_from(regs))
        ra = draw(st.sampled_from(regs))
        if kind == 0:
            rb = draw(st.sampled_from(regs))
            op = draw(st.sampled_from(["addq", "subq", "xor", "and", "or",
                                       "cmplt"]))
            builder.rr(op, rd, ra, rb)
        elif kind == 1:
            op = draw(st.sampled_from(["addqi", "subqi", "xori", "slli"]))
            imm = draw(st.integers(min_value=1, max_value=15))
            builder.ri(op, rd, ra, imm)
        elif kind == 2:
            offset = 8 * draw(st.integers(min_value=0, max_value=15))
            builder.stq(ra, offset, "gp")
        else:
            offset = 8 * draw(st.integers(min_value=0, max_value=15))
            builder.load("ldq", rd, offset, "gp")
    builder.mov("a0", draw(st.sampled_from(regs)))
    builder.syscall(0)
    program = builder.build(entry="main")
    return program


class TestEndToEndEquivalence:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=straight_line_programs())
    def test_timing_core_matches_functional_emulator(self, program):
        """For arbitrary straight-line programs the timing core with full
        integration produces exactly the architectural result."""
        reference = Emulator(program).run()
        cfg = MachineConfig().with_integration(
            IntegrationConfig.full(num_physical_regs=256))
        from repro.core import Processor
        proc = Processor(program, cfg)
        stats = proc.run()
        assert stats.retired == reference.instructions
        assert proc.arch.exit_code == reference.state.exit_code
        assert proc.arch.memory.snapshot() == reference.state.memory.snapshot()
