"""Canonical config serialization and fingerprinting.

The regression targets here are the cache-collision bugs of the old
hand-maintained ``_config_key`` tuple, which ignored the memory-system and
branch-predictor sub-configurations entirely: two machines differing only in
cache geometry or predictor sizing shared one cached result.  The
fingerprint hashes the *whole* field tree, so any field difference anywhere
must produce a distinct fingerprint.
"""

from dataclasses import replace

import pytest

from repro.core import MachineConfig
from repro.core.config import IssuePortConfig
from repro.frontend.branch_predictor import BranchPredictorConfig
from repro.integration.config import IndexScheme, IntegrationConfig, LispMode
from repro.memsys.hierarchy import MemSysConfig
from repro.serialization import from_dict, to_dict


class TestRoundTrip:
    def test_default_machine_roundtrip(self):
        config = MachineConfig()
        rebuilt = MachineConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.fingerprint() == config.fingerprint()

    def test_nondefault_machine_roundtrip(self):
        config = MachineConfig().reduced_both(20).with_integration(
            IntegrationConfig.squash(lisp_mode=LispMode.ORACLE,
                                     index_scheme=IndexScheme.OPCODE_IMM))
        rebuilt = MachineConfig.from_dict(config.to_dict())
        assert rebuilt == config
        assert rebuilt.combined_ldst_port
        assert rebuilt.integration.lisp_mode is LispMode.ORACLE
        assert rebuilt.integration.index_scheme is IndexScheme.OPCODE_IMM

    def test_to_dict_is_plain_json_types(self):
        import json

        payload = MachineConfig().to_dict()
        json.dumps(payload)                     # must not raise
        assert payload["integration"]["lisp_mode"] == "realistic"
        assert payload["memsys"]["dl1"]["size_bytes"] == 32 * 1024

    def test_nested_configs_roundtrip_standalone(self):
        for config in (IntegrationConfig.full(), MemSysConfig(),
                       BranchPredictorConfig(), IssuePortConfig()):
            rebuilt = type(config).from_dict(config.to_dict())
            assert rebuilt == config

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            IssuePortConfig.from_dict({"issue_width": 4, "bogus": 1})

    def test_from_dict_defaults_missing_fields(self):
        config = IssuePortConfig.from_dict({"issue_width": 8})
        assert config.issue_width == 8
        assert config.loads == IssuePortConfig().loads

    def test_generic_helpers_match_methods(self):
        config = IntegrationConfig.full()
        assert to_dict(config) == config.to_dict()
        assert from_dict(IntegrationConfig, to_dict(config)) == config


class TestFingerprint:
    def test_fingerprint_is_stable(self):
        assert MachineConfig().fingerprint() == MachineConfig().fingerprint()

    def test_fingerprint_differs_for_integration_fields(self):
        base = MachineConfig()
        other = base.with_integration(IntegrationConfig.squash())
        assert other.fingerprint() != base.fingerprint()

    def test_memsys_only_difference_changes_fingerprint(self):
        """Regression: the old ``_config_key`` ignored memsys fields, so
        configs differing only in cache geometry collided in the cache."""
        base = MachineConfig()
        bigger_dl1 = replace(base.memsys.dl1, size_bytes=64 * 1024)
        other = replace(base, memsys=replace(base.memsys, dl1=bigger_dl1))
        assert other.fingerprint() != base.fingerprint()

    def test_memory_latency_only_difference_changes_fingerprint(self):
        base = MachineConfig()
        other = replace(base, memsys=replace(base.memsys, memory_latency=200))
        assert other.fingerprint() != base.fingerprint()

    def test_branch_predictor_only_difference_changes_fingerprint(self):
        """Regression: predictor sizing was also invisible to the old key."""
        base = MachineConfig()
        other = replace(base, branch_predictor=replace(
            base.branch_predictor, history_bits=8))
        assert other.fingerprint() != base.fingerprint()

    def test_btb_only_difference_changes_fingerprint(self):
        base = MachineConfig()
        other = replace(base, branch_predictor=replace(
            base.branch_predictor, btb_entries=512))
        assert other.fingerprint() != base.fingerprint()

    def test_every_scalar_field_participates(self):
        """Flip every scalar leaf of the config tree one at a time; each
        flip must change the fingerprint."""
        base = MachineConfig()
        seen = {base.fingerprint()}

        def flipped(value):
            if isinstance(value, bool):
                return not value
            if isinstance(value, int):
                return value + 1
            if isinstance(value, float):
                return value + 1.0
            return None

        import dataclasses

        def visit(config, rebuild):
            for field in dataclasses.fields(config):
                value = getattr(config, field.name)
                if dataclasses.is_dataclass(value):
                    visit(value, lambda v, f=field: rebuild(
                        dataclasses.replace(config, **{f.name: v})))
                    continue
                new = flipped(value)
                if new is None:
                    continue
                variant = rebuild(
                    dataclasses.replace(config, **{field.name: new}))
                fp = variant.fingerprint()
                assert fp not in seen, (
                    f"fingerprint collision flipping {field.name}")
                seen.add(fp)

        visit(base, lambda v: v)


class TestElidedDefaults:
    """The ``variant`` field is elided from canonical JSON at its default,
    keeping pre-variant fingerprints (and cache keys) byte-stable."""

    def test_default_variant_absent_from_canonical_dict(self):
        payload = MachineConfig().to_dict()
        assert "variant" not in payload

    def test_non_default_variant_present_and_fingerprinted(self):
        base = MachineConfig()
        other = base.with_variant("no-cht")
        assert other.to_dict()["variant"] == "no-cht"
        assert other.fingerprint() != base.fingerprint()

    def test_explicit_baseline_equals_default_fingerprint(self):
        base = MachineConfig()
        assert (base.with_variant("baseline").fingerprint()
                == base.fingerprint())

    def test_elided_dict_roundtrips_to_default(self):
        restored = MachineConfig.from_dict(MachineConfig().to_dict())
        assert restored == MachineConfig()
        assert restored.variant == "baseline"

    def test_variant_roundtrips(self):
        config = MachineConfig().with_variant("oracle-bp")
        assert MachineConfig.from_dict(config.to_dict()) == config
