"""The reliability layer: fault specs, fs wrappers, retry, fencing, fleet.

Unit-level coverage for ``repro/reliability/`` and the hardened failure
semantics it enables in the cache/queue/worker stack:

* the ``REPRO_FAULTS`` spec grammar (parse errors, selector semantics,
  category/path matching, deterministic schedules);
* the fs wrappers (torn writes, injected errnos, ``SimulatedCrash``
  being uncatchable by ``except Exception``);
* bounded retry with deterministic jitter, and its env knobs;
* sha256 integrity trailers and quarantine-to-``corrupt/`` on the cache;
* lease fencing: a worker that lost its lease never publishes or
  done-renames a reclaimed job (the done-rename race, directed);
* the ``repro fleet`` supervisor's restart policy with fake handles;
* the distributed backend's adaptive idle poll and pool fallback;
* ``repro status`` degrading cleanly on missing dirs and corrupt stats.

The full crash-point x fault matrix over real simulations lives in
``tests/test_chaos.py``.
"""

import errno
import json
import os
import time

import pytest

from repro.core import MachineConfig, SimStats
from repro.distrib import backend as backend_mod
from repro.distrib import worker as worker_mod
from repro.distrib.backend import DistributedBackend
from repro.distrib.queue import JobQueue, LeaseLostError
from repro.experiments import cache as cache_mod
from repro.experiments import runner
from repro.experiments.cache import ResultCache, seal_entry, unseal_entry
from repro.reliability import (
    FaultPlan,
    FaultSpecError,
    FleetSupervisor,
    SimulatedCrash,
    backoff_delay,
    crashpoint,
    install_plan,
    plan_from_env,
    reset_plan,
    with_retries,
)
from repro.reliability import fs


@pytest.fixture(autouse=True)
def _clean_fault_plan():
    """No fault plan leaks into (or out of) any test."""
    reset_plan()
    yield
    reset_plan()


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path))
    monkeypatch.delenv("REPRO_QUEUE_DIR", raising=False)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.setattr(runner, "_DISK_CACHE", None)
    runner._MEMORY_CACHE.clear()
    runner.telemetry.reset()
    yield tmp_path
    runner._MEMORY_CACHE.clear()
    runner.clear_cache()
    monkeypatch.setattr(runner, "_DISK_CACHE", None)


# ----------------------------------------------------------------------
# fault spec grammar
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_parse_multi_rule_spec(self):
        plan = FaultPlan.parse(
            "rename:queue/claimed:nth=3:crash;write:@cache:nth=1:torn; "
            "read:*:after=2:eio")
        assert [r.describe() for r in plan.rules] == [
            "rename:queue/claimed:nth=3:crash",
            "write:@cache:nth=1:torn",
            "read:*:after=2:eio",
        ]

    @pytest.mark.parametrize("spec, message", [
        ("rename:claimed:crash", "4 ':'-separated fields"),
        ("chmod:*:always:eio", "unknown fault op"),
        ("write:*:sometimes:eio", "unknown selector"),
        ("write:*:nth=x:eio", "integer argument"),
        ("write:*:nth=0:eio", "must be >= 1"),
        ("write:*:always:explode", "unknown action"),
        ("write:*:always:delay=soon", "seconds argument"),
        ("write:*:always:delay=-1", "must be >= 0"),
        ("read:*:always:torn", "only applies to write"),
        ("", "empty fault spec"),
        (" ; ", "empty fault spec"),
    ])
    def test_parse_errors(self, spec, message):
        with pytest.raises(FaultSpecError, match=message):
            FaultPlan.parse(spec)

    def test_selector_semantics(self):
        nth = FaultPlan.parse("read:*:nth=2:eio")
        assert [nth.check("read", "p", "cache") is not None
                for _ in range(4)] == [False, True, False, False]
        after = FaultPlan.parse("read:*:after=2:eio")
        assert [after.check("read", "p", "cache") is not None
                for _ in range(4)] == [False, False, True, True]
        every = FaultPlan.parse("read:*:every=2:eio")
        assert [every.check("read", "p", "cache") is not None
                for _ in range(4)] == [False, True, False, True]

    def test_category_and_path_matching(self):
        plan = FaultPlan.parse("write:@cache:always:eio")
        assert plan.check("write", "/x/entry.json", "queue") is None
        assert plan.check("write", "/x/entry.json", "cache") is not None
        assert plan.check("read", "/x/entry.json", "cache") is None
        # Renames match against "SRC::DST" so either side can be targeted.
        renames = FaultPlan.parse("rename:claimed:nth=1:eio")
        assert renames.check("rename", "q/pending/j::q/claimed/j",
                             "queue") is not None

    def test_every_matching_rule_counts_first_firing_wins(self):
        plan = FaultPlan.parse("write:*:nth=1:eio;write:*:nth=2:enospc")
        first = plan.check("write", "p", "cache")
        assert first is not None and first.action == "eio"
        second = plan.check("write", "p", "cache")
        assert second is not None and second.action == "enospc"
        assert plan.check("write", "p", "cache") is None
        assert plan.total_fired() == 2

    def test_plan_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULTS", raising=False)
        assert plan_from_env() is None
        monkeypatch.setenv("REPRO_FAULTS", "write:@cache:nth=1:torn")
        plan = plan_from_env()
        assert plan is not None and len(plan.rules) == 1
        monkeypatch.setenv("REPRO_FAULTS", "write:@cache:nth=1")
        with pytest.raises(runner.EnvVarError, match="REPRO_FAULTS"):
            plan_from_env()

    def test_crashpoint_fires_and_validates_names(self):
        crashpoint("after-claim")              # no plan installed: no-op
        install_plan(FaultPlan.parse("point:after-claim:nth=1:crash"))
        with pytest.raises(SimulatedCrash):
            crashpoint("after-claim")
        crashpoint("after-claim")              # rule exhausted
        with pytest.raises(AssertionError, match="unregistered crash point"):
            crashpoint("no-such-step")

    def test_simulated_crash_evades_except_exception(self):
        install_plan(FaultPlan.parse("point:before-publish:always:crash"))
        with pytest.raises(SimulatedCrash):
            try:
                crashpoint("before-publish")
            except Exception:            # the worker's failure handler shape
                pytest.fail("SimulatedCrash must not be catchable here")


# ----------------------------------------------------------------------
# fs wrappers
# ----------------------------------------------------------------------
class TestFsWrappers:
    def test_no_plan_operations_pass_through(self, tmp_path):
        path = tmp_path / "f"
        fs.write_bytes(path, b"payload", "cache", durable=True)
        assert fs.read_bytes(path, "cache") == b"payload"
        fs.rename(path, tmp_path / "g", "cache")
        fs.unlink(tmp_path / "g", "cache")
        fs.unlink(tmp_path / "g", "cache", missing_ok=True)
        with pytest.raises(FileNotFoundError):
            fs.unlink(tmp_path / "g", "cache")

    def test_torn_write_persists_half_and_succeeds(self, tmp_path):
        install_plan(FaultPlan.parse("write:*:nth=1:torn"))
        path = tmp_path / "f"
        fs.write_bytes(path, b"12345678", "cache")
        assert path.read_bytes() == b"1234"    # silent corruption
        fs.write_bytes(path, b"12345678", "cache")
        assert path.read_bytes() == b"12345678"

    def test_injected_errnos(self, tmp_path):
        install_plan(FaultPlan.parse(
            "write:*:nth=1:eio;rename:*:nth=1:enospc"))
        with pytest.raises(OSError) as io_err:
            fs.write_bytes(tmp_path / "f", b"x", "cache")
        assert io_err.value.errno == errno.EIO
        (tmp_path / "f").write_bytes(b"x")
        with pytest.raises(OSError) as nospc:
            fs.rename(tmp_path / "f", tmp_path / "g", "cache")
        assert nospc.value.errno == errno.ENOSPC
        assert (tmp_path / "f").exists()       # the rename never happened

    def test_delay_action_then_succeeds(self, tmp_path):
        install_plan(FaultPlan.parse("read:*:nth=1:delay=0"))
        (tmp_path / "f").write_bytes(b"slow")
        assert fs.read_bytes(tmp_path / "f", "cache") == b"slow"


# ----------------------------------------------------------------------
# bounded retry with deterministic jitter
# ----------------------------------------------------------------------
class TestRetry:
    def test_backoff_is_deterministic_and_bounded(self):
        for attempt in range(4):
            delay = backoff_delay("cache-write:abcd", attempt, 0.05)
            assert delay == backoff_delay("cache-write:abcd", attempt, 0.05)
            assert 0.5 * 0.05 * 2 ** attempt <= delay <= 0.05 * 2 ** attempt
        assert (backoff_delay("op-a", 0, 0.05)
                != backoff_delay("op-b", 0, 0.05))

    def test_transient_errors_are_retried(self):
        calls = {"n": 0}
        slept = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError(errno.EIO, "injected")
            return "ok"

        runner.telemetry.reset()
        assert with_retries(flaky, op="t", retry_max=3, retry_base=0.01,
                            sleep=slept.append) == "ok"
        assert calls["n"] == 3
        assert slept == [backoff_delay("t", 0, 0.01),
                         backoff_delay("t", 1, 0.01)]
        assert runner.telemetry.io_retries == 2

    def test_enoent_is_a_protocol_signal_not_retried(self):
        calls = {"n": 0}

        def racer():
            calls["n"] += 1
            raise OSError(errno.ENOENT, "someone else won")

        with pytest.raises(OSError):
            with_retries(racer, op="t", retry_max=3, retry_base=0.01,
                         sleep=lambda _s: None)
        assert calls["n"] == 1

    def test_exhaustion_raises_the_last_error(self):
        calls = {"n": 0}

        def hopeless():
            calls["n"] += 1
            raise OSError(errno.ENOSPC, "full")

        with pytest.raises(OSError) as err:
            with_retries(hopeless, op="t", retry_max=2, retry_base=0.0,
                         sleep=lambda _s: None)
        assert err.value.errno == errno.ENOSPC
        assert calls["n"] == 3                 # initial + 2 retries

    def test_env_knobs_are_validated(self, monkeypatch):
        from repro.reliability.retry import (
            default_retry_base,
            default_retry_max,
        )

        monkeypatch.setenv("REPRO_RETRY_MAX", "5")
        assert default_retry_max() == 5
        monkeypatch.setenv("REPRO_RETRY_MAX", "-1")
        with pytest.raises(runner.EnvVarError, match="REPRO_RETRY_MAX"):
            default_retry_max()
        monkeypatch.setenv("REPRO_RETRY_MAX", "three")
        with pytest.raises(runner.EnvVarError, match="REPRO_RETRY_MAX"):
            default_retry_max()
        monkeypatch.setenv("REPRO_RETRY_BASE", "0.2")
        assert default_retry_base() == 0.2
        monkeypatch.setenv("REPRO_RETRY_BASE", "-1")
        with pytest.raises(runner.EnvVarError, match="REPRO_RETRY_BASE"):
            default_retry_base()


# ----------------------------------------------------------------------
# cache integrity: sha256 trailers + quarantine
# ----------------------------------------------------------------------
class TestCacheIntegrity:
    def test_seal_unseal_roundtrip_and_tamper_detection(self):
        body = b'{"x": 1}'
        sealed = seal_entry(body)
        assert unseal_entry(sealed) == (body, True)
        tampered = sealed.replace(b'"x": 1', b'"x": 2')
        assert unseal_entry(tampered) == (None, False)
        # Legacy trailer-less entries still load, just unverified.
        assert unseal_entry(body) == (body, False)

    def test_torn_write_is_quarantined_then_recomputed(self, tmp_path,
                                                       capsys):
        install_plan(FaultPlan.parse("write:@cache:nth=1:torn"))
        cache = ResultCache(tmp_path)
        runner.telemetry.reset()
        key = "aa" * 32
        assert cache.store_payload(key, {"x": 1})      # torn, silently
        assert cache.load_payload(key) is None         # detected at read
        assert runner.telemetry.corrupt_quarantined == 1
        assert "quarantined corrupt entry" in capsys.readouterr().err
        corrupt = list((tmp_path / "corrupt").iterdir())
        assert len(corrupt) == 1                       # evidence survives
        # The slot is free again: a recompute re-publishes and verifies.
        assert cache.store_payload(key, {"x": 1})
        assert cache.load_payload(key) == {"x": 1}
        info = cache.info()
        assert info["corrupt"] == 1 and info["entries"] == 1

    def test_persistent_write_failure_returns_false(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_MAX", "0")
        install_plan(FaultPlan.parse("write:@cache:always:eio"))
        cache = ResultCache(tmp_path)
        assert cache.store_payload("aa" * 32, {"x": 1}) is False
        assert not list(tmp_path.rglob("*.tmp"))       # no stranded tmp

    def test_single_transient_eio_is_absorbed(self, tmp_path):
        install_plan(FaultPlan.parse("write:@cache:nth=1:eio"))
        cache = ResultCache(tmp_path)
        runner.telemetry.reset()
        assert cache.store_payload("aa" * 32, {"x": 1})
        assert runner.telemetry.io_retries >= 1
        assert cache.load_payload("aa" * 32) == {"x": 1}


# ----------------------------------------------------------------------
# lease fencing (the done-rename race, directed)
# ----------------------------------------------------------------------
class TestLeaseFencing:
    def test_reclaimed_jobs_original_worker_loses_every_check(self,
                                                              tmp_path):
        """The satellite race: worker A's lease expires mid-job, B reclaims
        and re-claims it; A wakes up late.  Every mutation A attempts must
        be fenced off -- heartbeat raises, complete/fail are no-ops, and
        B's claimed file (the same filename!) is untouched."""
        queue = JobQueue(tmp_path / "q", lease_ttl=0.05)
        queue.submit({"key": "k1"})
        stale = queue.claim("worker-a")
        time.sleep(0.1)                         # A sleeps through its TTL
        assert queue.reclaim_expired() == 1
        fresh = queue.claim("worker-b")
        assert fresh is not None
        with pytest.raises(LeaseLostError):
            queue.heartbeat(stale)
        assert queue.owns(stale) is False
        assert queue.complete(stale) is False   # fenced: done-rename no-op
        assert fresh.path.exists()              # B's claim is intact
        assert queue.fail(stale, "late failure") == "lost"
        assert fresh.path.exists()
        assert queue.complete(fresh)            # B finishes normally
        status = queue.status()
        assert (status.pending, status.claimed,
                status.done, status.dead) == (0, 0, 1, 0)

    def test_heartbeat_on_fully_released_job_raises(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_ttl=0.05)
        queue.submit({"key": "k1"})
        job = queue.claim("worker-a")
        time.sleep(0.1)
        assert queue.reclaim_expired() == 1     # back to pending, no lease
        with pytest.raises(LeaseLostError):
            queue.heartbeat(job)
        # ...so the stale worker cannot fence out the *next* claimer.
        rescue = queue.claim("worker-b")
        assert rescue is not None and queue.owns(rescue)

    def test_suspect_flag_after_heartbeat_silence(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_ttl=0.2)
        queue.submit({"key": "k1"})
        job = queue.claim("w1")
        clock = {"t": 100.0}
        beater = worker_mod._HeartbeatThread(queue, job,
                                             clock=lambda: clock["t"])
        assert not beater.suspect               # fresh
        clock["t"] = 100.0 + 0.11               # > ttl/2 without a beat
        assert beater.suspect
        beater.lost = True
        assert beater.suspect

    def test_process_one_fences_publish_after_losing_lease(
            self, tmp_path, monkeypatch):
        """End to end through process_one: A's heartbeats fail (wedged
        writer), its lease expires mid-execution, B reclaims and finishes;
        A's publish must be a no-op and counted as fenced."""
        queue_a = JobQueue(tmp_path / "q", lease_ttl=0.2)
        queue_b = JobQueue(tmp_path / "q", lease_ttl=0.2)
        cache = ResultCache(tmp_path / "cache")
        queue_a.submit({"key": "k1"})
        job = queue_a.claim("worker-a")
        assert job is not None

        def failing_heartbeat(_job, force=False):
            raise OSError(errno.EIO, "wedged lease writer")

        monkeypatch.setattr(queue_a, "heartbeat", failing_heartbeat)

        def slow_execute(_payload):
            time.sleep(0.3)                     # the lease goes stale
            assert queue_b.reclaim_expired() == 1
            rescued = queue_b.claim("worker-b")
            assert rescued is not None
            assert queue_b.complete(rescued)
            return SimStats()

        monkeypatch.setattr(worker_mod, "execute_payload", slow_execute)
        published = []
        monkeypatch.setattr(
            cache, "store",
            lambda key, stats: published.append(key) or True)
        runner.telemetry.reset()
        summary = worker_mod.WorkerSummary(worker="worker-a")
        worker_mod.process_one(queue_a, cache, job, summary)
        assert summary.fenced == 1
        assert summary.executed == 1            # it did run the job...
        assert not published                    # ...but never published
        assert runner.telemetry.fenced == 1
        status = queue_a.status()
        assert (status.pending, status.claimed,
                status.done, status.dead) == (0, 0, 1, 0)


# ----------------------------------------------------------------------
# queue hardening: corrupt metadata degrades, never crashes
# ----------------------------------------------------------------------
class TestQueueHardening:
    def test_corrupt_lease_fields_degrade_to_reclaim(self, tmp_path):
        queue = JobQueue(tmp_path / "q", lease_ttl=0.05)
        queue.submit({"key": "k1"})
        job = queue.claim("w1")
        job.lease_path.write_text(
            '{"worker": "w1", "heartbeat_at": "??", "ttl": []}')
        status = queue.status()                 # no traceback
        assert status.claimed == 1
        # heartbeat_at degrades to 0.0 -> the lease reads as long expired.
        assert queue.reclaim_expired() == 1
        rescued = queue.claim("w2")
        assert rescued is not None and queue.complete(rescued)

    def test_corrupt_attempt_counters_degrade(self, tmp_path):
        queue = JobQueue(tmp_path / "q", max_attempts=2)
        queue.submit({"key": "k1", "attempts": "many",
                      "max_attempts": None})
        job = queue.claim("w1")
        assert queue.fail(job, "boom") == "pending"   # treated as attempt 1
        job = queue.claim("w1")
        assert queue.fail(job, "boom") == "dead"


# ----------------------------------------------------------------------
# fleet supervisor (fake worker handles)
# ----------------------------------------------------------------------
class _ExitHandle:
    """A child that has already exited with ``code``."""

    def __init__(self, code):
        self.code = code

    def poll(self):
        return self.code

    def terminate(self):
        pass

    def kill(self):
        pass


class _LiveHandle:
    """A child that runs until terminated (then exits ``exit_code``)."""

    def __init__(self, exit_code=0):
        self.exit_code = exit_code
        self.terminated = False
        self.killed = False

    def poll(self):
        return self.exit_code if self.terminated else None

    def terminate(self):
        self.terminated = True

    def kill(self):
        self.killed = True


class TestFleetSupervisor:
    def test_all_workers_drain(self):
        spawned = []

        def spawn(index, clean):
            spawned.append((index, clean))
            return _ExitHandle(0)

        summary = FleetSupervisor(count=3, spawn=spawn,
                                  sleep=lambda _s: None).run()
        assert (summary.drained, summary.failed,
                summary.restarts) == (3, 0, 0)
        assert summary.ok
        assert spawned == [(0, False), (1, False), (2, False)]

    def test_crashed_worker_restarts_with_faults_stripped(self):
        spawned = []

        def spawn(index, clean):
            spawned.append((index, clean))
            return _ExitHandle(70 if len(spawned) == 1 else 0)

        summary = FleetSupervisor(count=1, spawn=spawn, backoff_base=0.0,
                                  sleep=lambda _s: None).run()
        assert (summary.drained, summary.restarts) == (1, 1)
        assert summary.ok
        # The restarted child is spawned clean (REPRO_FAULTS stripped).
        assert spawned == [(0, False), (0, True)]

    def test_restart_bound_marks_the_slot_failed(self):
        summary = FleetSupervisor(
            count=1, spawn=lambda _i, _c: _ExitHandle(3),
            max_restarts=2, backoff_base=0.0, sleep=lambda _s: None).run()
        assert (summary.drained, summary.failed,
                summary.restarts) == (0, 1, 2)
        assert not summary.ok
        assert "failed" in summary.describe()

    def test_graceful_stop_terminates_and_drains(self):
        handles = []

        def spawn(_index, _clean):
            handle = _LiveHandle(exit_code=0)
            handles.append(handle)
            return handle

        supervisor = FleetSupervisor(count=2, spawn=spawn,
                                     sleep=lambda _s: None)
        supervisor.stop()                       # SIGTERM arrived
        summary = supervisor.run()
        assert summary.stopped and summary.ok
        assert summary.drained == 2
        assert all(h.terminated and not h.killed for h in handles)

    def test_stragglers_are_killed_after_grace(self):
        class _Wedged(_LiveHandle):
            def poll(self):
                return None                     # ignores SIGTERM

        handle = _Wedged()
        supervisor = FleetSupervisor(count=1,
                                     spawn=lambda _i, _c: handle,
                                     grace=0.05, poll_interval=0.01)
        supervisor.stop()
        summary = supervisor.run()
        assert handle.killed
        assert summary.failed == 1 and summary.stopped


# ----------------------------------------------------------------------
# distributed backend: adaptive poll + graceful degradation
# ----------------------------------------------------------------------
class TestBackendResilience:
    def test_idle_poll_backs_off_and_resets_on_progress(
            self, isolated_cache, monkeypatch):
        backend = DistributedBackend(queue_dir=isolated_cache / "q",
                                     poll_interval=0.05, drain=False)
        key1, key2 = "aa" * 32, "bb" * 32
        jobs_list = [
            (1, (key1, "irrelevant", MachineConfig(), 0.1, True, None,
                 None)),
            (1, (key2, "irrelevant", MachineConfig(), 0.1, True, None,
                 None)),
        ]
        cache = ResultCache()
        sleeps = []

        class _Enough(Exception):
            pass

        def fake_sleep(seconds):
            sleeps.append(round(seconds, 6))
            if len(sleeps) == 3:
                cache.store(key1, SimStats())   # a remote worker lands one
            if len(sleeps) == 6:
                raise _Enough

        monkeypatch.setattr(backend_mod.time, "sleep", fake_sleep)
        with pytest.raises(_Enough):
            backend.execute(jobs_list, use_cache=True)
        # Exponential idle backoff, reset by the mid-wait progress.
        assert sleeps == [0.05, 0.1, 0.2, 0.05, 0.1, 0.2]

    def test_unusable_queue_root_falls_back_to_pool(self, isolated_cache,
                                                    capsys):
        blocker = isolated_cache / "blocker"
        blocker.write_bytes(b"not a directory")
        backend = DistributedBackend(queue_dir=blocker / "q",
                                     fallback_jobs=1)
        plan = runner.plan_suite(
            ["gzip"],
            {"none": MachineConfig()},
            0.06, 1, 1.0, use_cache=True)
        outcomes = backend.execute(plan.jobs_list, use_cache=True)
        assert len(outcomes) == 1
        assert next(iter(outcomes.values())).retired > 0
        err = capsys.readouterr().err
        assert "queue root unusable" in err
        assert "falling back to the pool backend" in err


# ----------------------------------------------------------------------
# repro status: clean degradation (satellite)
# ----------------------------------------------------------------------
class TestStatusCli:
    def test_status_on_missing_queue_dir_is_clean(self, isolated_cache,
                                                  capsys):
        from repro.__main__ import main

        assert main(["status"]) == 0
        out = capsys.readouterr().out
        assert "queue directory does not exist yet" in out
        assert "pending:  0" in out and "dead:     0" in out

    def test_status_survives_corrupt_worker_stats(self, isolated_cache,
                                                  capsys):
        from repro.__main__ import main

        queue = JobQueue(isolated_cache / "queue")
        queue.submit({"key": "k1"})
        stats_path = isolated_cache / "queue" / "workers" / "w1.json"
        stats_path.write_text(json.dumps({
            "worker": "w1", "executed": "many", "cache_hits": None,
            "failed": [], "reclaimed": {}, "started_at": "dawn"}))
        assert main(["status"]) == 0
        out = capsys.readouterr().out
        assert "w1" in out and "pending:  1" in out

    def test_cache_info_reports_quarantined_entries(self, isolated_cache,
                                                    capsys):
        from repro.__main__ import main

        install_plan(FaultPlan.parse("write:@cache:nth=1:torn"))
        cache = ResultCache()
        cache.store_payload("aa" * 32, {"x": 1})
        assert cache.load_payload("aa" * 32) is None   # quarantines
        reset_plan()
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "corrupt" in out and "quarantined" in out
