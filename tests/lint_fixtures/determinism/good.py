"""Determinism fixture: every construct here is replayable."""

import random


def ordered(items, extra):
    out = []
    for item in sorted(set(items)):          # sorted() restores an order
        out.append(item)
    merged = [x for x in sorted(items.union(extra))]
    rng = random.Random(1234)                # explicitly seeded generator
    return out, merged, rng.random()
