"""Determinism fixture: six nondeterministic constructs, one per line."""

import random
import time


def unreplayable(items, extra):
    out = []
    for item in set(items):                  # unordered-set iteration
        out.append(item)
    order = [x for x in items.union(extra)]  # set-method iteration
    jitter = random.random()                 # global random module
    stamp = time.time()                      # wall-clock read
    rng = random.Random()                    # unseeded Random()
    tie = id(items)                          # object-identity ordering
    return out, order, jitter, stamp, rng, tie
