"""Env-var fixture: reads outside the accessor convention."""

import os


def sneaky_read():
    # Direct read of a registered variable outside its accessor.
    return os.environ.get("REPRO_TEST_KNOB", "0")


def unregistered_read():
    # A REPRO_* variable with no registered accessor at all.
    return os.getenv("REPRO_MYSTERY_KNOB")


def dynamic_read(name):
    # Dynamic name outside the registered generic accessors.
    return os.environ[name]
