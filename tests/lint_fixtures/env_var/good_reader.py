"""Env-var fixture: the registered accessor, plus an allowed write."""

import os

ENV_TEST_KNOB = "REPRO_TEST_KNOB"


def test_knob():
    """The registered (and only) reader of REPRO_TEST_KNOB."""
    return os.environ.get(ENV_TEST_KNOB, "0")


def route_to_worker():
    # Writes are allowed anywhere; the convention governs interpretation.
    os.environ["REPRO_TEST_KNOB"] = "1"
