"""Fast-path fixture: the engine-state classes the fused guards read."""


class ArchState:
    def __init__(self):
        self.halted = False


class SimStats:
    def __init__(self):
        self.retired = 0


class ReservationStations:
    def __init__(self):
        self._ready = []
        self._waiting = {}
        self._prf = None
        self.occupancy = 0


class PipelineState:
    def __init__(self):
        self.arch = ArchState()
        self.stats = SimStats()
        self.rs = ReservationStations()
