"""Fast-path fixture: the stock stage classes (placed under stages/)."""


class FrontEnd:
    def tick(self):
        pass


class RenameIntegrate:
    def tick(self):
        pass


class IssueExecute:
    def tick(self):
        pass

    def writeback(self):
        pass


class CommitDiva:
    def tick(self):
        pass
