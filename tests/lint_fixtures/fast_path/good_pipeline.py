"""Fast-path fixture: sound dispatch set and guards (no findings)."""

from repro.core.stages.stages import (CommitDiva, FrontEnd, IssueExecute,
                                      RenameIntegrate)
from repro.core.support import PipelineState


class Processor:
    def __init__(self):
        self.state = PipelineState()
        self.front_end = FrontEnd()
        self.rename_integrate = RenameIntegrate()
        self.issue_execute = IssueExecute()
        self.commit_diva = CommitDiva()

    def _fast_path_eligible(self):
        return (type(self.front_end) is FrontEnd
                and type(self.rename_integrate) is RenameIntegrate
                and type(self.issue_execute) is IssueExecute
                and type(self.commit_diva) is CommitDiva
                and self.state.rs._prf is not None)

    def _run_phase_fast(self, budget):
        state = self.state
        arch = state.arch
        stats = state.stats
        execute = self.issue_execute
        while not arch.halted:
            if budget is not None and stats.retired >= budget:
                break
            if state.rs._ready:
                execute.tick()
