"""Fast-path fixture: three distinct guard-soundness violations."""

from repro.core.stages.stages import (CommitDiva, FrontEnd, IssueExecute,
                                      RenameIntegrate)
from repro.core.support import PipelineState


class TracingCommit(CommitDiva):
    """Overrides a guarded method, so its no-work contract differs."""

    def tick(self):
        self.traced = True


class Processor:
    def __init__(self):
        self.state = PipelineState()
        self.front_end = FrontEnd()
        self.rename_integrate = RenameIntegrate()
        self.issue_execute = IssueExecute()
        self.commit_diva = TracingCommit()

    def _fast_path_eligible(self):
        return (isinstance(self.front_end, FrontEnd)
                and type(self.rename_integrate) is RenameIntegrate
                and type(self.issue_execute) is IssueExecute
                and type(self.commit_diva) is TracingCommit)

    def _run_phase_fast(self, budget):
        state = self.state
        if state.rs._missing_ready:
            self.issue_execute.tick()
