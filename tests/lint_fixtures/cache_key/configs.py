"""Cache-key fixture dataclasses, audited via an injected loader.

``BrokenKeyConfig`` reproduces the pre-PR1 ``_config_key`` bug shape: a
hand-maintained serialization that silently skips declared fields, so two
configs differing only in the skipped field share a cache identity.  The
classes carry their own ``to_dict``/``fingerprint`` (the only surface the
rule consumes) so the fixture does not depend on the real serializer.
"""

import hashlib
import json
from dataclasses import dataclass, field, fields


def _digest(payload):
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()


@dataclass(frozen=True)
class GoodChild:
    depth: int = 2
    ways: int = 4

    def to_dict(self):
        return {"depth": self.depth, "ways": self.ways}

    def fingerprint(self):
        return _digest(self.to_dict())


@dataclass(frozen=True)
class GoodConfig:
    """Every field reaches the canonical rendering and the fingerprint."""

    width: int = 4
    name: str = "base"
    enabled: bool = True
    child: GoodChild = field(default_factory=GoodChild)

    def to_dict(self):
        return {"width": self.width, "name": self.name,
                "enabled": self.enabled, "child": self.child.to_dict()}

    def fingerprint(self):
        return _digest(self.to_dict())


@dataclass(frozen=True)
class ElidedConfig:
    """Default-valued elision declared via _ELIDE_DEFAULT is legitimate."""

    _ELIDE_DEFAULT = frozenset({"debug"})

    width: int = 4
    debug: bool = False

    def to_dict(self):
        out = {"width": self.width}
        if self.debug:                       # elided at the default
            out["debug"] = self.debug
        return out

    def fingerprint(self):
        return _digest(self.to_dict())


@dataclass(frozen=True)
class BrokenKeyConfig:
    """The pre-PR1 bug shape: ``assoc`` never reaches the rendering."""

    size: int = 64
    assoc: int = 2                           # skipped by to_dict()

    def to_dict(self):
        return {"size": self.size}

    def fingerprint(self):
        return _digest(self.to_dict())


@dataclass(frozen=True)
class BlindFingerprintConfig:
    """Rendered but not hashed: perturbing ``ways`` keeps the key."""

    size: int = 64
    ways: int = 2

    def to_dict(self):
        return {"size": self.size, "ways": self.ways}

    def fingerprint(self):
        return _digest({"size": self.size})  # ignores ways


@dataclass(frozen=True)
class BrokenChildParent:
    """Clean itself; the defect sits in a nested child without defaults."""

    width: int = 4
    child: BrokenKeyConfig = field(default_factory=BrokenKeyConfig)

    def to_dict(self):
        return {"width": self.width, "child": self.child.to_dict()}

    def fingerprint(self):
        return _digest(self.to_dict())
