"""Stats-merge fixture: two fields merge() cannot preserve."""

from collections import Counter
from dataclasses import dataclass, field
from typing import List


@dataclass
class SimStats:
    benchmark: str = ""
    retired: int = 0
    ipc: float = 0.0                          # float sums aren't associative
    trace: List[int] = field(default_factory=list)   # no merge rule at all
    opcode_mix: Counter = field(default_factory=Counter)
