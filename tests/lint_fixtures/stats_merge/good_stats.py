"""Stats-merge fixture: every field is losslessly mergeable."""

from collections import Counter
from dataclasses import dataclass, field
from typing import ClassVar


@dataclass
class SimStats:
    SCHEMA_VERSION: ClassVar[int] = 1        # not a dataclass field

    benchmark: str = ""
    retired: int = 0
    cycles: int = 0
    opcode_mix: Counter = field(default_factory=Counter)
