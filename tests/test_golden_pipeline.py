"""Golden end-to-end regression for the stage-decomposed pipeline.

These exact counter values were recorded from the seed (pre-refactor)
monolithic ``Processor`` on the ``SMOKE_BENCHMARKS`` set at scale 0.2.  The
stage refactor is required to be cycle-identical: any drift in these numbers
means the decomposition changed machine behaviour, not just code structure.
"""

import pytest

from repro.core import MachineConfig, simulate
from repro.experiments.runner import SMOKE_BENCHMARKS
from repro.integration.config import IntegrationConfig
from repro.workloads import build_workload

GOLDEN_SCALE = 0.2

#: Seed-recorded counters: (benchmark, integration config) -> stats.
GOLDEN = {
    ("gzip", "full"): dict(cycles=5315, retired=7774, fetched=8376,
                           issued=7316, integrated_direct=485,
                           integrated_reverse=47, mis_integrations=2,
                           squashed=524),
    ("crafty", "full"): dict(cycles=8455, retired=11812, fetched=13516,
                             issued=10207, integrated_direct=1385,
                             integrated_reverse=483, mis_integrations=5,
                             squashed=1609),
    ("mcf", "full"): dict(cycles=5328, retired=6888, fetched=7784,
                          issued=6842, integrated_direct=135,
                          integrated_reverse=20, mis_integrations=4,
                          squashed=793),
    ("gzip", "none"): dict(cycles=5361, retired=7774, fetched=8230,
                           issued=7825, integrated_direct=0,
                           integrated_reverse=0, mis_integrations=0,
                           squashed=378),
    ("crafty", "none"): dict(cycles=8619, retired=11812, fetched=13247,
                             issued=12092, integrated_direct=0,
                             integrated_reverse=0, mis_integrations=0,
                             squashed=1344),
    ("mcf", "none"): dict(cycles=5317, retired=6888, fetched=7578,
                          issued=6945, integrated_direct=0,
                          integrated_reverse=0, mis_integrations=0,
                          squashed=593),
}

CONFIGS = {
    "full": IntegrationConfig.full(),
    "none": IntegrationConfig.disabled(),
}


def test_golden_covers_smoke_benchmarks():
    assert {bench for bench, _ in GOLDEN} == set(SMOKE_BENCHMARKS)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("bench_name", sorted(SMOKE_BENCHMARKS))
def test_stage_pipeline_matches_seed_goldens(bench_name, config_name):
    """The refactored Processor is cycle-identical to the seed monolith."""
    config = MachineConfig().with_integration(CONFIGS[config_name])
    program = build_workload(bench_name, scale=GOLDEN_SCALE)
    stats = simulate(program, config, name=bench_name)
    expected = GOLDEN[(bench_name, config_name)]
    observed = {name: getattr(stats, name) for name in expected}
    assert observed == expected


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("bench_name", sorted(SMOKE_BENCHMARKS))
def test_run_suite_baseline_variant_matches_seed_goldens(bench_name,
                                                         config_name):
    """``run_suite(variant="baseline")`` is the same bit-exact machine: the
    builder/variant subsystem must not perturb the default path (PR-4
    acceptance criterion)."""
    from repro.experiments import runner

    config = MachineConfig().with_integration(CONFIGS[config_name])
    results = runner.run_suite([bench_name], {config_name: config},
                               scale=GOLDEN_SCALE, jobs=1, shards=1,
                               use_cache=False, variant="baseline")
    stats = results[config_name][bench_name]
    expected = GOLDEN[(bench_name, config_name)]
    observed = {name: getattr(stats, name) for name in expected}
    assert observed == expected


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("bench_name", sorted(SMOKE_BENCHMARKS))
def test_shards1_engine_matches_seed_goldens(bench_name, config_name):
    """``shards=1`` through the experiment engine is the same bit-exact
    machine: the checkpointed-slice subsystem must not perturb the default
    path (PR-3 acceptance criterion)."""
    from repro.experiments import runner

    config = MachineConfig().with_integration(CONFIGS[config_name])
    results = runner.run_suite([bench_name], {config_name: config},
                               scale=GOLDEN_SCALE, jobs=1, shards=1,
                               use_cache=False)
    stats = results[config_name][bench_name]
    expected = GOLDEN[(bench_name, config_name)]
    observed = {name: getattr(stats, name) for name in expected}
    assert observed == expected
