"""Matplotlib-gated figure rendering.

The heavy rendering test runs only where matplotlib is installed
(``pytest.importorskip``); the gating behaviour -- a one-line
:class:`SystemExit` instead of an ImportError traceback -- is asserted
everywhere, in whichever direction matches the environment.
"""

import pytest

from repro.analysis import plots
from repro.experiments import cache as cache_mod
from repro.experiments import runner


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path / "cache"))
    monkeypatch.setattr(runner, "_DISK_CACHE", None)
    runner._MEMORY_CACHE.clear()
    runner.telemetry.reset()
    yield tmp_path
    runner._MEMORY_CACHE.clear()
    monkeypatch.setattr(runner, "_DISK_CACHE", None)


class TestGating:
    def test_missing_dependency_error_is_one_line_system_exit(self):
        err = plots.MissingDependencyError("matplotlib", "--plot-dir")
        assert isinstance(err, SystemExit)
        assert "matplotlib" in str(err)
        assert "\n" not in str(err)

    def test_pyplot_gate_matches_environment(self):
        if plots.matplotlib_available():
            assert plots._pyplot() is not None
        else:
            with pytest.raises(plots.MissingDependencyError):
                plots._pyplot()

    def test_render_unknown_figure_is_none(self):
        assert plots.render("diagnostics", object(), "/tmp/nowhere") is None

    @pytest.mark.skipif(plots.matplotlib_available(),
                        reason="matplotlib installed: gate cannot trip")
    def test_cli_plot_dir_fails_with_one_liner(self, tmp_path):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["figures", "--figures", "4", "--benchmarks", "gzip",
                  "--scale", "0.1", "--plot-dir", str(tmp_path)])
        assert "matplotlib" in str(excinfo.value)


class TestRendering:
    def test_figure_panels_render_from_cached_stats(self, isolated_cache,
                                                    tmp_path):
        """Render every panel from one small sweep; on a warm cache this
        performs zero additional simulations."""
        pytest.importorskip("matplotlib")
        from repro.experiments import figure4, figure5, figure6, figure7
        from repro.experiments import scenario_matrix

        benchmarks = ["gzip"]
        outdir = tmp_path / "plots"
        rendered = []
        for name, module in (("4", figure4), ("5", figure5),
                             ("6", figure6), ("7", figure7)):
            result = module.run(benchmarks=benchmarks, scale=0.1, jobs=1)
            rendered.append(plots.render(name, result, outdir))
        result = scenario_matrix.run(benchmarks=benchmarks, scale=0.1,
                                     jobs=1)
        rendered.append(plots.render("scenarios", result, outdir))
        for path in rendered:
            assert path is not None and path.is_file()
            assert path.stat().st_size > 0
        # Everything needed is now cached: re-rendering simulates nothing.
        runner.telemetry.reset()
        runner._MEMORY_CACHE.clear()
        result = figure4.run(benchmarks=benchmarks, scale=0.1, jobs=1)
        assert runner.telemetry.simulations == 0
        assert plots.render("4", result, outdir).is_file()
