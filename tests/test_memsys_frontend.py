"""Unit tests for the memory hierarchy and the branch-prediction front end."""

import pytest

from repro.frontend import (
    BimodalPredictor,
    BranchPredictor,
    BranchPredictorConfig,
    BranchTargetBuffer,
    GSharePredictor,
    HybridPredictor,
    ReturnAddressStack,
)
from repro.isa import Opcode, StaticInst
from repro.memsys import (
    Cache,
    CacheConfig,
    MemoryHierarchy,
    MemSysConfig,
    TLB,
    TLBConfig,
)


def small_cache(**overrides):
    params = dict(name="test", size_bytes=1024, line_bytes=32,
                  associativity=2, hit_latency=2)
    params.update(overrides)
    return Cache(CacheConfig(**params))


class TestCache:
    def test_miss_then_hit(self):
        cache = small_cache()
        latency, hit = cache.access(0x100, cycle=0, fill_latency=50)
        assert not hit and latency == 52
        latency, hit = cache.access(0x104, cycle=60)      # same line
        assert hit and latency == 2

    def test_lru_eviction(self):
        cache = small_cache(size_bytes=64, line_bytes=32, associativity=2)
        # one set of two ways
        cache.access(0x000, 0)
        cache.access(0x020, 1)
        cache.access(0x000, 2)               # touch line 0
        cache.access(0x040, 3)               # evicts line at 0x020 (LRU)
        assert cache.probe(0x000)
        assert not cache.probe(0x020)
        assert cache.stats.evictions == 1

    def test_mshr_merge(self):
        cache = small_cache()
        first_latency, _ = cache.access(0x200, cycle=0, fill_latency=80)
        latency, _ = cache.access(0x208, cycle=10, fill_latency=80)
        # Merged into the in-flight fill: waits only for the remainder.
        assert latency == first_latency - 10
        assert cache.stats.mshr_merges == 1

    def test_writeback_counted(self):
        cache = small_cache(size_bytes=64, line_bytes=32, associativity=1)
        cache.access(0x000, 0, is_write=True)
        cache.access(0x040, 1)               # evicts dirty line
        assert cache.stats.writebacks == 1

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig("bad", size_bytes=16, line_bytes=32,
                        associativity=2, hit_latency=1).num_sets


class TestTLB:
    def test_miss_penalty_then_hit(self):
        tlb = TLB(TLBConfig("dtlb", entries=8, associativity=2,
                            miss_latency=30))
        latency, hit = tlb.access(0x10000, 0)
        assert not hit and latency == 30
        latency, hit = tlb.access(0x10008, 1)
        assert hit and latency == 0

    def test_capacity_eviction(self):
        tlb = TLB(TLBConfig("dtlb", entries=2, associativity=2,
                            page_bytes=4096))
        for page in range(3):
            tlb.access(page * 4096, page)
        assert tlb.stats.misses == 3
        # The least recently used page was evicted.
        _, hit = tlb.access(0, 10)
        assert not hit


class TestHierarchy:
    def test_load_latency_composition(self):
        mem = MemoryHierarchy(MemSysConfig())
        cold = mem.load(0x5000, 0)
        assert not cold.l1_hit
        warm = mem.load(0x5000, 200)
        assert warm.l1_hit
        assert warm.latency < cold.latency
        assert warm.latency >= mem.config.dl1.hit_latency

    def test_ifetch_uses_icache(self):
        mem = MemoryHierarchy(MemSysConfig())
        cold = mem.ifetch(0x0, 0)
        warm = mem.ifetch(0x4, 10)
        assert warm.latency <= cold.latency

    def test_write_buffer_fills_and_drains(self):
        cfg = MemSysConfig(write_buffer_entries=2)
        mem = MemoryHierarchy(cfg)
        assert mem.store(0x100, 0) == (0, True)
        assert mem.store(0x200, 0) == (0, True)
        stall, accepted = mem.store(0x300, 0)
        assert not accepted and stall >= 1
        # After the earlier stores drain, new stores are accepted again.
        stall, accepted = mem.store(0x300, 1000)
        assert accepted


def branch(pc, target):
    return StaticInst(pc=pc, op=Opcode.BNE, ra=1, imm=target - pc - 4,
                      target=target)


class TestDirectionPredictors:
    def test_bimodal_learns_direction(self):
        predictor = BimodalPredictor(64)
        for _ in range(4):
            predictor.update(0x40, True)
        assert predictor.predict(0x40)
        for _ in range(4):
            predictor.update(0x40, False)
        assert not predictor.predict(0x40)

    def test_gshare_distinguishes_histories(self):
        predictor = GSharePredictor(256, history_bits=8)
        # Same PC, alternating behaviour correlated with history.
        for _ in range(32):
            predictor.update(0x80, 0b1010, True)
            predictor.update(0x80, 0b0101, False)
        assert predictor.predict(0x80, 0b1010)
        assert not predictor.predict(0x80, 0b0101)

    def test_hybrid_chooser_prefers_better_component(self):
        config = BranchPredictorConfig(bimodal_entries=64, gshare_entries=64,
                                       chooser_entries=64, history_bits=6)
        hybrid = HybridPredictor(config)
        for _ in range(32):
            hybrid.update(0x10, 0b111, True)
        assert hybrid.predict(0x10, 0b111)


class TestBTBAndRAS:
    def test_btb_lookup(self):
        btb = BranchTargetBuffer(16)
        assert btb.lookup(0x40) is None
        btb.update(0x40, 0x1000)
        assert btb.lookup(0x40) == 0x1000

    def test_ras_push_pop_and_depth(self):
        ras = ReturnAddressStack(4)
        assert ras.depth == 0
        ras.push(0x10)
        ras.push(0x20)
        assert ras.depth == 2
        assert ras.pop() == 0x20
        assert ras.pop() == 0x10
        assert ras.pop() is None

    def test_ras_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(1)
        ras.push(2)
        ras.push(3)
        assert ras.depth == 2
        assert ras.pop() == 3
        assert ras.pop() == 2


class TestBranchPredictorUnit:
    def test_conditional_prediction_and_resolution(self):
        bp = BranchPredictor(BranchPredictorConfig())
        inst = branch(0x100, 0x80)
        pred = bp.predict(inst)
        mispredicted = bp.resolve(inst, pred, taken=not pred.taken,
                                  target=0x80 if not pred.taken else 0x104)
        assert mispredicted
        assert bp.stats.cond_mispredictions == 1

    def test_call_and_return_use_ras(self):
        bp = BranchPredictor()
        call = StaticInst(pc=0x200, op=Opcode.BSR, rd=26, target=0x400,
                          imm=0x400 - 0x204)
        bp.predict(call)
        assert bp.call_depth == 1
        ret = StaticInst(pc=0x440, op=Opcode.RET, ra=26)
        pred = bp.predict(ret)
        assert pred.target == 0x204
        assert bp.call_depth == 0

    def test_snapshot_restore(self):
        bp = BranchPredictor()
        call = StaticInst(pc=0x200, op=Opcode.BSR, rd=26, target=0x400,
                          imm=0x1FC)
        snap = bp.snapshot()
        bp.predict(call)
        assert bp.call_depth == 1
        bp.restore(snap)
        assert bp.call_depth == 0

    def test_indirect_call_uses_btb_after_training(self):
        bp = BranchPredictor()
        jsr = StaticInst(pc=0x300, op=Opcode.JSR, rd=26, ra=27)
        pred = bp.predict(jsr)
        assert pred.target == 0x304            # no BTB entry yet: fallthrough
        bp.resolve(jsr, pred, True, 0x900)
        pred2 = bp.predict(jsr)
        assert pred2.target == 0x900
