"""Unit tests for the integration machinery: the integration table, the
LISP, and the rename-time integration logic (paper Section 2)."""

import pytest

from repro.integration import (
    IndexScheme,
    IntegrationConfig,
    IntegrationLogic,
    IntegrationTable,
    ITEntry,
    LispMode,
    LoadIntegrationSuppressionPredictor,
)
from repro.isa import Opcode, StaticInst
from repro.isa.instruction import DynInst
from repro.isa.registers import REG_SP
from repro.rename import PhysicalRegisterFile


def entry(opcode=Opcode.ADDQI, imm=1, pc=0x100, in1=5, gen1=0, out=9,
          out_gen=0, **kwargs):
    return ITEntry(pc=pc, opcode=opcode, imm=imm, in1=in1, gen1=gen1,
                   in2=None, gen2=0, out=out, out_gen=out_gen, **kwargs)


class TestIntegrationTable:
    def test_insert_and_lookup_opcode_scheme(self):
        table = IntegrationTable(64, 4, IndexScheme.OPCODE_IMM_CALLDEPTH)
        e = entry()
        table.insert(e, call_depth=2)
        found = table.lookup(0x999, Opcode.ADDQI, 1, call_depth=2)
        assert e in found

    def test_pc_scheme_requires_same_pc(self):
        table = IntegrationTable(64, 4, IndexScheme.PC)
        e = entry(pc=0x100)
        table.insert(e, call_depth=0)
        assert table.lookup(0x100, Opcode.ADDQI, 1, 0) == [e]
        assert table.lookup(0x104, Opcode.ADDQI, 1, 0) == []

    def test_opcode_scheme_matches_across_pcs(self):
        table = IntegrationTable(64, 4, IndexScheme.OPCODE_IMM)
        e = entry(pc=0x100)
        table.insert(e, call_depth=0)
        assert table.lookup(0x2000, Opcode.ADDQI, 1, 0) == [e]
        # Different immediate: different tag.
        assert table.lookup(0x2000, Opcode.ADDQI, 2, 0) == []

    def test_call_depth_changes_index_but_not_tag(self):
        table = IntegrationTable(64, 4, IndexScheme.OPCODE_IMM_CALLDEPTH)
        e = entry()
        table.insert(e, call_depth=3)
        # Lookup at the same depth finds it; at another depth it may land in
        # a different set (and therefore not be found).
        assert e in table.lookup(0x0, Opcode.ADDQI, 1, 3)
        other = table.lookup(0x0, Opcode.ADDQI, 1, 4)
        assert e not in other

    def test_lru_replacement_within_set(self):
        table = IntegrationTable(8, 2, IndexScheme.PC)
        # PCs 0x0, 0x10, 0x20 all map to set 0 (4 sets, pc/4 % 4).
        first = entry(pc=0x00)
        second = entry(pc=0x10)
        table.insert(first, 0)
        table.insert(second, 0)
        table.touch(first)                    # make `second` the LRU entry
        third = entry(pc=0x20)
        table.insert(third, 0)
        assert table.lookup(0x00, Opcode.ADDQI, 1, 0) == [first]
        assert table.lookup(0x10, Opcode.ADDQI, 1, 0) == []
        assert table.stats.evictions == 1

    def test_fully_associative(self):
        table = IntegrationTable(16, 0, IndexScheme.OPCODE_IMM)
        assert table.num_sets == 1
        for i in range(16):
            table.insert(entry(imm=i, pc=i * 4), 0)
        assert table.occupancy() == 16
        table.insert(entry(imm=99, pc=0x999), 0)
        assert table.occupancy() == 16        # LRU victim replaced

    def test_inputs_match_requires_generations(self):
        e = entry(in1=5, gen1=2)
        assert e.inputs_match([5], [2])
        assert not e.inputs_match([5], [3])
        assert not e.inputs_match([6], [2])

    def test_invalidate_output(self):
        table = IntegrationTable(16, 4, IndexScheme.OPCODE_IMM)
        table.insert(entry(out=7), 0)
        table.insert(entry(imm=2, out=8), 0)
        assert table.invalidate_output(7) == 1
        assert table.occupancy() == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            IntegrationTable(10, 4)
        with pytest.raises(ValueError):
            IntegrationTable(0, 1)


class TestLisp:
    def test_suppression_after_training(self):
        lisp = LoadIntegrationSuppressionPredictor(entries=64, assoc=2)
        assert not lisp.suppresses(0x40)
        lisp.train(0x40)
        assert lisp.suppresses(0x40)
        assert lisp.stats.suppressions == 1

    def test_capacity_is_bounded(self):
        lisp = LoadIntegrationSuppressionPredictor(entries=2, assoc=2)
        lisp.train(0x0)
        lisp.train(0x8)
        lisp.train(0x10)                       # evicts the LRU PC
        suppressed = [pc for pc in (0x0, 0x8, 0x10) if lisp.suppresses(pc)]
        assert len(suppressed) == 2


def make_logic(config=None, num_pregs=128):
    config = config or IntegrationConfig.full()
    prf = PhysicalRegisterFile(num_pregs=num_pregs,
                               gen_bits=config.generation_bits,
                               refcount_bits=config.refcount_bits)
    return IntegrationLogic(config, prf), prf


def dyn_addqi(seq, pc, rd, ra, imm, src_preg, src_gen=None, prf=None):
    dyn = DynInst(seq, StaticInst(pc=pc, op=Opcode.ADDQI, rd=rd, ra=ra,
                                  imm=imm))
    dyn.src_pregs = [src_preg]
    dyn.src_gens = [prf.gen[src_preg] if src_gen is None else src_gen]
    return dyn


class TestIntegrationLogic:
    def test_direct_integration_round_trip(self):
        logic, prf = make_logic()
        producer_out = prf.allocate()
        src = prf.allocate()
        producer = dyn_addqi(1, 0x100, rd=1, ra=2, imm=4, src_preg=src,
                             prf=prf)
        producer.dest_preg = producer_out
        producer.dest_gen = prf.gen[producer_out]
        logic.create_entries(producer, call_depth=0)

        consumer = dyn_addqi(2, 0x200, rd=3, ra=2, imm=4, src_preg=src,
                             prf=prf)
        decision = logic.consider(consumer, call_depth=0)
        assert decision.integrate
        assert decision.entry.out == producer_out

    def test_generation_mismatch_blocks_stale_entry(self):
        logic, prf = make_logic()
        out = prf.allocate()
        src = prf.allocate()
        producer = dyn_addqi(1, 0x100, rd=1, ra=2, imm=4, src_preg=src,
                             prf=prf)
        producer.dest_preg = out
        producer.dest_gen = prf.gen[out]
        logic.create_entries(producer, call_depth=0)
        # Reallocate the source register: its generation changes, so the
        # stale entry must not match a new instruction using the new mapping.
        prf.set_value(src, 1)
        prf.release(src)
        while True:
            reallocated = prf.allocate()
            if reallocated == src:
                break
            prf.release(reallocated)
        consumer = dyn_addqi(2, 0x200, rd=3, ra=2, imm=4, src_preg=src,
                             prf=prf)
        decision = logic.consider(consumer, call_depth=0)
        assert not decision.integrate

    def test_squash_only_mode_rejects_active_registers(self):
        config = IntegrationConfig.squash()
        logic, prf = make_logic(config)
        out = prf.allocate()             # active (refcount 1)
        prf.set_value(out, 5)
        src = prf.allocate()
        producer = DynInst(1, StaticInst(pc=0x50, op=Opcode.ADDQI, rd=1,
                                         ra=2, imm=4))
        producer.src_pregs, producer.src_gens = [src], [prf.gen[src]]
        producer.dest_preg, producer.dest_gen = out, prf.gen[out]
        logic.create_entries(producer, call_depth=0)
        consumer = DynInst(2, StaticInst(pc=0x50, op=Opcode.ADDQI, rd=1,
                                         ra=2, imm=4))
        consumer.src_pregs, consumer.src_gens = [src], [prf.gen[src]]
        assert not logic.consider(consumer, call_depth=0).integrate
        # After the register is freed by a squash it becomes eligible.
        prf.release(out, via_squash=True)
        assert logic.consider(consumer, call_depth=0).integrate

    def test_lisp_suppresses_load_integration(self):
        logic, prf = make_logic(IntegrationConfig.full())
        base = prf.allocate()
        data = prf.allocate()
        prf.set_value(data, 7)
        store = DynInst(1, StaticInst(pc=0x10, op=Opcode.STQ, ra=4, rb=REG_SP,
                                      imm=8))
        store.src_pregs = [data, base]
        store.src_gens = [prf.gen[data], prf.gen[base]]
        logic.create_entries(store, call_depth=1)

        load = DynInst(2, StaticInst(pc=0x40, op=Opcode.LDQ, rd=5, ra=REG_SP,
                                     imm=8))
        load.src_pregs, load.src_gens = [base], [prf.gen[base]]
        decision = logic.consider(load, call_depth=1)
        assert decision.integrate and decision.is_reverse

        logic.train_lisp(0x40)
        suppressed = logic.consider(load, call_depth=1)
        assert not suppressed.integrate
        assert suppressed.suppressed_by_lisp

    def test_store_reverse_entry_requires_sp_base_by_default(self):
        logic, prf = make_logic(IntegrationConfig.full())
        data = prf.allocate()
        base = prf.allocate()
        store = DynInst(1, StaticInst(pc=0x10, op=Opcode.STQ, ra=4, rb=3,
                                      imm=8))
        store.src_pregs, store.src_gens = [data, base], [prf.gen[data],
                                                         prf.gen[base]]
        logic.create_entries(store, call_depth=0)
        assert logic.table.occupancy() == 0
        # With reverse_sp_only disabled, the entry is created.
        logic2, prf2 = make_logic(IntegrationConfig.full(reverse_sp_only=False))
        data2, base2 = prf2.allocate(), prf2.allocate()
        store2 = DynInst(1, StaticInst(pc=0x10, op=Opcode.STQ, ra=4, rb=3,
                                       imm=8))
        store2.src_pregs = [data2, base2]
        store2.src_gens = [prf2.gen[data2], prf2.gen[base2]]
        logic2.create_entries(store2, call_depth=0)
        assert logic2.table.occupancy() == 1

    def test_sp_adjust_creates_inverse_entry(self):
        logic, prf = make_logic()
        old_sp = prf.allocate()
        new_sp = prf.allocate()
        dec = DynInst(1, StaticInst(pc=0x20, op=Opcode.LDA, rd=REG_SP,
                                    ra=REG_SP, imm=-32))
        dec.src_pregs, dec.src_gens = [old_sp], [prf.gen[old_sp]]
        dec.dest_preg, dec.dest_gen = new_sp, prf.gen[new_sp]
        logic.create_entries(dec, call_depth=1)
        # The inverse increment (lda sp, 32(sp)) applied to the *new* sp
        # must integrate back to the old sp register.
        inc = DynInst(2, StaticInst(pc=0x90, op=Opcode.LDA, rd=REG_SP,
                                    ra=REG_SP, imm=32))
        inc.src_pregs, inc.src_gens = [new_sp], [prf.gen[new_sp]]
        decision = logic.consider(inc, call_depth=1)
        assert decision.integrate
        assert decision.entry.is_reverse
        assert decision.entry.out == old_sp

    def test_branch_entries_need_resolved_outcome(self):
        logic, prf = make_logic()
        cond = prf.allocate()
        prf.set_value(cond, 0)
        branch = DynInst(1, StaticInst(pc=0x30, op=Opcode.BEQ, ra=1, imm=16,
                                       target=0x50))
        branch.src_pregs, branch.src_gens = [cond], [prf.gen[cond]]
        logic.create_entries(branch, call_depth=0)
        twin = DynInst(2, StaticInst(pc=0x30, op=Opcode.BEQ, ra=1, imm=16,
                                     target=0x50))
        twin.src_pregs, twin.src_gens = [cond], [prf.gen[cond]]
        # Not integrable until the creating branch's outcome is recorded.
        assert not logic.consider(twin, call_depth=0).integrate
        logic.record_branch_outcome(branch, taken=True)
        decision = logic.consider(twin, call_depth=0)
        assert decision.integrate
        assert decision.entry.branch_outcome is True

    def test_disabled_configuration_never_integrates(self):
        logic, prf = make_logic(IntegrationConfig.disabled())
        src = prf.allocate()
        dyn = dyn_addqi(1, 0x0, rd=1, ra=2, imm=3, src_preg=src, prf=prf)
        dyn.dest_preg, dyn.dest_gen = prf.allocate(), 0
        logic.create_entries(dyn, 0)
        assert logic.table.occupancy() == 0
        assert not logic.consider(dyn, 0).integrate


class TestIntegrationConfig:
    def test_presets_match_paper_bars(self):
        squash = IntegrationConfig.squash()
        assert not squash.general_reuse
        assert squash.index_scheme is IndexScheme.PC
        assert not squash.reverse
        general = IntegrationConfig.general()
        assert general.general_reuse and not general.reverse
        opcode = IntegrationConfig.opcode()
        assert opcode.index_scheme is IndexScheme.OPCODE_IMM_CALLDEPTH
        full = IntegrationConfig.full()
        assert full.reverse and full.general_reuse

    def test_describe_mentions_key_features(self):
        text = IntegrationConfig.full().describe()
        assert "reverse" in text
        assert "IT=1024" in text
        assert IntegrationConfig.disabled().describe() == "no-integration"
