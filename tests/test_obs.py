"""The observability layer: tracing, CPI stacks, metrics, dashboard.

Three properties anchor the layer:

* **tracing is truthful** -- the tracer's event counts equal the
  engine's own counters (retire events == ``stats.retired``, squash
  events == ``stats.squashed``) on arbitrary branchy programs, and an
  *active* tracer never changes results (it only forces elision off);
* **the CPI stack is a partition of time** -- every cycle is blamed on
  exactly one bucket, so the stack sums to ``cycles`` and is
  bit-identical across drivers, kernels, elision settings and scheduling
  (pool vs serial, sharded vs not for the same geometry);
* **the metrics registry is the single source of truth** -- the run
  telemetry proxy, the worker mirror and the dashboard all render from
  it, and the sliding-window rate is a pure function of the snapshots.
"""

import json
import os
from contextlib import contextmanager

from hypothesis import HealthCheck, given, settings, strategies as st
import pytest

from repro.core import MachineConfig, SimStats, simulate
from repro.distrib.queue import JobQueue
from repro.integration.config import IntegrationConfig
from repro.isa import ProgramBuilder
from repro.obs.cpi import CPI_BUCKETS, CPI_RETIRED, classify_stall
from repro.obs.metrics import (
    MetricsRegistry,
    format_run_summary,
    sliding_rate,
)
from repro.obs.trace import PipelineTracer, default_trace_prefix
from repro.workloads import build_workload

FULL = MachineConfig().with_integration(IntegrationConfig.full())


@contextmanager
def _env(**overrides):
    """Set/unset environment variables for one run (hypothesis-safe)."""
    saved = {key: os.environ.get(key) for key in overrides}
    try:
        for key, value in overrides.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        yield
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@st.composite
def branchy_programs(draw):
    """Small random programs with real mispredictions and memory traffic."""
    builder = ProgramBuilder(name="obs-branchy")
    regs = ["t0", "t1", "t2", "s0"]
    builder.label("main")
    for reg in regs:
        builder.li(reg, draw(st.integers(min_value=0, max_value=63)))
    blocks = draw(st.integers(min_value=2, max_value=4))
    for block in range(blocks):
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            kind = draw(st.integers(min_value=0, max_value=2))
            rd = draw(st.sampled_from(regs))
            ra = draw(st.sampled_from(regs))
            if kind == 0:
                builder.rr(draw(st.sampled_from(["addq", "xor", "cmplt"])),
                           rd, ra, draw(st.sampled_from(regs)))
            elif kind == 1:
                offset = 8 * draw(st.integers(min_value=0, max_value=3))
                builder.stq(ra, offset, "gp")
            else:
                offset = 8 * draw(st.integers(min_value=0, max_value=3))
                builder.load("ldq", rd, offset, "gp")
        builder.cbr(draw(st.sampled_from(["beq", "bne"])),
                    draw(st.sampled_from(regs)), f"join{block}")
        builder.ri("addqi", draw(st.sampled_from(regs)),
                   draw(st.sampled_from(regs)), 1)
        builder.label(f"join{block}")
    builder.mov("a0", "t0")
    builder.syscall(0)
    return builder.build(entry="main")


# ----------------------------------------------------------------------
# Level 1: pipeline event tracing
# ----------------------------------------------------------------------
class TestTracing:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=branchy_programs())
    def test_event_counts_match_engine_counters(self, program):
        tracer = PipelineTracer(collect=True)
        stats = simulate(program, FULL, name="obs-rand", tracer=tracer)
        tracer.close()
        assert tracer.retires == stats.retired
        assert tracer.squashes == stats.squashed
        assert tracer.fetches == stats.fetched
        assert tracer.issues == stats.issued

    def test_tracing_never_changes_results(self):
        """An active tracer forces elision off; everything else is
        bit-identical to the untraced run."""
        program = build_workload("gzip", scale=0.05)
        with _env(REPRO_ELIDE=None, REPRO_FAST_PATH=None):
            plain = simulate(program, FULL, name="obs-plain")
            tracer = PipelineTracer(collect=False)
            traced = simulate(program, FULL, name="obs-plain",
                              tracer=tracer)
            tracer.close()
        assert traced.cycles_elided == 0
        da, db = plain.to_dict(), traced.to_dict()
        da.pop("cycles_elided"), db.pop("cycles_elided")
        assert da == db

    def test_retire_and_squash_partition_renamed_instructions(self):
        program = build_workload("mcf", scale=0.05)
        tracer = PipelineTracer(collect=True)
        stats = simulate(program, FULL, name="obs-mcf", tracer=tracer)
        tracer.close()
        assert stats.squashed > 0, "no recovery exercised"
        kinds = {e["event"] for e in tracer.events}
        assert {"fetch", "rename", "dispatch", "issue", "complete",
                "retire", "squash"} <= kinds

    def test_trace_files_jsonl_and_konata(self, tmp_path):
        program = build_workload("gzip", scale=0.05)
        jsonl = tmp_path / "t.jsonl"
        konata = tmp_path / "t.kanata"
        with PipelineTracer(jsonl_path=str(jsonl),
                            konata_path=str(konata)) as tracer:
            stats = simulate(program, FULL, name="obs-files",
                             tracer=tracer)
        events = [json.loads(line)
                  for line in jsonl.read_text().splitlines()]
        assert sum(e["event"] == "retire" for e in events) == stats.retired
        lines = konata.read_text().splitlines()
        assert lines[0] == "Kanata\t0004"
        retired_records = sum(
            line.startswith("R\t") and line.endswith("\t0")
            for line in lines)
        assert retired_records == stats.retired
        flushed_records = sum(
            line.startswith("R\t") and line.endswith("\t1")
            for line in lines)
        # Squashed work plus whatever was in flight when the program
        # halted (close() finalizes it as flushed): every fetched
        # instruction leaves the trace exactly once.
        assert flushed_records >= stats.squashed
        assert retired_records + flushed_records == stats.fetched

    def test_trace_cli_smoke(self, tmp_path, capsys):
        from repro.__main__ import main

        out = tmp_path / "cli"
        rc = main(["trace", "gzip", "--scale", "0.02",
                   "--out", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "retired" in printed
        assert (tmp_path / "cli.jsonl").exists()
        assert (tmp_path / "cli.kanata").exists()

    def test_default_prefix_env(self):
        with _env(REPRO_TRACE="  spool/x  "):
            assert default_trace_prefix() == "spool/x"
        with _env(REPRO_TRACE=None):
            assert default_trace_prefix() == "trace"


# ----------------------------------------------------------------------
# Level 2: CPI stall stacks
# ----------------------------------------------------------------------
class TestCpiStack:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(program=branchy_programs(),
           kernel=st.sampled_from(["py", "compiled"]),
           elide=st.sampled_from(["0", "1"]))
    def test_stack_partitions_cycles(self, program, kernel, elide):
        with _env(REPRO_KERNEL=kernel, REPRO_ELIDE=elide,
                  REPRO_FAST_PATH="1"):
            stats = simulate(program, FULL, name="obs-cpi")
        assert sum(stats.cpi_stack.values()) == stats.cycles
        assert set(stats.cpi_stack) <= set(CPI_BUCKETS)
        assert stats.cpi_stack[CPI_RETIRED] > 0
        assert 0 not in stats.cpi_stack.values(), \
            "zero-valued buckets must stay absent (serialization identity)"

    @pytest.mark.parametrize("kernel", ["py", "compiled"])
    def test_stack_identical_across_drivers_and_elision(self, kernel):
        program = build_workload("mcf", scale=0.05)
        runs = {}
        for fast, elide in (("1", "1"), ("1", "0"), ("0", "0")):
            with _env(REPRO_FAST_PATH=fast, REPRO_ELIDE=elide,
                      REPRO_KERNEL=kernel):
                runs[(fast, elide)] = simulate(program, FULL,
                                               name="obs-axes")
        stacks = {key: dict(stats.cpi_stack)
                  for key, stats in runs.items()}
        assert stacks[("1", "1")] == stacks[("1", "0")] == stacks[("0", "0")]
        assert runs[("1", "1")].cycles_elided > 0, \
            "no span elided; the elision axis is vacuous"

    def test_stack_attributes_recovery_and_memory(self):
        """A squash-heavy run blames recovery; integration converts some
        of it into replay."""
        program = build_workload("crafty", scale=0.05)
        stats = simulate(program, FULL, name="obs-blame")
        assert stats.squashed > 0
        assert stats.cpi_stack.get("squash_recovery", 0) > 0
        assert stats.cpi_stack.get("integration_replay", 0) > 0

    def test_classify_stall_reads_only_quiescent_state(self):
        """classify_stall is pure w.r.t. the machine: calling it twice on
        an idle state returns the same bucket and mutates nothing."""
        from repro.core.pipeline import Processor

        program = build_workload("gzip", scale=0.02)
        proc = Processor(program, FULL)
        for _ in range(50):
            proc.step()
        before = proc.state.stats.to_dict()
        assert classify_stall(proc.state) == classify_stall(proc.state)
        assert proc.state.stats.to_dict() == before

    def test_stack_roundtrips_serialization(self):
        program = build_workload("gzip", scale=0.02)
        stats = simulate(program, FULL, name="obs-ser")
        clone = SimStats.from_dict(json.loads(json.dumps(stats.to_dict())))
        assert clone.cpi_stack == stats.cpi_stack
        assert all(isinstance(key, str) for key in clone.cpi_stack)

    def test_merge_is_lossless(self):
        program = build_workload("gzip", scale=0.02)
        a = simulate(program, FULL, name="obs-merge")
        b = simulate(program, FULL, name="obs-merge")
        merged = SimStats.merge_all([a, b])
        for bucket in CPI_BUCKETS:
            assert merged.cpi_stack.get(bucket, 0) == \
                a.cpi_stack.get(bucket, 0) + b.cpi_stack.get(bucket, 0)

    def test_stack_identical_across_scheduling(self, tmp_path, monkeypatch):
        """Pool scheduling and sharding geometry are cache/driver
        mechanics: the same work yields the same merged stack."""
        from repro.experiments import cache as cache_mod
        from repro.experiments import runner, sharding

        def fresh(tag):
            monkeypatch.setenv(cache_mod.ENV_CACHE_DIR,
                               str(tmp_path / tag))
            monkeypatch.setattr(runner, "_DISK_CACHE", None)
            runner._MEMORY_CACHE.clear()
            sharding.clear_plan_memo()

        fresh("serial")
        serial = runner.run_suite(["gzip"], {"full": FULL}, scale=0.1,
                                  jobs=1, shards=2)["full"]["gzip"]
        fresh("pool")
        pooled = runner.run_suite(["gzip"], {"full": FULL}, scale=0.1,
                                  jobs=2, shards=2)["full"]["gzip"]
        assert dict(serial.cpi_stack) == dict(pooled.cpi_stack)
        assert sum(serial.cpi_stack.values()) == serial.cycles


# ----------------------------------------------------------------------
# Level 3: metrics registry and dashboard
# ----------------------------------------------------------------------
class TestMetrics:
    def test_registry_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a.x")
        reg.inc("a.x", 4)
        reg.set_gauge("a.g", 2.5)
        reg.observe("a.h", 1.0)
        reg.observe("a.h", 3.0)
        assert reg.counter("a.x") == 5
        assert reg.gauge("a.g") == 2.5
        assert reg.histogram("a.h")["mean"] == 2.0
        assert reg.counters("a.") == {"x": 5}
        reg.reset("a.")
        assert reg.counter("a.x") == 0

    def test_run_telemetry_is_registry_backed(self):
        from repro.experiments.runner import RunTelemetry

        reg = MetricsRegistry()
        telemetry = RunTelemetry(registry=reg)
        telemetry.simulations += 3
        telemetry.memory_hits = 2
        assert reg.counter("run.simulations") == 3
        assert telemetry.to_dict()["memory_hits"] == 2
        with pytest.raises(AttributeError):
            telemetry.bogus_counter = 1
        telemetry.reset()
        assert telemetry.simulations == 0

    def test_format_run_summary_headline(self):
        reg = MetricsRegistry()
        reg.set_counter("run.simulations", 4)
        reg.set_counter("run.memory_hits", 1)
        reg.set_counter("run.disk_hits", 2)
        text = format_run_summary(registry=reg)
        # The leading blank line separates the summary from run output.
        assert text.lstrip("\n").startswith("4 simulations")
        assert "1 memory hits" in text and "2 disk hits" in text

    def test_sliding_rate(self):
        snaps = [{"t": 0.0, "jobs_done": 0},
                 {"t": 30.0, "jobs_done": 5},
                 {"t": 60.0, "jobs_done": 20}]
        assert sliding_rate(snaps) == pytest.approx(20.0)
        assert sliding_rate(snaps, window=2) == pytest.approx(30.0)
        assert sliding_rate(snaps[:1]) is None
        assert sliding_rate([]) is None
        # A frozen clock can't produce a rate.
        assert sliding_rate([{"t": 5.0, "jobs_done": 1},
                             {"t": 5.0, "jobs_done": 2}]) is None

    def test_worker_metrics_snapshots_roundtrip(self, tmp_path):
        queue = JobQueue(tmp_path / "q")
        for i in range(40):
            queue.record_worker_metrics("w1", {"t": float(i),
                                               "jobs_done": i})
        snaps = queue.read_worker_metrics("w1", last=8)
        assert len(snaps) == 8
        assert snaps[-1]["jobs_done"] == 39
        assert snaps[-1]["worker"] == "w1"
        # A torn tail line degrades to fewer snapshots, never an error.
        path = queue.root / "workers" / "w1.metrics.jsonl"
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"t": 99, "jobs_do')
        assert queue.read_worker_metrics("w1", last=4)[-1]["t"] == 39.0

    def test_dashboard_renders_sliding_window(self, tmp_path):
        from repro.obs import dashboard

        queue = JobQueue(tmp_path / "q")
        queue.record_worker("w1", {"executed": 6, "cache_hits": 2,
                                   "failed": 0, "started_at": 0.0})
        for i in range(4):
            queue.record_worker_metrics(
                "w1", {"t": 10.0 * i, "jobs_done": 2 * i})
        text = dashboard.render_status(queue, now=60.0)
        assert "pending:  0" in text
        assert "w1" in text and "jobs/min" in text
        assert "12.0/min now" in text     # 6 jobs over 30s of snapshots
        assert "25% hit rate" in text

    def test_watch_bounded_refreshes(self, tmp_path):
        from repro.obs import dashboard

        queue = JobQueue(tmp_path / "q")
        frames = []
        slept = []
        drawn = dashboard.watch(queue, interval=0.5, refreshes=2,
                                out=frames.append, clear=False,
                                sleep=slept.append)
        assert drawn == 2 and len(frames) == 2
        assert slept == [0.5]             # no sleep after the last frame
        assert "repro status --watch" in frames[0]
