"""Unit tests for the renaming substrate: map table, reference-counted
physical register file, and the renamer's allocate/integrate/commit/squash
operations (paper Section 2.2)."""

import pytest

from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import Opcode
from repro.rename import (
    MapTable,
    PhysicalRegisterFile,
    Renamer,
    ZERO_PREG,
)
from repro.rename.physical import PhysRegState


def make_prf(num_pregs=128, **kwargs):
    return PhysicalRegisterFile(num_pregs=num_pregs, **kwargs)


def make_renamer(num_pregs=256):
    prf = make_prf(num_pregs)
    mt = MapTable()
    renamer = Renamer(mt, prf)
    renamer.initialize_from_values([0] * 64)
    return renamer, mt, prf


def addqi(pc, rd, ra, imm):
    return StaticInst(pc=pc, op=Opcode.ADDQI, rd=rd, ra=ra, imm=imm)


class TestPhysicalRegisterFile:
    def test_allocation_sets_refcount_and_generation(self):
        prf = make_prf()
        preg = prf.allocate()
        assert preg is not None and preg != ZERO_PREG
        assert prf.refcount[preg] == 1
        assert prf.state_of(preg) is PhysRegState.ACTIVE
        gen_before = prf.gen[preg]
        prf.release(preg)
        preg2 = None
        # Reallocate until the same register comes back around (FIFO order).
        for _ in range(prf.num_pregs):
            preg2 = prf.allocate()
            if preg2 == preg:
                break
            prf.release(preg2)
        assert preg2 == preg
        assert prf.gen[preg] == (gen_before + 1) & prf.gen_mask

    def test_zero_register_is_never_allocated(self):
        prf = make_prf()
        seen = set()
        for _ in range(prf.num_pregs - 1):
            preg = prf.allocate()
            assert preg != ZERO_PREG
            seen.add(preg)
        assert ZERO_PREG not in seen

    def test_release_to_eligible_state_when_value_ready(self):
        prf = make_prf()
        preg = prf.allocate()
        prf.set_value(preg, 42)
        prf.release(preg)
        assert prf.state_of(preg) is PhysRegState.ELIGIBLE
        assert prf.integration_eligible(preg, prf.gen[preg])

    def test_release_to_free_state_when_value_not_ready(self):
        """A squashed, never-executed register must become 0/F so that it is
        not integration eligible (deadlock avoidance)."""
        prf = make_prf()
        preg = prf.allocate()
        prf.release(preg, via_squash=True)
        assert prf.state_of(preg) is PhysRegState.FREE
        assert not prf.integration_eligible(preg, prf.gen[preg])

    def test_refcount_saturation_fails_add_ref(self):
        prf = make_prf(refcount_bits=2)
        preg = prf.allocate()
        for _ in range(prf.max_refcount - 1):
            assert prf.add_ref(preg)
        assert not prf.add_ref(preg)
        assert prf.refcount_saturations == 1

    def test_generation_mismatch_blocks_integration(self):
        prf = make_prf()
        preg = prf.allocate()
        prf.set_value(preg, 7)
        old_gen = prf.gen[preg]
        prf.release(preg)
        # cycle through the free list so preg is reallocated
        for _ in range(prf.num_pregs):
            q = prf.allocate()
            if q == preg:
                break
            prf.release(q)
        assert not prf.integration_eligible(preg, old_gen)

    def test_reference_underflow_raises(self):
        prf = make_prf()
        preg = prf.allocate()
        prf.release(preg)
        with pytest.raises(RuntimeError):
            prf.release(preg)

    def test_squash_only_eligibility(self):
        prf = make_prf()
        squashed = prf.allocate()
        prf.set_value(squashed, 1)
        prf.release(squashed, via_squash=True)
        overwritten = prf.allocate()
        prf.set_value(overwritten, 2)
        prf.release(overwritten, via_squash=False)
        assert prf.integration_eligible(squashed, prf.gen[squashed],
                                        squash_only=True)
        assert not prf.integration_eligible(overwritten, prf.gen[overwritten],
                                            squash_only=True)
        # General reuse accepts both.
        assert prf.integration_eligible(overwritten, prf.gen[overwritten])


class TestRenamer:
    def test_sources_map_to_initial_registers(self):
        renamer, mt, prf = make_renamer()
        dyn = DynInst(1, addqi(0, rd=1, ra=2, imm=5))
        pregs, gens = renamer.lookup_sources(dyn)
        assert pregs == [mt.get(2).preg]
        assert gens == [mt.get(2).gen]

    def test_zero_register_sources_use_zero_preg(self):
        renamer, _, _ = make_renamer()
        dyn = DynInst(1, addqi(0, rd=1, ra=31, imm=5))
        pregs, _ = renamer.lookup_sources(dyn)
        assert pregs == [ZERO_PREG]

    def test_allocate_then_commit_releases_shadowed_register(self):
        renamer, mt, prf = make_renamer()
        old = mt.get(1).preg
        dyn = DynInst(1, addqi(0, rd=1, ra=2, imm=5))
        renamer.lookup_sources(dyn)
        result = renamer.allocate_dest(dyn)
        assert result.allocated
        assert mt.get(1).preg == dyn.dest_preg != old
        assert prf.refcount[old] == 1          # still the shadowed mapping
        renamer.commit(dyn)
        assert prf.refcount[old] == 0          # shadowed mapping released
        assert prf.refcount[dyn.dest_preg] == 1

    def test_squash_restores_previous_mapping(self):
        renamer, mt, prf = make_renamer()
        old = mt.get(1)
        dyn = DynInst(1, addqi(0, rd=1, ra=2, imm=5))
        renamer.lookup_sources(dyn)
        renamer.allocate_dest(dyn)
        new_preg = dyn.dest_preg
        renamer.squash(dyn)
        assert mt.get(1).preg == old.preg
        assert mt.get(1).gen == old.gen
        assert prf.refcount[new_preg] == 0
        # Never executed, so it must be 0/F (not integration eligible).
        assert not prf.integration_eligible(new_preg, prf.gen[new_preg])

    def test_integrate_dest_shares_register(self):
        """Simultaneous sharing: two logical registers mapped to one preg."""
        renamer, mt, prf = make_renamer()
        producer = DynInst(1, addqi(0, rd=1, ra=2, imm=5))
        renamer.lookup_sources(producer)
        renamer.allocate_dest(producer)
        shared = producer.dest_preg
        prf.set_value(shared, 123)

        consumer = DynInst(2, addqi(4, rd=3, ra=2, imm=5))
        renamer.lookup_sources(consumer)
        assert renamer.integrate_dest(consumer, shared, producer.dest_gen)
        assert mt.get(1).preg == shared
        assert mt.get(3).preg == shared
        assert prf.refcount[shared] == 2

    def test_store_and_branch_have_no_destination(self):
        renamer, _, prf = make_renamer()
        store = DynInst(1, StaticInst(pc=0, op=Opcode.STQ, ra=1, rb=30, imm=8))
        branch = DynInst(2, StaticInst(pc=4, op=Opcode.BEQ, ra=1, imm=8,
                                       target=16))
        before = prf.total_references()
        for dyn in (store, branch):
            renamer.lookup_sources(dyn)
            result = renamer.allocate_dest(dyn)
            assert result is not None and not result.allocated
            assert dyn.dest_preg is None
        assert prf.total_references() == before

    def test_allocation_failure_returns_none(self):
        prf = PhysicalRegisterFile(num_pregs=66)
        mt = MapTable()
        renamer = Renamer(mt, prf)
        renamer.initialize_from_values([0] * 64)
        # 66 registers: 1 zero + 63 initial + ... only 2 left unallocated?
        # 64 logical regs, 2 of them zero regs -> 62 allocations, 3 free.
        allocated = []
        while True:
            dyn = DynInst(100 + len(allocated), addqi(0, rd=1, ra=2, imm=1))
            renamer.lookup_sources(dyn)
            result = renamer.allocate_dest(dyn)
            if result is None:
                break
            allocated.append(dyn)
        assert len(allocated) == 3
        assert prf.allocation_failures >= 1


class TestPaperWorkingExample:
    """Walk the reference-counting example of Figure 2 in the paper."""

    def test_figure2_reference_count_transitions(self):
        renamer, mt, prf = make_renamer()
        # Three instructions writing R1, R2, R3 (events 1-6: rename+commit).
        dyns = []
        for i, rd in enumerate((1, 2, 3), start=1):
            dyn = DynInst(i, addqi(4 * i, rd=rd, ra=rd, imm=1))
            renamer.lookup_sources(dyn)
            renamer.allocate_dest(dyn)
            prf.set_value(dyn.dest_preg, i)
            dyns.append(dyn)
        for dyn in dyns:
            renamer.commit(dyn)

        p4 = dyns[0].dest_preg
        p5 = dyns[1].dest_preg
        # Event 7: new instance of the first instruction integrates p4.
        # p4 was shadowed?  No: R1 still maps to p4 -> refcount 1 -> 2.
        it7 = DynInst(4, addqi(4, rd=2, ra=1, imm=1))
        renamer.lookup_sources(it7)
        assert renamer.integrate_dest(it7, p4, prf.gen[p4])
        assert prf.refcount[p4] == 2
        # Event 8: integration of p5 while its retired mapping is live:
        # simultaneous sharing, refcount 1 -> 2.
        it8 = DynInst(5, addqi(8, rd=3, ra=2, imm=1))
        renamer.lookup_sources(it8)
        assert renamer.integrate_dest(it8, p5, prf.gen[p5])
        assert prf.refcount[p5] == 2
        # Squash the second integrating instruction: p5 drops back to 1 and
        # remains integration-eligible (its value was produced).
        renamer.squash(it8)
        assert prf.refcount[p5] == 1
        assert prf.integration_eligible(p5, prf.gen[p5])
