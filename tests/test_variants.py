"""The machine-variant registry and the stage-graph builder.

Covers the PR acceptance criteria:

* the ``baseline`` variant is bit-identical to the seed ``Processor``
  (golden counters, and the builder path is the only path);
* ``no-integration`` reports zero integrations while retiring the same
  architectural state (and matches the integration-disabled goldens
  counter for counter);
* ``oracle-bp`` never retires a mispredicted branch (hypothesis-checked
  across benchmarks and scales);
* variants produce *distinct* content-addressed cache keys at every level
  (result, slice, merged) while the baseline fingerprint is byte-identical
  to the pre-variant one, so old cache entries still resolve;
* every non-baseline variant runs end-to-end through ``run_suite`` --
  sharded and unsharded -- and appears in the scenario-matrix report.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MachineConfig, Processor, SimStats, simulate
from repro.core.builder import SLOT_NAMES, MachineBuilder
from repro.experiments import cache as cache_mod
from repro.experiments import runner, scenario_matrix, sharding
from repro.experiments.cache import result_key
from repro.functional.emulator import run_program
from repro.integration.config import IntegrationConfig
from repro.variants import (
    UnknownVariantError,
    describe_variants,
    get_builder,
    variant_names,
)
from repro.workloads import build_workload

from test_golden_pipeline import CONFIGS, GOLDEN, GOLDEN_SCALE

NON_BASELINE = tuple(n for n in variant_names() if n != "baseline")

#: Fingerprint of the default MachineConfig recorded before the variant
#: field existed.  The ``variant`` field is elided from canonical JSON at
#: its default, so this must never change -- it is what keeps every
#: pre-variant disk-cache entry resolvable for the baseline machine.
PRE_VARIANT_FINGERPRINT = "092487416f5e4b1c"


@pytest.fixture()
def isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv(cache_mod.ENV_CACHE_DIR, str(tmp_path))
    monkeypatch.setattr(runner, "_DISK_CACHE", None)
    runner._MEMORY_CACHE.clear()
    sharding.clear_plan_memo()
    runner.telemetry.reset()
    yield tmp_path
    runner._MEMORY_CACHE.clear()
    sharding.clear_plan_memo()
    monkeypatch.setattr(runner, "_DISK_CACHE", None)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_ships_required_variants(self):
        names = variant_names()
        assert names[0] == "baseline"
        for required in ("no-integration", "oracle-bp", "no-cht",
                         "inorder-issue"):
            assert required in names
        assert len(NON_BASELINE) >= 4

    def test_unknown_variant_is_one_line_system_exit(self):
        with pytest.raises(UnknownVariantError) as excinfo:
            get_builder("trace-cache")
        assert isinstance(excinfo.value, SystemExit)
        message = str(excinfo.value)
        assert "trace-cache" in message and "baseline" in message
        assert "\n" not in message

    def test_descriptions_and_overridden_slots(self):
        listing = describe_variants()
        for name, info in listing.items():
            assert info["description"]
            for slot in info["overrides"]:
                assert slot in SLOT_NAMES
        assert listing["baseline"]["overrides"] == ()
        assert listing["oracle-bp"]["overrides"] == ("build_predictor",)
        assert listing["inorder-issue"]["overrides"] == ("build_scheduler",)
        assert listing["no-cht"]["overrides"] == ("build_cht",)
        assert listing["no-integration"]["overrides"] == (
            "build_integration",)

    def test_unknown_variant_fails_before_simulation(self):
        config = MachineConfig().with_variant("not-registered")
        program = build_workload("gzip", scale=0.05)
        with pytest.raises(UnknownVariantError):
            Processor(program, config)
        with pytest.raises(UnknownVariantError):
            runner.run_suite(["gzip"], {"x": MachineConfig()},
                             scale=0.05, variant="not-registered")
        # A bad variant carried *inside* a config must abort in the parent
        # with the same one-line error, never inside a pool worker.
        with pytest.raises(UnknownVariantError):
            runner.run_suite(["gzip"], {"x": config}, scale=0.05, jobs=2,
                             use_cache=False)


# ----------------------------------------------------------------------
# baseline: bit-identical to the seed machine
# ----------------------------------------------------------------------
class TestBaselineGolden:
    @pytest.mark.parametrize("config_name", sorted(CONFIGS))
    @pytest.mark.parametrize("bench_name",
                         sorted({b for b, _ in GOLDEN}))
    def test_explicit_baseline_variant_matches_goldens(self, bench_name,
                                                       config_name):
        config = (MachineConfig()
                  .with_integration(CONFIGS[config_name])
                  .with_variant("baseline"))
        program = build_workload(bench_name, scale=GOLDEN_SCALE)
        stats = simulate(program, config, name=bench_name)
        expected = GOLDEN[(bench_name, config_name)]
        observed = {name: getattr(stats, name) for name in expected}
        assert observed == expected
        assert stats.variant == "baseline"

    def test_explicit_builder_overrides_config_variant(self):
        """Passing a builder wins over config.variant resolution."""
        program = build_workload("gzip", scale=GOLDEN_SCALE)
        config = (MachineConfig()
                  .with_integration(CONFIGS["full"])
                  .with_variant("no-integration"))
        stats = simulate(program, config, name="gzip",
                         builder=MachineBuilder())
        assert stats.integrated > 0   # baseline builder ran, not the stub


# ----------------------------------------------------------------------
# no-integration: the control machine
# ----------------------------------------------------------------------
class TestNoIntegration:
    @pytest.mark.parametrize("bench_name", sorted({b for b, _ in GOLDEN}))
    def test_matches_integration_disabled_goldens(self, bench_name):
        """Stubbing the logic slot is cycle-identical to disabling
        integration in the configuration: the control is trustworthy."""
        config = (MachineConfig()
                  .with_integration(CONFIGS["full"])
                  .with_variant("no-integration"))
        program = build_workload(bench_name, scale=GOLDEN_SCALE)
        stats = simulate(program, config, name=bench_name)
        expected = GOLDEN[(bench_name, "none")]
        observed = {name: getattr(stats, name) for name in expected}
        assert observed == expected

    def test_retires_same_architectural_state(self):
        program = build_workload("crafty", scale=0.15)
        reference = run_program(program)
        proc = Processor(program,
                         MachineConfig().with_variant("no-integration"))
        stats = proc.run()
        assert stats.integrated == 0
        assert stats.mis_integrations == 0
        assert stats.retired == reference.instructions
        assert proc.arch.regs == reference.state.regs
        assert list(proc.arch.output) == reference.output
        assert proc.arch.exit_code == reference.exit_code


# ----------------------------------------------------------------------
# oracle-bp: perfect control speculation
# ----------------------------------------------------------------------
class TestOracleBP:
    @settings(deadline=None, max_examples=8)
    @given(bench=st.sampled_from(sorted({b for b, _ in GOLDEN})),
           scale=st.sampled_from([0.1, 0.15, 0.2]))
    def test_never_retires_a_mispredicted_branch(self, bench, scale):
        """With integration off (no DIVA faults) the oracle front end must
        be perfect at retirement for any benchmark and scale."""
        config = (MachineConfig()
                  .with_integration(IntegrationConfig.disabled())
                  .with_variant("oracle-bp"))
        program = build_workload(bench, scale=scale)
        proc = Processor(program, config)
        stats = proc.run()
        assert stats.retired_mispredicted_branches == 0
        assert stats.retired > 0
        # The same architectural state retires.
        reference = run_program(program)
        assert stats.retired == reference.instructions
        assert proc.arch.regs == reference.state.regs

    def test_with_integration_only_mis_integrations_flush(self):
        """Under full integration the only 'mispredictions' left are
        mis-integrated branches caught by DIVA."""
        config = (MachineConfig()
                  .with_integration(IntegrationConfig.full())
                  .with_variant("oracle-bp"))
        program = build_workload("crafty", scale=GOLDEN_SCALE)
        stats = simulate(program, config, name="crafty")
        assert stats.retired == GOLDEN[("crafty", "full")]["retired"]
        assert (stats.retired_mispredicted_branches
                <= stats.mis_integrations)

    def test_truncated_stream_warns_and_falls_back(self):
        """If the reference-emulation budget runs out before the program
        halts, the oracle must say so loudly, not silently degrade."""
        from repro.frontend.branch_predictor import BranchPredictorConfig
        from repro.variants.oracle_bp import OracleBranchPredictor

        program = build_workload("gzip", scale=0.1)
        predictor = OracleBranchPredictor(BranchPredictorConfig(), program,
                                          max_instructions=0)
        branch = next(inst for inst in program if inst.info.is_branch)
        with pytest.warns(RuntimeWarning, match="truncated"):
            predictor.predict(branch)
        assert predictor.fallback_predictions == 1

    def test_stream_extends_lazily(self):
        """A short detailed run must not emulate the whole program: sliced
        oracle jobs only pay for the fetch window they actually cover."""
        program = build_workload("vortex", scale=0.5)
        total = run_program(program).instructions
        config = (MachineConfig()
                  .with_integration(IntegrationConfig.disabled())
                  .with_variant("oracle-bp"))
        proc = Processor(program, config)
        proc.run(max_instructions=200)
        emulated = proc.predictor._emulated
        assert emulated < total
        assert emulated <= 200 + 4 * 4096   # window + a few lazy chunks

    def test_oracle_is_not_slower_than_baseline(self):
        config = MachineConfig().with_integration(CONFIGS["full"])
        program = build_workload("gzip", scale=GOLDEN_SCALE)
        base = simulate(program, config, name="gzip")
        oracle = simulate(program, config.with_variant("oracle-bp"),
                          name="gzip")
        assert oracle.cycles <= base.cycles


# ----------------------------------------------------------------------
# no-cht and inorder-issue: protocol-reusing variants
# ----------------------------------------------------------------------
class TestNoCHT:
    def test_never_constrains_a_load(self):
        config = MachineConfig().with_variant("no-cht")
        program = build_workload("mcf", scale=GOLDEN_SCALE)
        base = simulate(program, MachineConfig(), name="mcf")
        stats = simulate(program, config, name="mcf")
        assert stats.cht_hits == 0
        assert stats.retired == base.retired
        # Without the filter the machine can only squash more, never less.
        assert stats.memory_order_violations >= base.memory_order_violations
        assert stats.cht_trainings == stats.memory_order_violations


class TestInOrderIssue:
    def test_program_order_issue_is_never_faster(self):
        program = build_workload("crafty", scale=GOLDEN_SCALE)
        base = simulate(program, MachineConfig(), name="crafty")
        stats = simulate(program,
                         MachineConfig().with_variant("inorder-issue"),
                         name="crafty")
        assert stats.retired == base.retired
        assert stats.cycles >= base.cycles

    def test_select_respects_program_order(self):
        """Issue order (by issue cycle) must be monotone in seq for every
        cycle: no younger instruction issues while an older one waits."""
        from repro.variants.inorder import InOrderReservationStations

        rs = InOrderReservationStations(8)

        class FakeDyn:
            def __init__(self, seq, port):
                self.seq = seq
                self.rs_port = port
                self.rs_priority = 0
                self.rs_pending = 0

            @property
            def info(self):
                raise AssertionError("insert path not used in this test")

        # Bypass insert (it reads dyn.info); drive _waiting directly.
        older = FakeDyn(1, "simple")
        younger = FakeDyn(2, "simple")
        rs._waiting = {1: older, 2: younger}
        ready = {2}   # only the younger one is ready
        selected = rs.select(lambda d: d.seq in ready, lambda d: True)
        assert selected == []   # stalled head blocks the ready younger op
        ready.add(1)
        selected = rs.select(lambda d: d.seq in ready, lambda d: True)
        assert [d.seq for d in selected] == [1, 2]


# ----------------------------------------------------------------------
# cache-key discipline across variants
# ----------------------------------------------------------------------
class TestVariantCacheKeys:
    def test_baseline_fingerprint_is_pre_variant_fingerprint(self):
        assert MachineConfig().fingerprint() == PRE_VARIANT_FINGERPRINT
        assert (MachineConfig().with_variant("baseline").fingerprint()
                == PRE_VARIANT_FINGERPRINT)

    def test_variant_elided_from_canonical_dict_at_default(self):
        assert "variant" not in MachineConfig().to_dict()
        assert (MachineConfig().with_variant("oracle-bp").to_dict()["variant"]
                == "oracle-bp")

    def test_pre_variant_config_dict_still_loads(self):
        """A config dict serialized before the variant field existed (no
        'variant' key) deserializes to the baseline variant."""
        payload = MachineConfig().to_dict()
        assert "variant" not in payload
        restored = MachineConfig.from_dict(payload)
        assert restored == MachineConfig()
        assert restored.variant == "baseline"

    def test_pre_variant_simstats_payload_still_loads(self):
        payload = SimStats(benchmark="gzip", config_name="x").to_dict()
        del payload["variant"]   # what a pre-variant cache entry looks like
        restored = SimStats.from_dict(payload)
        assert restored.benchmark == "gzip"
        assert restored.variant == ""

    def test_result_keys_distinct_across_all_variants(self):
        keys = {result_key("gzip", 0.2,
                           MachineConfig().with_variant(name))
                for name in variant_names()}
        assert len(keys) == len(variant_names())
        # ... and the baseline key is exactly the pre-variant key.
        assert result_key("gzip", 0.2, MachineConfig()) in keys

    def test_slice_and_merged_keys_distinct_across_variants(self):
        base = MachineConfig()
        other = base.with_variant("inorder-issue")
        for variant_config in (other,):
            assert (sharding.slice_key("gzip", 0.2, base, 4, 1.0, 0)
                    != sharding.slice_key("gzip", 0.2, variant_config,
                                          4, 1.0, 0))
            assert (sharding.merged_key("gzip", 0.2, base, 4, 1.0)
                    != sharding.merged_key("gzip", 0.2, variant_config,
                                           4, 1.0))

    def test_disk_cache_never_shadows_across_variants(self, isolated_cache):
        """Two variants of the same (benchmark, config): both simulate,
        both cache, both re-resolve to their own numbers."""
        config = MachineConfig()
        base = runner.run_benchmark("gzip", config, scale=0.1)
        inorder = runner.run_benchmark("gzip", config, scale=0.1,
                                       variant="inorder-issue")
        assert runner.telemetry.simulations == 2
        assert base.cycles != inorder.cycles
        runner._MEMORY_CACHE.clear()
        runner.telemetry.reset()
        base2 = runner.run_benchmark("gzip", config, scale=0.1)
        inorder2 = runner.run_benchmark(
            "gzip", config, scale=0.1, variant="inorder-issue")
        assert runner.telemetry.simulations == 0
        assert runner.telemetry.disk_hits == 2
        assert base2 == base
        assert inorder2 == inorder


# ----------------------------------------------------------------------
# end-to-end: run_suite, sharding, scenario matrix
# ----------------------------------------------------------------------
class TestVariantsEndToEnd:
    def test_all_non_baseline_variants_through_sharded_run_suite(
            self, isolated_cache):
        """Every non-baseline variant runs through the sharded engine;
        checkpoint plans are shared, results are variant-specific."""
        configs = {name: MachineConfig().with_variant(name)
                   for name in variant_names()}
        results = runner.run_suite(["gzip"], configs, scale=0.1, jobs=1,
                                   shards=2)
        retired = {results[name]["gzip"].retired
                   for name in variant_names()}
        assert len(retired) == 1        # same architectural stream
        cycles = {name: results[name]["gzip"].cycles
                  for name in variant_names()}
        assert cycles["inorder-issue"] > cycles["baseline"]
        for name in variant_names():
            assert results[name]["gzip"].variant == name

    def test_sharded_equals_unsharded_per_variant(self, isolated_cache):
        """shards=2 with full warm-up stays exact for every variant."""
        for name in ("oracle-bp", "inorder-issue"):
            config = MachineConfig().with_variant(name)
            whole = runner.run_benchmark("gzip", config, scale=0.1,
                                         use_cache=False)
            merged = sharding.run_sharded("gzip", config, scale=0.1,
                                          shards=2)
            assert merged.retired == whole.retired
            assert merged.cycles == whole.cycles
            assert merged.integrated == whole.integrated

    def test_scenario_matrix_covers_registry(self, isolated_cache):
        result = scenario_matrix.run(benchmarks=["gzip"], scale=0.1, jobs=1)
        assert result.variants == list(variant_names())
        text = scenario_matrix.report(result)
        for name in variant_names():
            assert name in text
        assert result.ipc_delta("baseline") == pytest.approx(0.0)
        assert result.mean_misprediction_rate("oracle-bp") == 0.0
        assert result.mean_integration_rate("no-integration") == 0.0
        # Warm rerun must be pure cache replay.
        runner.telemetry.reset()
        runner._MEMORY_CACHE.clear()
        scenario_matrix.run(benchmarks=["gzip"], scale=0.1, jobs=1)
        assert runner.telemetry.simulations == 0


# ----------------------------------------------------------------------
# env + CLI plumbing
# ----------------------------------------------------------------------
class TestVariantEnvAndCli:
    def test_default_variant_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_VARIANT", raising=False)
        assert runner.default_variant() is None

    def test_default_variant_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_VARIANT", "no-cht")
        assert runner.default_variant() == "no-cht"

    def test_default_variant_invalid_is_env_var_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_VARIANT", "warp-drive")
        with pytest.raises(runner.EnvVarError) as excinfo:
            runner.default_variant()
        assert "REPRO_VARIANT" in str(excinfo.value)
        assert "warp-drive" in str(excinfo.value)

    def test_cli_variants_listing(self, capsys):
        from repro.__main__ import main

        assert main(["variants"]) == 0
        out = capsys.readouterr().out
        for name in variant_names():
            assert name in out
        assert "build_predictor" in out

    def test_cli_run_rejects_unknown_variant(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--benchmarks", "gzip", "--variant", "bogus"])
        assert "bogus" in str(excinfo.value)

    def test_cli_run_env_variant(self, isolated_cache, monkeypatch, capsys):
        from repro.__main__ import main

        monkeypatch.setenv("REPRO_VARIANT", "no-integration")
        assert main(["run", "--benchmarks", "gzip", "--scale", "0.1",
                     "--configs", "full"]) == 0
        out = capsys.readouterr().out
        assert "variant: no-integration" in out

    def test_builder_slot_list_is_exhaustive(self):
        """Every build_* method of MachineBuilder is a declared slot."""
        methods = {name for name in dir(MachineBuilder)
                   if name.startswith("build_")}
        assert methods == set(SLOT_NAMES)
