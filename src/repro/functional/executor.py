"""Single-instruction architectural execution.

:func:`execute_step` applies one :class:`StaticInst` to an
:class:`ArchState`.  It is the single source of truth for instruction
behaviour used by the functional emulator and, instruction-by-instruction, by
the DIVA checker stage of the timing core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.functional.state import ArchState
from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass
from repro.isa.program import INST_SIZE
from repro.isa import semantics
from repro.isa.registers import RETURN_VALUE_REG, ARG_REGS

# System-call service codes.
SYS_EXIT = 0
SYS_PUTINT = 1
SYS_BRK = 2


@dataclass(slots=True)
class StepResult:
    """What one architectural step did (used by DIVA and by tests)."""

    inst: StaticInst
    next_pc: int
    dest_value: Optional[object] = None
    eff_addr: Optional[int] = None
    store_value: Optional[object] = None
    taken: Optional[bool] = None
    halted: bool = False


_MASK64 = semantics.MASK64
_MASK32 = semantics.MASK32


def execute_step(state: ArchState, inst: StaticInst) -> StepResult:
    """Execute ``inst`` against ``state`` and advance the PC.

    Dispatches through the per-opcode handlers precomputed on ``OpInfo``
    (the same functions ``semantics.evaluate`` consults) so the per-step
    cost is an attribute read instead of an enum-keyed dict probe.
    """
    info = inst.info
    cls = info.cls
    fallthrough = inst.pc + INST_SIZE
    next_pc = fallthrough
    dest_value = None
    eff_addr = None
    store_value = None
    taken = None
    halted = False

    regs = state.regs
    if info.is_alu:
        a = regs[inst.ra] if inst.ra is not None else 0
        b = regs[inst.rb] if inst.rb is not None else 0
        if info.eval_is_fp:
            dest_value = info.eval_fn(a, b, inst.imm)
        else:
            # Same wrong-path float->int coercion semantics.evaluate applies.
            if type(a) is float:
                a = int(a)
            if type(b) is float:
                b = int(b)
            dest_value = info.eval_fn(a, b, inst.imm)
        state.write_reg(inst.rd, dest_value)
    elif cls is OpClass.LOAD:
        base = regs[inst.ra]
        eff_addr = (int(base) + inst.imm) & _MASK64
        dest_value = state.memory.read(eff_addr)
        if info.is_ldl:
            dest_value = semantics.to_unsigned(
                semantics.to_signed(int(dest_value) & _MASK32, 32))
        state.write_reg(inst.rd, dest_value)
    elif cls is OpClass.STORE:
        data = regs[inst.ra]
        base = regs[inst.rb]
        eff_addr = (int(base) + inst.imm) & _MASK64
        store_value = int(data) & _MASK32 if info.is_stl else data
        state.memory.write(eff_addr, store_value)
    elif cls is OpClass.COND_BRANCH:
        cond = regs[inst.ra]
        taken = info.branch_fn(semantics.to_signed(int(cond)))
        next_pc = inst.target if taken else fallthrough
    elif cls is OpClass.DIRECT_JUMP:
        taken = True
        next_pc = inst.target
    elif cls is OpClass.CALL_DIRECT:
        taken = True
        dest_value = fallthrough
        state.write_reg(inst.rd, dest_value)
        next_pc = inst.target
    elif cls is OpClass.CALL_INDIRECT:
        taken = True
        dest_value = fallthrough
        target = int(state.read_reg(inst.ra))
        state.write_reg(inst.rd, dest_value)
        next_pc = target
    elif cls is OpClass.INDIRECT_JUMP:
        taken = True
        next_pc = int(state.read_reg(inst.ra))
    elif cls is OpClass.RETURN:
        taken = True
        next_pc = int(state.read_reg(inst.ra))
    elif cls is OpClass.SYSCALL:
        halted = _do_syscall(state, inst.imm or 0)
    elif cls is OpClass.NOP:
        pass
    else:  # pragma: no cover - every class is handled above
        raise ValueError(f"unhandled opcode class {cls}")

    state.pc = next_pc
    state.inst_count += 1
    if halted:
        state.halted = True
    return StepResult(inst=inst, next_pc=next_pc, dest_value=dest_value,
                      eff_addr=eff_addr, store_value=store_value,
                      taken=taken, halted=halted)


def _do_syscall(state: ArchState, code: int) -> bool:
    """Execute a system call; returns True if the program halted."""
    if code == SYS_EXIT:
        state.exit_code = int(state.read_reg(ARG_REGS[0]))
        return True
    if code == SYS_PUTINT:
        state.output.append(int(state.read_reg(ARG_REGS[0])))
        return False
    if code == SYS_BRK:
        # Trivial brk: return the requested break in v0.
        state.write_reg(RETURN_VALUE_REG, state.read_reg(ARG_REGS[0]))
        return False
    raise ValueError(f"unknown syscall code {code}")
