"""Architectural machine state: register file, PC, memory and run status."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.functional.memory import SparseMemory
from repro.isa.registers import (
    NUM_LOGICAL_REGS,
    REG_FP_BASE,
    REG_FZERO,
    REG_SP,
    REG_ZERO,
    is_zero_reg,
)

# Default stack placement used when a program does not set one up itself.
DEFAULT_STACK_TOP = 0x0100_0000
DEFAULT_GLOBAL_BASE = 0x0020_0000
DEFAULT_HEAP_BASE = 0x0040_0000


class ArchState:
    """Precise architectural state of the machine.

    Register reads of the hard-wired zero registers always return zero and
    writes to them are discarded, matching the ISA definition.
    """

    def __init__(self, memory: Optional[SparseMemory] = None,
                 pc: int = 0, stack_top: int = DEFAULT_STACK_TOP):
        self.regs: List = [0] * NUM_LOGICAL_REGS
        for i in range(REG_FP_BASE, NUM_LOGICAL_REGS):
            self.regs[i] = 0.0
        self.regs[REG_SP] = stack_top
        self.pc = pc
        self.memory = memory if memory is not None else SparseMemory()
        self.halted = False
        self.exit_code: Optional[int] = None
        self.output: List[int] = []
        self.inst_count = 0

    def read_reg(self, index: int):
        # The zero registers invariantly hold 0 / 0.0 (writes to them are
        # discarded below), so a plain indexed read is correct and avoids a
        # predicate call on the hottest functional path.
        return self.regs[index]

    def write_reg(self, index: int, value) -> None:
        if index == REG_ZERO or index == REG_FZERO:
            return
        self.regs[index] = value

    def copy(self) -> "ArchState":
        """Deep-copy the state (used for checkpointing in tests)."""
        clone = ArchState(memory=self.memory.copy(), pc=self.pc)
        clone.regs = list(self.regs)
        clone.halted = self.halted
        clone.exit_code = self.exit_code
        clone.output = list(self.output)
        clone.inst_count = self.inst_count
        return clone

    # ------------------------------------------------------------------
    # checkpoint serialization
    # ------------------------------------------------------------------
    def to_snapshot(self) -> Dict[str, object]:
        """JSON-ready rendering of the complete architectural state.

        Register values are kept as-is (ints and floats survive a JSON
        round-trip unchanged for this ISA); memory addresses become string
        keys.  The inverse is :meth:`from_snapshot`.
        """
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "halted": self.halted,
            "exit_code": self.exit_code,
            "output": list(self.output),
            "inst_count": self.inst_count,
            "memory": self.memory.to_snapshot(),
        }

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, object]) -> "ArchState":
        """Rebuild precise architectural state from :meth:`to_snapshot`."""
        state = cls(memory=SparseMemory.from_snapshot(snapshot["memory"]),
                    pc=int(snapshot["pc"]))
        state.regs = list(snapshot["regs"])
        state.halted = bool(snapshot["halted"])
        state.exit_code = snapshot["exit_code"]
        state.output = list(snapshot["output"])
        state.inst_count = int(snapshot["inst_count"])
        return state

    def registers_snapshot(self) -> Dict[int, object]:
        """Non-zero architectural register values, for compact comparisons."""
        return {i: v for i, v in enumerate(self.regs)
                if not is_zero_reg(i) and v not in (0, 0.0)}
