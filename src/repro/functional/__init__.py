"""Architectural (functional) execution substrate.

This package provides the in-order, cycle-free reference implementation of
the ISA: a sparse data memory, an architectural register file, a single-step
executor and a run-to-completion emulator.  It is used in three roles:

1. standalone functional simulation (fast correctness checks of workloads),
2. the DIVA checker inside the out-of-order core -- every retiring
   instruction is re-executed in order against precise architectural state,
   which is exactly how the paper detects mis-integrations,
3. the oracle for tests (the timing simulator must retire the same dynamic
   instruction stream and produce the same architectural side effects).
"""

from repro.functional.memory import SparseMemory
from repro.functional.state import ArchState
from repro.functional.executor import StepResult, execute_step
from repro.functional.emulator import (
    Checkpoint,
    Emulator,
    EmulationResult,
    collect_checkpoints,
    fast_forward,
)

__all__ = [
    "SparseMemory",
    "ArchState",
    "StepResult",
    "execute_step",
    "Checkpoint",
    "Emulator",
    "EmulationResult",
    "collect_checkpoints",
    "fast_forward",
]
