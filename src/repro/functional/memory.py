"""Sparse data-memory model.

Data memory is a dictionary keyed by 8-byte-aligned addresses.  Workloads use
aligned quadword/longword accesses, so a word-granularity model is
sufficient; the memory hierarchy in :mod:`repro.memsys` models *timing* only
and never holds values, mirroring SimpleScalar's split between functional and
timing memory.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

WORD_SIZE = 8


class SparseMemory:
    """Word-granularity sparse memory with copy-on-read default of zero."""

    def __init__(self, initial: Optional[Dict[int, int]] = None):
        self._words: Dict[int, int] = {}
        if initial:
            for addr, value in initial.items():
                self.write(addr, value)

    @staticmethod
    def align(addr: int) -> int:
        """Round ``addr`` down to its containing word address."""
        return addr & ~(WORD_SIZE - 1)

    def read(self, addr: int):
        """Read the word containing ``addr`` (0 if never written)."""
        return self._words.get(self.align(addr), 0)

    def write(self, addr: int, value) -> None:
        """Write ``value`` to the word containing ``addr``."""
        self._words[self.align(addr)] = value

    def snapshot(self) -> Dict[int, int]:
        """Return a copy of all written words (for checkpoint/compare)."""
        return dict(self._words)

    def items(self) -> Iterable[Tuple[int, int]]:
        return self._words.items()

    def __len__(self) -> int:
        return len(self._words)

    def __contains__(self, addr: int) -> bool:
        return self.align(addr) in self._words

    def copy(self) -> "SparseMemory":
        mem = SparseMemory()
        mem._words = dict(self._words)
        return mem

    # ------------------------------------------------------------------
    # checkpoint serialization (JSON-safe: addresses become string keys)
    # ------------------------------------------------------------------
    def to_snapshot(self) -> Dict[str, int]:
        """JSON-ready rendering of every written word."""
        return {str(addr): value for addr, value in self._words.items()}

    @classmethod
    def from_snapshot(cls, snapshot: Dict[str, int]) -> "SparseMemory":
        """Rebuild a memory image from :meth:`to_snapshot` output."""
        mem = cls()
        mem._words = {int(addr): value for addr, value in snapshot.items()}
        return mem
