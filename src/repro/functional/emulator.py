"""Run-to-completion functional emulator.

The emulator executes a :class:`~repro.isa.program.Program` in order,
collecting instruction-mix statistics and program output.  It is the
reference against which the timing simulator's retired state is validated in
tests, and it doubles as a quick way to sanity-check synthetic workloads.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.functional.executor import StepResult, execute_step
from repro.functional.memory import SparseMemory
from repro.functional.state import ArchState
from repro.isa.opcodes import OpClass, is_load, is_store
from repro.isa.program import Program


class EmulationLimitExceeded(RuntimeError):
    """Raised when a program does not halt within the instruction budget."""


@dataclass
class EmulationResult:
    """Summary of a functional run."""

    instructions: int
    exit_code: Optional[int]
    output: List[int]
    state: ArchState
    class_counts: Dict[OpClass, int] = field(default_factory=dict)
    load_count: int = 0
    store_count: int = 0
    branch_count: int = 0
    call_count: int = 0

    @property
    def halted(self) -> bool:
        return self.state.halted


class Emulator:
    """In-order architectural executor for whole programs."""

    def __init__(self, program: Program,
                 state: Optional[ArchState] = None):
        self.program = program
        if state is None:
            state = ArchState(memory=SparseMemory(program.data),
                              pc=program.entry)
        self.state = state

    def step(self) -> Optional[StepResult]:
        """Execute one instruction; returns ``None`` once halted or when the
        PC runs off the end of the program."""
        if self.state.halted:
            return None
        inst = self.program.at(self.state.pc)
        if inst is None:
            self.state.halted = True
            return None
        return execute_step(self.state, inst)

    def run(self, max_instructions: int = 2_000_000,
            strict: bool = True) -> EmulationResult:
        """Run until the program exits or ``max_instructions`` is reached.

        With ``strict=True`` (the default) exceeding the budget raises
        :class:`EmulationLimitExceeded`; otherwise the partial result is
        returned, which is convenient for sampling long-running kernels.
        """
        class_counts: Counter = Counter()
        executed = 0
        while executed < max_instructions:
            result = self.step()
            if result is None:
                break
            class_counts[result.inst.info.cls] += 1
            executed += 1
        else:
            if strict and not self.state.halted:
                raise EmulationLimitExceeded(
                    f"{self.program.name}: did not halt within "
                    f"{max_instructions} instructions")
        loads = class_counts.get(OpClass.LOAD, 0)
        stores = class_counts.get(OpClass.STORE, 0)
        branches = (class_counts.get(OpClass.COND_BRANCH, 0)
                    + class_counts.get(OpClass.DIRECT_JUMP, 0)
                    + class_counts.get(OpClass.INDIRECT_JUMP, 0)
                    + class_counts.get(OpClass.RETURN, 0)
                    + class_counts.get(OpClass.CALL_DIRECT, 0)
                    + class_counts.get(OpClass.CALL_INDIRECT, 0))
        calls = (class_counts.get(OpClass.CALL_DIRECT, 0)
                 + class_counts.get(OpClass.CALL_INDIRECT, 0))
        return EmulationResult(
            instructions=executed,
            exit_code=self.state.exit_code,
            output=list(self.state.output),
            state=self.state,
            class_counts=dict(class_counts),
            load_count=loads,
            store_count=stores,
            branch_count=branches,
            call_count=calls,
        )


def run_program(program: Program,
                max_instructions: int = 2_000_000) -> EmulationResult:
    """Convenience wrapper: functionally execute ``program`` from scratch."""
    return Emulator(program).run(max_instructions=max_instructions)


# ----------------------------------------------------------------------
# architectural checkpoints (the substrate of sharded simulation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Checkpoint:
    """Precise architectural state after ``insts`` dynamic instructions.

    The timing core retires exactly the functional instruction stream (DIVA
    re-executes every retiring instruction on architectural state), so a
    functional checkpoint at instruction *k* is also the timing core's
    architectural state after *k* retirements -- which is what makes
    checkpointed slices recombine losslessly at the retired-instruction
    level.
    """

    insts: int
    snapshot: Dict[str, object]

    def state(self) -> ArchState:
        """Materialise a fresh :class:`ArchState` (safe to mutate)."""
        return ArchState.from_snapshot(self.snapshot)

    def to_dict(self) -> Dict[str, object]:
        return {"insts": self.insts, "snapshot": self.snapshot}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Checkpoint":
        return cls(insts=int(data["insts"]), snapshot=data["snapshot"])


def fast_forward(program: Program, count: int,
                 max_instructions: int = 2_000_000) -> ArchState:
    """Architecturally execute exactly ``count`` instructions.

    Returns the resulting state (which may already be halted if the program
    exits earlier).  Raises :class:`EmulationLimitExceeded` if ``count``
    exceeds ``max_instructions``.
    """
    if count > max_instructions:
        raise EmulationLimitExceeded(
            f"{program.name}: fast-forward of {count} exceeds the "
            f"{max_instructions}-instruction budget")
    emulator = Emulator(program)
    executed = 0
    while executed < count:
        if emulator.step() is None:
            break
        executed += 1
    return emulator.state


def collect_checkpoints(program: Program, boundaries: Iterable[int],
                        max_instructions: int = 2_000_000
                        ) -> Tuple[int, List[Checkpoint]]:
    """Run ``program`` to completion, checkpointing at instruction counts.

    ``boundaries`` are dynamic-instruction indices (sorted ascending, 0
    allowed); a checkpoint is captured when exactly that many instructions
    have executed.  Boundaries at or past the program's end are skipped --
    the corresponding slice would be empty.  Returns ``(total_instructions,
    checkpoints)``.
    """
    wanted = sorted(set(int(b) for b in boundaries))
    emulator = Emulator(program)
    checkpoints: List[Checkpoint] = []
    executed = 0
    next_idx = 0
    while True:
        while next_idx < len(wanted) and wanted[next_idx] == executed:
            checkpoints.append(Checkpoint(
                insts=executed, snapshot=emulator.state.to_snapshot()))
            next_idx += 1
        if emulator.step() is None:
            break
        executed += 1
        if executed > max_instructions:
            raise EmulationLimitExceeded(
                f"{program.name}: did not halt within "
                f"{max_instructions} instructions while checkpointing")
    return executed, checkpoints
