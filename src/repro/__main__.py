"""Command-line interface to the experiment engine: ``python -m repro``.

Subcommands::

    repro run      -- simulate benchmarks under the paper's configurations
    repro figures  -- regenerate the paper's figure/table reports
    repro trace    -- per-instruction pipeline trace (JSONL + Konata)
    repro submit   -- publish a sweep to the distributed work queue
    repro worker   -- drain jobs from the queue (run any number of these)
    repro fleet    -- supervise N workers: restart-on-crash, graceful drain
    repro status   -- queue depth, lease ages, per-worker throughput
    repro profile  -- cProfile the simulator's hot path
    repro variants -- list the registered machine variants
    repro cache    -- inspect, clear or garbage-collect the result cache
    repro lint     -- check the project invariants statically

``--jobs`` fans simulations out over a process pool; ``--backend`` (or
``REPRO_BACKEND``) picks the execution backend -- ``serial``, ``pool`` or
``distributed``, the last publishing every job to a filesystem queue that
any fleet of ``repro worker`` processes sharing ``REPRO_CACHE_DIR`` drains;
``--shards`` splits every benchmark into checkpointed slices so even one
long benchmark uses many cores (1 = bit-exact unsharded engine);
``--scale`` shrinks or grows the synthetic workloads; ``--benchmarks``
picks the benchmark set (``smoke``/``fast``/``all`` or an explicit
comma-separated list); ``--variant`` (or ``REPRO_VARIANT``) retargets the
sweep at a registered machine variant (see ``repro variants``);
``--verbose`` prints the full run-telemetry breakdown (including remote
jobs and reclaimed leases under the distributed backend); ``figures
--plot-dir DIR`` additionally renders PNG panels (requires matplotlib).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro import __version__


def _parse_benchmarks(spec: str) -> List[str]:
    from repro.experiments import runner

    sets = {
        "smoke": runner.SMOKE_BENCHMARKS,
        "fast": runner.FAST_BENCHMARKS,
        "all": runner.DEFAULT_BENCHMARKS,
    }
    if spec.lower() in sets:
        return list(sets[spec.lower()])
    names = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = [n for n in names if n not in runner.DEFAULT_BENCHMARKS]
    if unknown:
        raise SystemExit(
            f"unknown benchmarks: {', '.join(unknown)} "
            f"(available: {', '.join(runner.DEFAULT_BENCHMARKS)})")
    if not names:
        raise SystemExit("no benchmarks selected")
    return names


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmarks", default="fast", metavar="SET",
                        help="smoke|fast|all or a comma-separated list "
                             "(default: fast)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default: REPRO_SCALE "
                             "or 0.5)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel simulation processes; 0 = one per "
                             "CPU (default: REPRO_JOBS or 1)")
    parser.add_argument("--shards", type=int, default=None, metavar="S",
                        help="checkpointed slices per benchmark; 1 = "
                             "bit-exact unsharded engine (default: "
                             "REPRO_SHARDS or 1)")
    parser.add_argument("--variant", default=None, metavar="NAME",
                        help="machine variant to simulate; see `repro "
                             "variants` (default: REPRO_VARIANT or "
                             "baseline; ignored by --figures scenarios, "
                             "which sweeps every variant)")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        choices=("serial", "pool", "distributed"),
                        help="execution backend: serial, pool or "
                             "distributed (default: REPRO_BACKEND, else "
                             "pool when --jobs > 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the result caches entirely")
    parser.add_argument("--verbose", action="store_true",
                        help="print the full run-telemetry breakdown")


def _add_queue_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--queue-dir", default=None, metavar="DIR",
                        help="work queue directory (default: "
                             "REPRO_QUEUE_DIR or <cache root>/queue)")
    parser.add_argument("--lease-ttl", type=float, default=None, metavar="S",
                        help="seconds before an unheartbeated claim may be "
                             "reclaimed (default: REPRO_LEASE_TTL or 60)")


def _queue_from(args: argparse.Namespace):
    from repro.distrib import JobQueue

    root = Path(args.queue_dir) if args.queue_dir else None
    return JobQueue(root=root, lease_ttl=args.lease_ttl)


def _print_summary(verbose: bool = False) -> None:
    """The post-run provenance line(s): who computed what.

    Rendered by the shared formatter from the process-wide metrics
    registry (:mod:`repro.obs.metrics`) -- the same source the worker
    exit line uses -- so every surface reports identical numbers.
    """
    from repro.obs import metrics

    print(metrics.format_run_summary(verbose))


def _check_shards(args: argparse.Namespace) -> None:
    if args.shards is not None and args.shards < 1:
        raise SystemExit(f"invalid --shards {args.shards}: must be >= 1 "
                         f"(1 = unsharded)")


def _resolve_variant(args: argparse.Namespace):
    """Explicit ``--variant`` > ``REPRO_VARIANT`` > None (leave configs).

    Both paths reject unregistered names with a one-line error listing the
    registry.
    """
    from repro.experiments.runner import default_variant, validate_variant

    if args.variant is not None:
        return validate_variant(args.variant)
    return default_variant()


def _suite_configs(args: argparse.Namespace):
    """The named integration-config suite shared by run and submit."""
    from repro.core import MachineConfig
    from repro.integration.config import IntegrationConfig

    machine = MachineConfig()
    named = {
        "none": IntegrationConfig.disabled(),
        "squash": IntegrationConfig.squash(),
        "general": IntegrationConfig.general(),
        "opcode": IntegrationConfig.opcode(),
        "full": IntegrationConfig.full(),
    }
    wanted = args.configs.split(",") if args.configs else ["none", "full"]
    unknown = [c for c in wanted if c not in named]
    if unknown:
        raise SystemExit(f"unknown configs: {', '.join(unknown)} "
                         f"(available: {', '.join(named)})")
    return wanted, {name: machine.with_integration(named[name])
                    for name in wanted}


def _print_run_table(results, wanted, benchmarks) -> None:
    header = (f"{'benchmark':<12} {'config':<8} {'cycles':>9} {'retired':>9} "
              f"{'IPC':>7} {'int.rate':>9} {'misint/M':>9}")
    print(header)
    print("-" * len(header))
    for config_name in wanted:
        for benchmark in benchmarks:
            stats = results[config_name][benchmark]
            print(f"{benchmark:<12} {config_name:<8} {stats.cycles:>9} "
                  f"{stats.retired:>9} {stats.ipc:>7.3f} "
                  f"{stats.integration_rate:>9.3f} "
                  f"{stats.mis_integrations_per_million:>9.1f}")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import runner

    _check_shards(args)
    benchmarks = _parse_benchmarks(args.benchmarks)
    wanted, suite_configs = _suite_configs(args)
    variant = _resolve_variant(args)
    if variant is not None:
        print(f"variant: {variant}")
    results = runner.run_suite(benchmarks, suite_configs, scale=args.scale,
                               jobs=args.jobs, shards=args.shards,
                               use_cache=not args.no_cache, variant=variant,
                               backend=args.backend)
    _print_run_table(results, wanted, benchmarks)
    _print_summary(args.verbose)
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Publish a sweep to the distributed queue; optionally await results.

    With ``--wait`` (the default) this blocks until every merged SimStats
    is resolvable from the shared cache -- i.e. until the worker fleet (or
    this process itself, with ``--drain``) has finished the sweep -- and
    prints the same table as ``repro run``.  ``--no-wait`` enqueues the
    jobs and returns immediately; workers publish results into the shared
    content-addressed cache, so a later ``repro submit --wait`` (or plain
    ``repro run``) assembles them without re-simulating.
    """
    from repro.distrib import DistributedBackend
    from repro.experiments import runner

    _check_shards(args)
    if args.no_cache:
        raise SystemExit(
            "repro submit requires the shared disk cache (it is how "
            "workers hand results back); drop --no-cache")
    benchmarks = _parse_benchmarks(args.benchmarks)
    wanted, suite_configs = _suite_configs(args)
    variant = _resolve_variant(args)
    if variant is not None:
        print(f"variant: {variant}")
    queue_dir = Path(args.queue_dir) if args.queue_dir else None
    backend = DistributedBackend(queue_dir=queue_dir,
                                 lease_ttl=args.lease_ttl,
                                 drain=args.drain,
                                 timeout=args.timeout)

    if args.no_wait:
        configs = runner.apply_variant(suite_configs, variant)
        for config in configs.values():
            runner.validate_variant(config.variant)
        scale = (runner.default_scale() if args.scale is None
                 else args.scale)
        shards = runner.default_shards(args.shards)
        warmup = runner.default_warmup_fraction()
        plan = runner.plan_suite(benchmarks, configs, scale, shards,
                                 warmup, use_cache=True)
        submitted = backend.submit(plan.jobs_list, use_cache=True)
        cached = sum(len(cells) for key, cells in plan.placements.items()
                     if key not in {k for k, _, _ in plan.pending})
        queue = backend.queue()
        print(f"submitted {len(submitted)} job(s) to {queue.root} "
              f"({cached} result(s) already cached); drain with any "
              f"number of `repro worker` processes sharing this cache")
        return 0

    try:
        results = runner.run_suite(benchmarks, suite_configs,
                                   scale=args.scale, jobs=args.jobs,
                                   shards=args.shards, use_cache=True,
                                   variant=variant, backend=backend)
    except (TimeoutError, RuntimeError) as exc:
        # Timed-out wait or dead-lettered jobs: one line, not a traceback
        # (`repro status` has the details).
        raise SystemExit(str(exc)) from None
    _print_run_table(results, wanted, benchmarks)
    _print_summary(args.verbose)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.distrib import run_worker
    from repro.experiments.cache import ResultCache
    from repro.reliability import SimulatedCrash

    stop = threading.Event()
    previous = None
    try:
        previous = signal.signal(signal.SIGTERM,
                                 lambda _sig, _frame: stop.set())
    except ValueError:
        pass                     # not the main thread (library/test use)
    try:
        summary = run_worker(
            queue=_queue_from(args),
            cache=ResultCache(),
            max_jobs=args.max_jobs,
            idle_timeout=args.idle_timeout,
            poll_interval=args.poll_interval,
            log=None if args.quiet else print,
            stop=stop,
        )
    except SimulatedCrash as crash:
        # An injected crash must look like a real one to supervisors
        # (distinct nonzero exit, no summary, protocol state abandoned),
        # minus the traceback noise.
        print(f"repro: worker crashed: {crash}", file=sys.stderr)
        return 70
    finally:
        # Restore the inherited handler: an embedding process (tests,
        # library use) must not keep a handler bound to this worker's
        # stale stop event -- forked children would inherit it and
        # swallow real SIGTERMs (e.g. multiprocessing Pool.terminate).
        if previous is not None:
            try:
                signal.signal(signal.SIGTERM, previous)
            except ValueError:
                pass
    return 1 if summary.failed and not summary.jobs_done else 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    """Supervise a fleet of ``repro worker`` subprocesses.

    Workers that drain (exit 0) are done; workers that crash are
    restarted with exponential backoff up to ``--max-restarts``, with
    ``REPRO_FAULTS`` stripped from restarted children so an injected
    one-shot crash schedule cannot re-fire forever.  SIGTERM (and Ctrl-C)
    forwards a graceful stop to every child and escalates to SIGKILL
    after ``--grace`` seconds.
    """
    import os
    import signal
    import subprocess

    from repro.reliability import ENV_FAULTS, FleetSupervisor

    if args.workers < 1:
        raise SystemExit(f"invalid --workers {args.workers}: must be >= 1")
    queue = _queue_from(args)
    command = [sys.executable, "-m", "repro", "worker",
               "--poll-interval", str(args.poll_interval)]
    if args.queue_dir:
        command += ["--queue-dir", args.queue_dir]
    if args.lease_ttl is not None:
        command += ["--lease-ttl", str(args.lease_ttl)]
    if args.idle_timeout is not None:
        command += ["--idle-timeout", str(args.idle_timeout)]
    if args.max_jobs is not None:
        command += ["--max-jobs", str(args.max_jobs)]
    if args.quiet:
        command += ["--quiet"]

    def spawn(index: int, clean: bool):
        env = dict(os.environ)
        if clean:
            env.pop(ENV_FAULTS, None)
        return subprocess.Popen(command, env=env)

    supervisor = FleetSupervisor(
        count=args.workers, spawn=spawn, max_restarts=args.max_restarts,
        grace=args.grace,
        log=None if args.quiet else
        (lambda message: print(message, file=sys.stderr)))
    previous = {}
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[signum] = signal.signal(
                signum, lambda _sig, _frame: supervisor.stop())
        except ValueError:
            pass                 # not the main thread (library/test use)
    try:
        print(f"fleet: {args.workers} worker(s) draining {queue.root}")
        summary = supervisor.run()
    finally:
        # Restore inherited handlers so an embedding process is not left
        # with handlers bound to this (finished) supervisor.
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except ValueError:
                pass
    print(f"fleet: {summary.describe()}")
    return 0 if summary.ok else 1


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.obs import dashboard

    queue = _queue_from(args)
    if args.purge:
        removed = queue.purge()
        print(f"purged {removed} job file(s) from {queue.root}")
        return 0
    if args.prune is not None:
        removed = queue.prune_terminal(max_age_seconds=args.prune * 3600.0)
        print(f"pruned {removed} terminal record(s) (done/dead/worker "
              f"stats older than {args.prune:g}h) from {queue.root}")
        return 0
    if args.watch:
        if args.interval <= 0:
            raise SystemExit(f"invalid --interval {args.interval}: "
                             f"must be > 0")
        dashboard.watch(queue, interval=args.interval,
                        refreshes=args.refreshes)
        return 0
    print(dashboard.render_status(queue))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace one benchmark's pipeline events (``repro trace``).

    Writes ``<prefix>.jsonl`` (one lifecycle event per line) and
    ``<prefix>.kanata`` (a Konata-viewer pipetrace).  Tracing forces the
    per-cycle driver (no span elision), so expect traced runs to be
    slower than ``repro run``; statistics are bit-identical either way.
    """
    from repro.core import MachineConfig, simulate
    from repro.experiments import runner
    from repro.obs.trace import PipelineTracer, default_trace_prefix
    from repro.workloads import build_workload

    if args.benchmark not in runner.DEFAULT_BENCHMARKS:
        raise SystemExit(
            f"unknown benchmark: {args.benchmark} "
            f"(available: {', '.join(runner.DEFAULT_BENCHMARKS)})")
    if args.no_jsonl and args.no_konata:
        raise SystemExit("nothing to write: drop one of "
                         "--no-jsonl/--no-konata")
    scale = runner.default_scale() if args.scale is None else args.scale
    config = MachineConfig()
    variant = _resolve_variant(args)
    if variant is not None:
        config = config.with_variant(variant)
        print(f"variant: {variant}")
    prefix = args.out if args.out else default_trace_prefix()
    jsonl_path = None if args.no_jsonl else f"{prefix}.jsonl"
    konata_path = None if args.no_konata else f"{prefix}.kanata"
    program = build_workload(args.benchmark, scale=scale)
    with PipelineTracer(jsonl_path=jsonl_path,
                        konata_path=konata_path) as tracer:
        stats = simulate(program, config, name=args.benchmark,
                         max_instructions=args.max_instructions,
                         tracer=tracer)
    print(f"{args.benchmark}: {stats.retired} retired in {stats.cycles} "
          f"cycles (IPC {stats.ipc:.3f}); traced {tracer.fetches} fetches, "
          f"{tracer.retires} retires, {tracer.squashes} squashes")
    for path in (jsonl_path, konata_path):
        if path is not None:
            print(f"wrote {path}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import profiling
    from repro.core import MachineConfig
    from repro.experiments import runner

    if args.diff is not None:
        before_path, after_path = args.diff
        with open(before_path, "r", encoding="utf-8") as fh:
            before = json.load(fh)
        with open(after_path, "r", encoding="utf-8") as fh:
            after = json.load(fh)
        print(profiling.diff_reports(before, after))
        return 0

    benchmarks = _parse_benchmarks(args.benchmarks)
    scale = runner.default_scale() if args.scale is None else args.scale
    config = MachineConfig()
    variant = _resolve_variant(args)
    if variant is not None:
        config = config.with_variant(variant)
    result = profiling.profile_simulate(benchmarks, scale, config=config,
                                        top_n=args.top)
    print(profiling.report(result))
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(profiling.to_dict(result), fh, indent=2)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import os

    from repro.experiments import (ablations, cpistack, diagnostics,
                                   scenario_matrix)
    from repro.experiments import figure4, figure5, figure6, figure7
    from repro.experiments import runner

    _check_shards(args)
    if args.plot_dir is not None:
        # Fail before simulating anything, not after.
        from repro.analysis import plots

        if not plots.matplotlib_available():
            raise plots.MissingDependencyError("matplotlib", "--plot-dir")
    if args.shards is not None:
        # The figure modules call run_suite without a shards argument, so
        # it resolves through REPRO_SHARDS; route the CLI flag there.
        os.environ["REPRO_SHARDS"] = str(args.shards)
    if args.backend is not None:
        # Same routing for the execution backend: the figure modules call
        # run_suite without a backend argument, which falls back to
        # REPRO_BACKEND.
        os.environ["REPRO_BACKEND"] = args.backend
    benchmarks = _parse_benchmarks(args.benchmarks)
    variant = _resolve_variant(args)
    common = dict(benchmarks=benchmarks, scale=args.scale, jobs=args.jobs)
    # name -> (run, report); scenario_matrix deliberately ignores --variant:
    # the matrix sweeps every registered variant by construction.
    available = {
        "4": (lambda: figure4.run(variant=variant, **common),
              figure4.report),
        "5": (lambda: figure5.run(variant=variant, **common),
              figure5.report),
        "6": (lambda: figure6.run(variant=variant, **common),
              figure6.report),
        "7": (lambda: figure7.run(variant=variant, **common),
              figure7.report),
        "diagnostics": (lambda: diagnostics.run(variant=variant, **common),
                        diagnostics.report),
        "ablations": (lambda: ablations.run(variant=variant, **common),
                      ablations.report),
        "scenarios": (lambda: scenario_matrix.run(**common),
                      scenario_matrix.report),
        "cpistack": (lambda: cpistack.run(variant=variant, **common),
                     cpistack.report),
    }
    wanted = args.figures.split(",") if args.figures else ["4", "5", "6", "7"]
    unknown = [f for f in wanted if f not in available]
    if unknown:
        raise SystemExit(f"unknown figures: {', '.join(unknown)} "
                         f"(available: {', '.join(available)})")
    for name in wanted:
        run_fn, report_fn = available[name]
        result = run_fn()
        print(report_fn(result))
        print()
        if args.plot_dir is not None:
            from repro.analysis import plots

            path = plots.render(name, result, args.plot_dir)
            if path is not None:
                print(f"wrote {path}")
                print()
    _print_summary(args.verbose)
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    from repro.variants import describe_variants

    listing = describe_variants()
    width = max(len(name) for name in listing)
    for name, info in listing.items():
        print(f"{name:<{width}}  {info['description']}")
        overrides = info["overrides"]
        slots = ", ".join(overrides) if overrides else "(none: the baseline)"
        print(f"{'':<{width}}  overrides: {slots}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.cache import ResultCache

    cache = ResultCache()
    if args.cache_action == "info":
        info = cache.info()
        print(f"cache root:   {info['root']}")
        print(f"enabled:      {info['enabled']}")
        print(f"entries:      {info['entries']}")
        if info.get("corrupt"):
            print(f"corrupt:      {info['corrupt']} (quarantined)")
        print(f"size:         {info['bytes'] / 1024:.1f} KiB")
        print(f"code version: {info['code_version']}")
    elif args.cache_action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
    elif args.cache_action == "gc":
        max_age = (None if args.max_age_days is None
                   else args.max_age_days * 86400.0)
        max_bytes = (None if args.max_size_mb is None
                     else int(args.max_size_mb * 1024 * 1024))
        stats = cache.gc(max_age_seconds=max_age, max_bytes=max_bytes,
                         tmp_grace_seconds=args.tmp_grace_minutes * 60.0)
        print(f"cache root:        {cache.root}")
        print(f"orphaned tmp:      {stats['tmp_removed']} removed")
        print(f"aged out:          {stats['aged_out']} removed")
        print(f"size evictions:    {stats['evicted_for_size']} removed")
        print(f"freed:             {stats['bytes_freed'] / 1024:.1f} KiB")
        print(f"kept:              {stats['entries_kept']} entries, "
              f"{stats['bytes_kept'] / 1024:.1f} KiB")
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    """Run the project-invariant static analyzer (see repro/lint/).

    Exit status 0 when no *new* findings exist (inline ``lint-ok``
    suppressions and the committed baseline are honoured), 1 otherwise.
    """
    import json

    from repro import lint
    from repro.lint.rules import ALL_RULES, RULES_BY_ID

    root = Path(args.root) if args.root else lint.default_root()
    if not (root / "src" / "repro").is_dir():
        raise SystemExit(f"repro lint: {root} does not look like a "
                         f"repository checkout (no src/repro)")

    rules = None
    if args.rules:
        wanted = [name.strip() for name in args.rules.split(",")
                  if name.strip()]
        unknown = [name for name in wanted if name not in RULES_BY_ID]
        if unknown:
            raise SystemExit(
                f"unknown lint rules: {', '.join(unknown)} "
                f"(available: {', '.join(r.id for r in ALL_RULES)})")
        rules = [RULES_BY_ID[name] for name in wanted]

    baseline_path = (Path(args.baseline) if args.baseline
                     else root / lint.BASELINE_NAME)
    try:
        baseline_keys = lint.load_baseline(baseline_path)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None

    report = lint.run_lint(root, rules=rules, baseline_keys=baseline_keys)

    if args.write_baseline:
        count = lint.write_baseline(baseline_path, report.findings)
        print(f"wrote {count} baseline entr{'y' if count == 1 else 'ies'} "
              f"to {baseline_path}")
        return 0

    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1

    for finding in report.findings:
        print(finding.render())
    ran = ", ".join(report.rules) or "none"
    summary = (f"{len(report.findings)} new finding(s), "
               f"{report.suppressed} suppressed, "
               f"{report.baselined} baselined (rules: {ran})")
    if report.skipped_rules:
        summary += f"; skipped: {', '.join(report.skipped_rules)}"
    print(("FAIL: " if not report.ok else "ok: ") + summary)
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Register-integration reproduction "
                    "(Petric, Bracy & Roth, MICRO 2002)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate benchmarks")
    _add_common(p_run)
    p_run.add_argument("--configs", default=None, metavar="LIST",
                       help="comma-separated integration configs: none,"
                            "squash,general,opcode,full (default: none,full)")
    p_run.set_defaults(func=_cmd_run)

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    _add_common(p_fig)
    p_fig.add_argument("--figures", default=None, metavar="LIST",
                       help="comma-separated: 4,5,6,7,diagnostics,ablations,"
                            "scenarios,cpistack (default: 4,5,6,7)")
    p_fig.add_argument("--plot-dir", default=None, metavar="DIR",
                       help="also render PNG panels into DIR (requires "
                            "matplotlib)")
    p_fig.set_defaults(func=_cmd_figures)

    p_tr = sub.add_parser(
        "trace",
        help="trace one benchmark's pipeline events (JSONL + Konata)")
    p_tr.add_argument("benchmark", metavar="BENCHMARK",
                      help="benchmark to trace (see --benchmarks all)")
    p_tr.add_argument("--scale", type=float, default=None,
                      help="workload scale factor (default: REPRO_SCALE "
                           "or 0.5)")
    p_tr.add_argument("--variant", default=None, metavar="NAME",
                      help="machine variant to trace (default: "
                           "REPRO_VARIANT or baseline)")
    p_tr.add_argument("--max-instructions", type=int, default=None,
                      metavar="N",
                      help="stop after N retired instructions (default: "
                           "run to completion)")
    p_tr.add_argument("--out", default=None, metavar="PREFIX",
                      help="output path prefix for PREFIX.jsonl and "
                           "PREFIX.kanata (default: REPRO_TRACE or "
                           "'trace')")
    p_tr.add_argument("--no-jsonl", action="store_true",
                      help="skip the JSON-lines event stream")
    p_tr.add_argument("--no-konata", action="store_true",
                      help="skip the Konata pipetrace file")
    p_tr.set_defaults(func=_cmd_trace)

    p_sub = sub.add_parser(
        "submit",
        help="publish a sweep to the distributed work queue")
    _add_common(p_sub)
    _add_queue_args(p_sub)
    p_sub.add_argument("--configs", default=None, metavar="LIST",
                       help="comma-separated integration configs: none,"
                            "squash,general,opcode,full (default: none,full)")
    p_sub.add_argument("--no-wait", action="store_true",
                       help="enqueue and exit instead of blocking until "
                            "the merged results are resolvable from cache")
    p_sub.add_argument("--drain", action="store_true",
                       help="while waiting, also work the queue from this "
                            "process (completes even with no workers)")
    p_sub.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="abort the wait after S seconds without "
                            "progress (default: wait forever)")
    p_sub.set_defaults(func=_cmd_submit)

    p_wrk = sub.add_parser(
        "worker", help="drain simulation jobs from the work queue")
    _add_queue_args(p_wrk)
    p_wrk.add_argument("--max-jobs", type=int, default=None, metavar="N",
                       help="exit after completing N jobs (default: "
                            "unbounded)")
    p_wrk.add_argument("--idle-timeout", type=float, default=None,
                       metavar="S",
                       help="exit after S seconds with no claimable work "
                            "(default: wait forever)")
    p_wrk.add_argument("--poll-interval", type=float, default=0.2,
                       metavar="S", help="idle poll period (default: 0.2s)")
    p_wrk.add_argument("--quiet", action="store_true",
                       help="suppress per-job log lines")
    p_wrk.set_defaults(func=_cmd_worker)

    p_fleet = sub.add_parser(
        "fleet",
        help="supervise N workers: restart-on-crash, graceful SIGTERM drain")
    _add_queue_args(p_fleet)
    p_fleet.add_argument("-n", "--workers", type=int, default=2, metavar="N",
                         help="worker subprocesses to supervise (default: 2)")
    p_fleet.add_argument("--max-jobs", type=int, default=None, metavar="N",
                         help="per-worker job bound (default: unbounded)")
    p_fleet.add_argument("--idle-timeout", type=float, default=None,
                         metavar="S",
                         help="per-worker idle exit, i.e. the fleet drains "
                              "and stops S seconds after the queue empties "
                              "(default: run forever)")
    p_fleet.add_argument("--poll-interval", type=float, default=0.2,
                         metavar="S",
                         help="worker idle poll period (default: 0.2s)")
    p_fleet.add_argument("--max-restarts", type=int, default=5, metavar="N",
                         help="crash restarts per worker slot before "
                              "giving up (default: 5)")
    p_fleet.add_argument("--grace", type=float, default=5.0, metavar="S",
                         help="SIGTERM drain window before SIGKILL "
                              "(default: 5s)")
    p_fleet.add_argument("--quiet", action="store_true",
                         help="suppress supervisor and worker log lines")
    p_fleet.set_defaults(func=_cmd_fleet)

    p_st = sub.add_parser(
        "status", help="show queue depth, lease ages and worker throughput")
    _add_queue_args(p_st)
    p_st.add_argument("--watch", action="store_true",
                      help="live dashboard: redraw the status every "
                           "--interval seconds until Ctrl-C")
    p_st.add_argument("--interval", type=float, default=2.0, metavar="S",
                      help="--watch refresh period (default: 2s)")
    p_st.add_argument("--refreshes", type=int, default=None, metavar="N",
                      help="--watch: stop after N redraws (default: "
                           "until Ctrl-C)")
    p_st.add_argument("--purge", action="store_true",
                      help="delete every job file (all states), lease and "
                           "worker record in the queue -- including live "
                           "pending/claimed work")
    p_st.add_argument("--prune", type=float, default=None, metavar="H",
                      nargs="?", const=0.0,
                      help="safe cleanup: delete only terminal records "
                           "(done/dead markers, worker stats) older than "
                           "H hours (default 0 = all); never touches "
                           "pending or claimed jobs")
    p_st.set_defaults(func=_cmd_status)

    p_prof = sub.add_parser(
        "profile", help="cProfile the simulator hot path")
    p_prof.add_argument("--benchmarks", default="gzip", metavar="SET",
                        help="smoke|fast|all or a comma-separated list "
                             "(default: gzip)")
    p_prof.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default: REPRO_SCALE "
                             "or 0.5)")
    p_prof.add_argument("--variant", default=None, metavar="NAME",
                        help="machine variant to profile (default: "
                             "REPRO_VARIANT or baseline)")
    p_prof.add_argument("--top", type=int, default=15, metavar="N",
                        help="rows in the cumulative-time table "
                             "(default: 15)")
    p_prof.add_argument("--json", default=None, metavar="OUT",
                        help="also write the profile as JSON for later "
                             "--diff comparison")
    p_prof.add_argument("--diff", nargs=2, default=None,
                        metavar=("BEFORE.json", "AFTER.json"),
                        help="compare two --json files hot line by hot "
                             "line instead of profiling")
    p_prof.set_defaults(func=_cmd_profile)

    p_var = sub.add_parser("variants",
                           help="list the registered machine variants")
    p_var.set_defaults(func=_cmd_variants)

    p_cache = sub.add_parser(
        "cache", help="manage the on-disk result cache")
    p_cache.add_argument("cache_action", choices=("info", "clear", "gc"))
    p_cache.add_argument("--max-age-days", type=float, default=None,
                         metavar="D",
                         help="gc: drop entries older than D days")
    p_cache.add_argument("--max-size-mb", type=float, default=None,
                         metavar="MB",
                         help="gc: evict oldest entries until the cache "
                              "fits in MB megabytes")
    p_cache.add_argument("--tmp-grace-minutes", type=float, default=60.0,
                         metavar="M",
                         help="gc: sweep orphaned *.tmp files older than "
                              "M minutes (default: 60)")
    p_cache.set_defaults(func=_cmd_cache)

    p_lint = sub.add_parser(
        "lint", help="check the project invariants statically")
    p_lint.add_argument("--json", action="store_true",
                        help="emit the machine-readable report instead of "
                             "the human listing")
    p_lint.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file of grandfathered findings "
                             "(default: <root>/lint-baseline.txt)")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from the current new "
                             "findings instead of failing on them")
    p_lint.add_argument("--rules", default=None, metavar="LIST",
                        help="comma-separated rule ids to run (default: "
                             "all six; see docs/ARCHITECTURE.md)")
    p_lint.add_argument("--root", default=None, metavar="DIR",
                        help="repository checkout to lint (default: the "
                             "tree this package was imported from)")
    p_lint.set_defaults(func=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
