"""Command-line interface to the experiment engine: ``python -m repro``.

Subcommands::

    repro run      -- simulate benchmarks under the paper's configurations
    repro figures  -- regenerate the paper's figure/table reports
    repro variants -- list the registered machine variants
    repro cache    -- inspect or clear the on-disk result cache

``--jobs`` fans simulations out over a process pool; ``--shards`` splits
every benchmark into checkpointed slices so even one long benchmark uses
many cores (1 = bit-exact unsharded engine); ``--scale`` shrinks or grows
the synthetic workloads; ``--benchmarks`` picks the benchmark set
(``smoke``/``fast``/``all`` or an explicit comma-separated list);
``--variant`` (or ``REPRO_VARIANT``) retargets the sweep at a registered
machine variant (see ``repro variants``); ``figures --plot-dir DIR``
additionally renders PNG panels (requires matplotlib).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__


def _parse_benchmarks(spec: str) -> List[str]:
    from repro.experiments import runner

    sets = {
        "smoke": runner.SMOKE_BENCHMARKS,
        "fast": runner.FAST_BENCHMARKS,
        "all": runner.DEFAULT_BENCHMARKS,
    }
    if spec.lower() in sets:
        return list(sets[spec.lower()])
    names = [name.strip() for name in spec.split(",") if name.strip()]
    unknown = [n for n in names if n not in runner.DEFAULT_BENCHMARKS]
    if unknown:
        raise SystemExit(
            f"unknown benchmarks: {', '.join(unknown)} "
            f"(available: {', '.join(runner.DEFAULT_BENCHMARKS)})")
    if not names:
        raise SystemExit("no benchmarks selected")
    return names


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--benchmarks", default="fast", metavar="SET",
                        help="smoke|fast|all or a comma-separated list "
                             "(default: fast)")
    parser.add_argument("--scale", type=float, default=None,
                        help="workload scale factor (default: REPRO_SCALE "
                             "or 0.5)")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="parallel simulation processes; 0 = one per "
                             "CPU (default: REPRO_JOBS or 1)")
    parser.add_argument("--shards", type=int, default=None, metavar="S",
                        help="checkpointed slices per benchmark; 1 = "
                             "bit-exact unsharded engine (default: "
                             "REPRO_SHARDS or 1)")
    parser.add_argument("--variant", default=None, metavar="NAME",
                        help="machine variant to simulate; see `repro "
                             "variants` (default: REPRO_VARIANT or "
                             "baseline; ignored by --figures scenarios, "
                             "which sweeps every variant)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the result caches entirely")


def _check_shards(args: argparse.Namespace) -> None:
    if args.shards is not None and args.shards < 1:
        raise SystemExit(f"invalid --shards {args.shards}: must be >= 1 "
                         f"(1 = unsharded)")


def _resolve_variant(args: argparse.Namespace):
    """Explicit ``--variant`` > ``REPRO_VARIANT`` > None (leave configs).

    Both paths reject unregistered names with a one-line error listing the
    registry.
    """
    from repro.experiments.runner import default_variant, validate_variant

    if args.variant is not None:
        return validate_variant(args.variant)
    return default_variant()


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.core import MachineConfig
    from repro.experiments import runner
    from repro.integration.config import IntegrationConfig

    _check_shards(args)
    benchmarks = _parse_benchmarks(args.benchmarks)
    machine = MachineConfig()
    named = {
        "none": IntegrationConfig.disabled(),
        "squash": IntegrationConfig.squash(),
        "general": IntegrationConfig.general(),
        "opcode": IntegrationConfig.opcode(),
        "full": IntegrationConfig.full(),
    }
    wanted = args.configs.split(",") if args.configs else ["none", "full"]
    unknown = [c for c in wanted if c not in named]
    if unknown:
        raise SystemExit(f"unknown configs: {', '.join(unknown)} "
                         f"(available: {', '.join(named)})")
    suite_configs = {name: machine.with_integration(named[name])
                     for name in wanted}

    variant = _resolve_variant(args)
    if variant is not None:
        print(f"variant: {variant}")
    results = runner.run_suite(benchmarks, suite_configs, scale=args.scale,
                               jobs=args.jobs, shards=args.shards,
                               use_cache=not args.no_cache, variant=variant)
    header = (f"{'benchmark':<12} {'config':<8} {'cycles':>9} {'retired':>9} "
              f"{'IPC':>7} {'int.rate':>9} {'misint/M':>9}")
    print(header)
    print("-" * len(header))
    for config_name in wanted:
        for benchmark in benchmarks:
            stats = results[config_name][benchmark]
            print(f"{benchmark:<12} {config_name:<8} {stats.cycles:>9} "
                  f"{stats.retired:>9} {stats.ipc:>7.3f} "
                  f"{stats.integration_rate:>9.3f} "
                  f"{stats.mis_integrations_per_million:>9.1f}")
    sliced = runner.telemetry.slices_simulated
    print(f"\n{runner.telemetry.simulations} simulations"
          + (f" ({sliced} slices)" if sliced else "") + ", "
          f"{runner.telemetry.memory_hits} memory hits, "
          f"{runner.telemetry.disk_hits} disk hits")
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    import os

    from repro.experiments import ablations, diagnostics, scenario_matrix
    from repro.experiments import figure4, figure5, figure6, figure7
    from repro.experiments import runner

    _check_shards(args)
    if args.plot_dir is not None:
        # Fail before simulating anything, not after.
        from repro.analysis import plots

        if not plots.matplotlib_available():
            raise plots.MissingDependencyError("matplotlib", "--plot-dir")
    if args.shards is not None:
        # The figure modules call run_suite without a shards argument, so
        # it resolves through REPRO_SHARDS; route the CLI flag there.
        os.environ["REPRO_SHARDS"] = str(args.shards)
    benchmarks = _parse_benchmarks(args.benchmarks)
    variant = _resolve_variant(args)
    common = dict(benchmarks=benchmarks, scale=args.scale, jobs=args.jobs)
    # name -> (run, report); scenario_matrix deliberately ignores --variant:
    # the matrix sweeps every registered variant by construction.
    available = {
        "4": (lambda: figure4.run(variant=variant, **common),
              figure4.report),
        "5": (lambda: figure5.run(variant=variant, **common),
              figure5.report),
        "6": (lambda: figure6.run(variant=variant, **common),
              figure6.report),
        "7": (lambda: figure7.run(variant=variant, **common),
              figure7.report),
        "diagnostics": (lambda: diagnostics.run(variant=variant, **common),
                        diagnostics.report),
        "ablations": (lambda: ablations.run(variant=variant, **common),
                      ablations.report),
        "scenarios": (lambda: scenario_matrix.run(**common),
                      scenario_matrix.report),
    }
    wanted = args.figures.split(",") if args.figures else ["4", "5", "6", "7"]
    unknown = [f for f in wanted if f not in available]
    if unknown:
        raise SystemExit(f"unknown figures: {', '.join(unknown)} "
                         f"(available: {', '.join(available)})")
    for name in wanted:
        run_fn, report_fn = available[name]
        result = run_fn()
        print(report_fn(result))
        print()
        if args.plot_dir is not None:
            from repro.analysis import plots

            path = plots.render(name, result, args.plot_dir)
            if path is not None:
                print(f"wrote {path}")
                print()
    print(f"{runner.telemetry.simulations} simulations, "
          f"{runner.telemetry.disk_hits} disk hits")
    return 0


def _cmd_variants(args: argparse.Namespace) -> int:
    from repro.variants import describe_variants

    listing = describe_variants()
    width = max(len(name) for name in listing)
    for name, info in listing.items():
        print(f"{name:<{width}}  {info['description']}")
        overrides = info["overrides"]
        slots = ", ".join(overrides) if overrides else "(none: the baseline)"
        print(f"{'':<{width}}  overrides: {slots}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.experiments.cache import ResultCache

    cache = ResultCache()
    if args.cache_action == "info":
        info = cache.info()
        print(f"cache root:   {info['root']}")
        print(f"enabled:      {info['enabled']}")
        print(f"entries:      {info['entries']}")
        print(f"size:         {info['bytes'] / 1024:.1f} KiB")
        print(f"code version: {info['code_version']}")
    elif args.cache_action == "clear":
        removed = cache.clear()
        print(f"removed {removed} cached results from {cache.root}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Register-integration reproduction "
                    "(Petric, Bracy & Roth, MICRO 2002)")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="simulate benchmarks")
    _add_common(p_run)
    p_run.add_argument("--configs", default=None, metavar="LIST",
                       help="comma-separated integration configs: none,"
                            "squash,general,opcode,full (default: none,full)")
    p_run.set_defaults(func=_cmd_run)

    p_fig = sub.add_parser("figures", help="regenerate paper figures")
    _add_common(p_fig)
    p_fig.add_argument("--figures", default=None, metavar="LIST",
                       help="comma-separated: 4,5,6,7,diagnostics,ablations,"
                            "scenarios (default: 4,5,6,7)")
    p_fig.add_argument("--plot-dir", default=None, metavar="DIR",
                       help="also render PNG panels into DIR (requires "
                            "matplotlib)")
    p_fig.set_defaults(func=_cmd_figures)

    p_var = sub.add_parser("variants",
                           help="list the registered machine variants")
    p_var.set_defaults(func=_cmd_variants)

    p_cache = sub.add_parser("cache", help="manage the on-disk result cache")
    p_cache.add_argument("cache_action", choices=("info", "clear"))
    p_cache.set_defaults(func=_cmd_cache)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
