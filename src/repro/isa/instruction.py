"""Static and dynamic instruction records.

:class:`StaticInst` is the immutable program-level instruction (one per PC);
:class:`DynInst` is a single dynamic instance flowing through the pipeline,
carrying renamed registers, values and per-stage timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.isa.opcodes import OpClass, OPINFO, is_store
from repro.isa.registers import reg_name


@dataclass(frozen=True)
class StaticInst:
    """One static (program) instruction.

    Operand conventions (unified register indices, ``None`` when absent):

    * ALU reg-reg:   ``rd = ra <op> rb``
    * ALU reg-imm:   ``rd = ra <op> imm``           (includes ``lda``)
    * load:          ``rd = mem[ra + imm]``
    * store:         ``mem[rb + imm] = ra``          (``ra`` is the data reg)
    * cond branch:   test ``ra`` against zero, branch to ``target``
    * ``br``/``bsr``: direct jump/call to ``target`` (``bsr`` writes ``rd``)
    * ``jsr``/``jmp``/``ret``: indirect control through ``ra``
    * ``syscall``:   service selected by ``imm``
    """

    pc: int
    op: Opcode
    rd: Optional[int] = None
    ra: Optional[int] = None
    rb: Optional[int] = None
    imm: Optional[int] = None
    target: Optional[int] = None
    label: Optional[str] = None

    # ``info``, ``cls`` and the operand views are precomputed per static
    # instruction: the per-cycle pipeline loops read them constantly, and an
    # instance-attribute read is far cheaper than an OPINFO lookup (which
    # hashes the opcode enum) on every access.
    def __post_init__(self):
        info = OPINFO[self.op]
        object.__setattr__(self, "info", info)
        object.__setattr__(self, "cls", info.cls)
        srcs = []
        if self.ra is not None:
            srcs.append(self.ra)
        if self.rb is not None:
            srcs.append(self.rb)
        object.__setattr__(self, "srcs", tuple(srcs))
        object.__setattr__(self, "dest",
                           self.rd if info.writes_dest else None)
        # Integration-table index key under opcode/immediate indexing
        # (repro.integration.table); pure function of the static encoding.
        object.__setattr__(self, "it_key",
                           info.opcode_id ^ ((self.imm or 0) & 0xFFFF))

    def src_regs(self) -> Tuple[int, ...]:
        """Logical source registers actually read by this instruction."""
        return self.srcs

    def dest_reg(self) -> Optional[int]:
        """Logical destination register, or ``None``."""
        return self.dest

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        info = self.info
        parts = [self.op.value]
        ops = []
        if info.writes_dest and self.rd is not None:
            ops.append(reg_name(self.rd))
        if info.cls is OpClass.LOAD:
            ops.append(f"{self.imm}({reg_name(self.ra)})")
        elif is_store(self.op):
            ops = [reg_name(self.ra), f"{self.imm}({reg_name(self.rb)})"]
        elif info.cls is OpClass.COND_BRANCH:
            ops = [reg_name(self.ra), f"@{self.target:#x}"]
        elif info.cls in (OpClass.DIRECT_JUMP, OpClass.CALL_DIRECT):
            ops.append(f"@{self.target:#x}")
        elif info.cls in (OpClass.CALL_INDIRECT, OpClass.INDIRECT_JUMP,
                          OpClass.RETURN):
            ops.append(f"({reg_name(self.ra)})")
        else:
            if self.ra is not None:
                ops.append(reg_name(self.ra))
            if self.rb is not None:
                ops.append(reg_name(self.rb))
            if info.has_imm and self.imm is not None:
                ops.append(str(self.imm))
        return f"{self.pc:#06x}: {parts[0]} " + ", ".join(ops)


class DynInst:
    """A dynamic instruction instance in flight in the timing model.

    The out-of-order core attaches renamed register identifiers, operand and
    result values, integration metadata and per-stage cycle timestamps.  The
    class uses ``__slots__`` because simulations create one object per
    dynamic instruction.
    """

    __slots__ = (
        "seq", "inst", "op", "cls", "info",
        "pc", "pred_next_pc", "next_pc", "pred_taken",
        "call_depth",
        # renaming
        "src_pregs", "src_gens", "dest_preg", "dest_gen", "old_dest_preg",
        "old_dest_gen",
        "map_checkpoint",
        # integration
        "integrated", "reverse_integrated", "integration_distance",
        "integration_status", "integration_refcount", "it_hit", "it_entry",
        "suppressed_by_lisp",
        # execution state
        "result", "eff_addr", "store_value",
        "executed", "issued", "completed", "squashed",
        "branch_taken", "branch_mispredicted", "mem_mispeculated",
        "mis_integrated",
        # timing
        "fetch_cycle", "rename_cycle", "dispatch_cycle", "issue_cycle",
        "complete_cycle", "retire_cycle",
        # resources
        "rs_pending", "rs_port", "rs_priority", "in_lsq", "rob_index",
    )

    def __init__(self, seq: int, inst: StaticInst):
        self.seq = seq
        self.inst = inst
        self.op = inst.op
        self.cls = inst.cls
        self.info = inst.info
        self.pc = inst.pc
        self.pred_next_pc = None
        self.next_pc = None
        self.pred_taken = False
        self.call_depth = 0
        self.src_pregs: List[int] = []
        self.src_gens: List[int] = []
        self.dest_preg: Optional[int] = None
        self.dest_gen: int = 0
        self.old_dest_preg: Optional[int] = None
        self.old_dest_gen: int = 0
        self.map_checkpoint = None
        self.integrated = False
        self.reverse_integrated = False
        self.integration_distance = 0
        self.integration_status = None
        self.integration_refcount = 0
        self.it_hit = False
        self.it_entry = None
        self.suppressed_by_lisp = False
        self.result = None
        self.eff_addr = None
        self.store_value = None
        self.executed = False
        self.issued = False
        self.completed = False
        self.squashed = False
        self.branch_taken = False
        self.branch_mispredicted = False
        self.mem_mispeculated = False
        self.mis_integrated = False
        self.fetch_cycle = -1
        self.rename_cycle = -1
        self.dispatch_cycle = -1
        self.issue_cycle = -1
        self.complete_cycle = -1
        self.retire_cycle = -1
        #: Source operands still awaited while waiting in the scheduler.
        self.rs_pending = 0
        #: Issue port and selection priority, filled at scheduler insert.
        self.rs_port = None
        self.rs_priority = 1
        #: Honest load/store-queue membership flag (set/cleared by the LSQ).
        self.in_lsq = False
        self.rob_index = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = []
        if self.integrated:
            flags.append("INT")
        if self.reverse_integrated:
            flags.append("REV")
        if self.squashed:
            flags.append("SQ")
        return f"<DynInst #{self.seq} {self.inst} {' '.join(flags)}>"
