"""Alpha-flavoured RISC instruction-set architecture used by the simulator.

The paper evaluates register integration on the Alpha AXP ISA (SimpleScalar
3.0).  This package defines a small Alpha-like ISA that preserves every
structural property integration relies on:

* three-operand register instructions with separate register/immediate forms,
* a stack-pointer register (``sp``/``r30``) and return-address register
  (``ra``/``r26``) with the standard save/restore calling convention,
* displacement-addressed loads and stores (``ldq rd, imm(ra)``),
* ``lda`` as the address/stack-pointer adjustment instruction,
* conditional branches that test a single register against zero,
* direct and indirect calls plus ``ret``.

Public API re-exported here: :class:`Opcode`, :class:`StaticInst`,
:class:`DynInst`, :class:`Program`, :class:`ProgramBuilder`,
:func:`assemble`, and the register-name helpers.
"""

from repro.isa.registers import (
    NUM_LOGICAL_REGS,
    REG_FP_BASE,
    REG_GP,
    REG_RA,
    REG_SP,
    REG_ZERO,
    REG_FZERO,
    RETURN_VALUE_REG,
    ARG_REGS,
    CALLEE_SAVED_REGS,
    CALLER_SAVED_REGS,
    is_zero_reg,
    reg_index,
    reg_name,
)
from repro.isa.opcodes import (
    Opcode,
    OpClass,
    OpInfo,
    op_info,
    is_branch,
    is_call,
    is_cond_branch,
    is_direct_jump,
    is_fp,
    is_integrable,
    is_load,
    is_mem,
    is_return,
    is_store,
    is_syscall,
    load_counterpart,
)
from repro.isa.instruction import StaticInst, DynInst
from repro.isa.program import Program, ProgramBuilder
from repro.isa.assembler import assemble, AssemblerError

__all__ = [
    "NUM_LOGICAL_REGS",
    "REG_FP_BASE",
    "REG_GP",
    "REG_RA",
    "REG_SP",
    "REG_ZERO",
    "REG_FZERO",
    "RETURN_VALUE_REG",
    "ARG_REGS",
    "CALLEE_SAVED_REGS",
    "CALLER_SAVED_REGS",
    "is_zero_reg",
    "reg_index",
    "reg_name",
    "Opcode",
    "OpClass",
    "OpInfo",
    "op_info",
    "is_branch",
    "is_call",
    "is_cond_branch",
    "is_direct_jump",
    "is_fp",
    "is_integrable",
    "is_load",
    "is_mem",
    "is_return",
    "is_store",
    "is_syscall",
    "load_counterpart",
    "StaticInst",
    "DynInst",
    "Program",
    "ProgramBuilder",
    "assemble",
    "AssemblerError",
]
