"""Logical (architectural) register definitions.

The register file follows Alpha conventions with a unified numbering so the
renamer can use a single map table:

* indices 0..31  -- integer registers ``r0``..``r31``
* indices 32..63 -- floating-point registers ``f0``..``f31``

Special integer registers (Alpha calling convention):

* ``r30`` (``sp``)  -- stack pointer; the target of reverse integration's
  speculative memory bypassing.
* ``r26`` (``ra``)  -- return address register written by calls.
* ``r29`` (``gp``)  -- global pointer (used by workloads for globals).
* ``r31`` / ``f31`` -- hard-wired zero registers; never renamed.
"""

from __future__ import annotations

NUM_INT_REGS = 32
NUM_FP_REGS = 32
NUM_LOGICAL_REGS = NUM_INT_REGS + NUM_FP_REGS

REG_FP_BASE = NUM_INT_REGS

# Alpha calling-convention register assignments (integer indices).
RETURN_VALUE_REG = 0          # v0
ARG_REGS = (16, 17, 18, 19, 20, 21)   # a0-a5
REG_RA = 26                   # return address
REG_GP = 29                   # global pointer
REG_SP = 30                   # stack pointer
REG_ZERO = 31                 # integer zero register
REG_FZERO = REG_FP_BASE + 31  # floating-point zero register

# Caller-saved temporaries (t0-t11 => r1-r8, r22-r25) and callee-saved
# registers (s0-s6 => r9-r15).  Workload generators use these sets to build
# realistic prologue/epilogue save-restore sequences.
CALLER_SAVED_REGS = (1, 2, 3, 4, 5, 6, 7, 8, 22, 23, 24, 25)
CALLEE_SAVED_REGS = (9, 10, 11, 12, 13, 14, 15)

_INT_ALIASES = {
    "v0": 0,
    "t0": 1, "t1": 2, "t2": 3, "t3": 4, "t4": 5, "t5": 6, "t6": 7, "t7": 8,
    "s0": 9, "s1": 10, "s2": 11, "s3": 12, "s4": 13, "s5": 14, "s6": 15,
    "a0": 16, "a1": 17, "a2": 18, "a3": 19, "a4": 20, "a5": 21,
    "t8": 22, "t9": 23, "t10": 24, "t11": 25,
    "ra": 26, "t12": 27, "at": 28, "gp": 29, "sp": 30, "zero": 31,
}


def is_zero_reg(index: int) -> bool:
    """Return True for the hard-wired zero registers (r31 and f31)."""
    return index == REG_ZERO or index == REG_FZERO


def reg_index(name: str) -> int:
    """Translate a register name (``r5``, ``f2``, ``sp``, ``ra``, ...) to its
    unified index.

    Raises ``ValueError`` for unknown names.
    """
    name = name.strip().lower()
    if name in _INT_ALIASES:
        return _INT_ALIASES[name]
    if name.startswith("r") and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < NUM_INT_REGS:
            return idx
    if name.startswith("f") and name[1:].isdigit():
        idx = int(name[1:])
        if 0 <= idx < NUM_FP_REGS:
            return REG_FP_BASE + idx
    raise ValueError(f"unknown register name: {name!r}")


def reg_name(index: int) -> str:
    """Translate a unified register index back to a canonical name."""
    if not 0 <= index < NUM_LOGICAL_REGS:
        raise ValueError(f"register index out of range: {index}")
    if index == REG_SP:
        return "sp"
    if index == REG_RA:
        return "ra"
    if index == REG_GP:
        return "gp"
    if index == REG_ZERO:
        return "zero"
    if index < REG_FP_BASE:
        return f"r{index}"
    return f"f{index - REG_FP_BASE}"


def is_fp_reg(index: int) -> bool:
    """Return True if the unified index names a floating-point register."""
    return index >= REG_FP_BASE
