"""Opcode definitions and static metadata.

Each opcode carries an :class:`OpInfo` record describing its operand shape
(number of register sources, immediate, destination), its execution class and
latency, and whether it is eligible for register integration.  Following the
paper, system calls, stores and direct jumps are never integrated; everything
that produces a register value (plus conditional branches) is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional-unit / scheduling class of an opcode."""

    IALU = "ialu"            # simple integer ALU
    IMUL = "imul"            # complex integer (multiply)
    LOAD = "load"
    STORE = "store"
    COND_BRANCH = "cbr"
    DIRECT_JUMP = "jump"     # unconditional direct branch (no link)
    CALL_DIRECT = "call"     # direct call, writes the return-address register
    CALL_INDIRECT = "icall"  # indirect call
    INDIRECT_JUMP = "ijump"  # indirect jump (no link)
    RETURN = "ret"
    FP_ADD = "fpadd"
    FP_MUL = "fpmul"
    FP_DIV = "fpdiv"
    SYSCALL = "syscall"
    NOP = "nop"


class Opcode(enum.Enum):
    """The instruction opcodes understood by the simulator."""

    # Integer ALU, register-register.
    ADDQ = "addq"
    SUBQ = "subq"
    MULQ = "mulq"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    CMPEQ = "cmpeq"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPULT = "cmpult"
    # Integer ALU, register-immediate.
    ADDQI = "addqi"
    SUBQI = "subqi"
    MULQI = "mulqi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLLI = "slli"
    SRLI = "srli"
    SRAI = "srai"
    CMPEQI = "cmpeqi"
    CMPLTI = "cmplti"
    CMPLEI = "cmplei"
    # Address / stack-pointer arithmetic (rd = ra + imm).
    LDA = "lda"
    # Loads (rd = mem[ra + imm]).
    LDQ = "ldq"
    LDL = "ldl"
    LDT = "ldt"
    # Stores (mem[rb + imm] = ra;  ra is the data register, rb the base).
    STQ = "stq"
    STL = "stl"
    STT = "stt"
    # Control flow.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BLE = "ble"
    BGT = "bgt"
    BGE = "bge"
    BR = "br"
    BSR = "bsr"
    JSR = "jsr"
    JMP = "jmp"
    RET = "ret"
    # Floating point.
    ADDT = "addt"
    SUBT = "subt"
    MULT = "mult"
    DIVT = "divt"
    CPYS = "cpys"
    ITOFT = "itoft"
    FTOIT = "ftoit"
    # System.
    SYSCALL = "syscall"
    NOP = "nop"


#: Classes that can redirect the PC.
_BRANCH_CLASSES = frozenset({
    OpClass.COND_BRANCH, OpClass.DIRECT_JUMP, OpClass.CALL_DIRECT,
    OpClass.CALL_INDIRECT, OpClass.INDIRECT_JUMP, OpClass.RETURN,
})


@dataclass(frozen=True)
class OpInfo:
    """Static metadata for an opcode.

    Besides the declared fields, every instance precomputes the class
    predicates (``is_load``, ``is_store``, ``is_mem``, ``is_cond_branch``,
    ``is_branch``) as plain attributes: the per-cycle pipeline loops test
    these millions of times per simulation, and an attribute read avoids
    re-hashing enum members on every query.
    """

    cls: OpClass
    latency: int = 1
    num_srcs: int = 2
    has_imm: bool = False
    writes_dest: bool = True
    integrable: bool = True
    fp: bool = False

    def __post_init__(self):
        cls = self.cls
        object.__setattr__(self, "is_load", cls is OpClass.LOAD)
        object.__setattr__(self, "is_store", cls is OpClass.STORE)
        object.__setattr__(self, "is_mem",
                           cls is OpClass.LOAD or cls is OpClass.STORE)
        object.__setattr__(self, "is_cond_branch",
                           cls is OpClass.COND_BRANCH)
        object.__setattr__(self, "is_branch", cls in _BRANCH_CLASSES)
        # Pipeline routing predicates (see repro.core.stages.base for the
        # class groupings they mirror).
        object.__setattr__(self, "is_alu", cls in (
            OpClass.IALU, OpClass.IMUL, OpClass.FP_ADD, OpClass.FP_MUL,
            OpClass.FP_DIV))
        object.__setattr__(self, "is_indirect_ctl", cls in (
            OpClass.CALL_INDIRECT, OpClass.INDIRECT_JUMP, OpClass.RETURN))
        rename_complete = cls in (
            OpClass.DIRECT_JUMP, OpClass.CALL_DIRECT, OpClass.SYSCALL,
            OpClass.NOP)
        object.__setattr__(self, "rename_complete", rename_complete)
        object.__setattr__(self, "needs_rs", not rename_complete)
        # Issue-port class and selection priority used by the scheduler
        # (repro.core.scheduler); both are functions of cls alone, so they
        # are precomputed here with the other per-opcode metadata.
        if cls is OpClass.LOAD:
            port, port_code = "load", 2
        elif cls is OpClass.STORE:
            port, port_code = "store", 3
        elif cls in (OpClass.IMUL, OpClass.FP_ADD, OpClass.FP_MUL,
                     OpClass.FP_DIV):
            port, port_code = "complex", 1
        else:
            port, port_code = "simple", 0
        object.__setattr__(self, "issue_port", port)
        #: Int mirror of ``issue_port`` (indexes the scheduler's flat
        #: per-port count/limit lists; see repro.core.window).
        object.__setattr__(self, "port_code", port_code)
        priority = 0 if cls in (
            OpClass.LOAD, OpClass.COND_BRANCH, OpClass.FP_ADD,
            OpClass.FP_MUL, OpClass.FP_DIV, OpClass.CALL_INDIRECT,
            OpClass.INDIRECT_JUMP, OpClass.RETURN) else 1
        object.__setattr__(self, "issue_priority", priority)
        #: ``(priority << SEQ_BITS) | seq`` sorts by (priority, age) as a
        #: plain int; the shifted half is precomputed here (SEQ_BITS = 48,
        #: mirrored from repro.core.window to avoid an import cycle).
        object.__setattr__(self, "sort_bias", priority << 48)
        # Execute-stage dispatch code (repro.core.window KIND_* constants):
        # the order the execute stage tests its cases in, flattened to an
        # int so selection carries the dispatch decision with it.
        if self.is_alu:
            kind = 0
        elif cls is OpClass.COND_BRANCH:
            kind = 1
        elif self.is_indirect_ctl:
            kind = 2
        elif cls is OpClass.LOAD:
            kind = 3
        elif cls is OpClass.STORE:
            kind = 4
        else:
            kind = -1            # never enters the reservation stations
        object.__setattr__(self, "kind_code", kind)


_RR = dict(cls=OpClass.IALU, latency=1, num_srcs=2, has_imm=False)
_RI = dict(cls=OpClass.IALU, latency=1, num_srcs=1, has_imm=True)
_LD = dict(cls=OpClass.LOAD, latency=1, num_srcs=1, has_imm=True)
_ST = dict(cls=OpClass.STORE, latency=1, num_srcs=2, has_imm=True,
           writes_dest=False, integrable=False)
_BR = dict(cls=OpClass.COND_BRANCH, latency=1, num_srcs=1, has_imm=True,
           writes_dest=False, integrable=True)
_FP2 = dict(cls=OpClass.FP_ADD, latency=2, num_srcs=2, fp=True)

OPINFO: dict = {
    Opcode.ADDQ: OpInfo(**_RR),
    Opcode.SUBQ: OpInfo(**_RR),
    Opcode.MULQ: OpInfo(cls=OpClass.IMUL, latency=3, num_srcs=2),
    Opcode.AND: OpInfo(**_RR),
    Opcode.OR: OpInfo(**_RR),
    Opcode.XOR: OpInfo(**_RR),
    Opcode.SLL: OpInfo(**_RR),
    Opcode.SRL: OpInfo(**_RR),
    Opcode.SRA: OpInfo(**_RR),
    Opcode.CMPEQ: OpInfo(**_RR),
    Opcode.CMPLT: OpInfo(**_RR),
    Opcode.CMPLE: OpInfo(**_RR),
    Opcode.CMPULT: OpInfo(**_RR),
    Opcode.ADDQI: OpInfo(**_RI),
    Opcode.SUBQI: OpInfo(**_RI),
    Opcode.MULQI: OpInfo(cls=OpClass.IMUL, latency=3, num_srcs=1, has_imm=True),
    Opcode.ANDI: OpInfo(**_RI),
    Opcode.ORI: OpInfo(**_RI),
    Opcode.XORI: OpInfo(**_RI),
    Opcode.SLLI: OpInfo(**_RI),
    Opcode.SRLI: OpInfo(**_RI),
    Opcode.SRAI: OpInfo(**_RI),
    Opcode.CMPEQI: OpInfo(**_RI),
    Opcode.CMPLTI: OpInfo(**_RI),
    Opcode.CMPLEI: OpInfo(**_RI),
    Opcode.LDA: OpInfo(**_RI),
    Opcode.LDQ: OpInfo(**_LD),
    Opcode.LDL: OpInfo(**_LD),
    Opcode.LDT: OpInfo(cls=OpClass.LOAD, latency=1, num_srcs=1, has_imm=True,
                       fp=True),
    Opcode.STQ: OpInfo(**_ST),
    Opcode.STL: OpInfo(**_ST),
    Opcode.STT: OpInfo(cls=OpClass.STORE, latency=1, num_srcs=2, has_imm=True,
                       writes_dest=False, integrable=False, fp=True),
    Opcode.BEQ: OpInfo(**_BR),
    Opcode.BNE: OpInfo(**_BR),
    Opcode.BLT: OpInfo(**_BR),
    Opcode.BLE: OpInfo(**_BR),
    Opcode.BGT: OpInfo(**_BR),
    Opcode.BGE: OpInfo(**_BR),
    Opcode.BR: OpInfo(cls=OpClass.DIRECT_JUMP, latency=1, num_srcs=0,
                      has_imm=True, writes_dest=False, integrable=False),
    Opcode.BSR: OpInfo(cls=OpClass.CALL_DIRECT, latency=1, num_srcs=0,
                       has_imm=True, writes_dest=True, integrable=False),
    Opcode.JSR: OpInfo(cls=OpClass.CALL_INDIRECT, latency=1, num_srcs=1,
                       has_imm=False, writes_dest=True, integrable=False),
    Opcode.JMP: OpInfo(cls=OpClass.INDIRECT_JUMP, latency=1, num_srcs=1,
                       has_imm=False, writes_dest=False, integrable=False),
    Opcode.RET: OpInfo(cls=OpClass.RETURN, latency=1, num_srcs=1,
                       has_imm=False, writes_dest=False, integrable=False),
    Opcode.ADDT: OpInfo(**_FP2),
    Opcode.SUBT: OpInfo(**_FP2),
    Opcode.MULT: OpInfo(cls=OpClass.FP_MUL, latency=4, num_srcs=2, fp=True),
    Opcode.DIVT: OpInfo(cls=OpClass.FP_DIV, latency=12, num_srcs=2, fp=True),
    Opcode.CPYS: OpInfo(cls=OpClass.FP_ADD, latency=1, num_srcs=1, fp=True),
    Opcode.ITOFT: OpInfo(cls=OpClass.FP_ADD, latency=1, num_srcs=1, fp=True),
    Opcode.FTOIT: OpInfo(cls=OpClass.FP_ADD, latency=1, num_srcs=1, fp=True),
    Opcode.SYSCALL: OpInfo(cls=OpClass.SYSCALL, latency=1, num_srcs=0,
                           has_imm=True, writes_dest=False, integrable=False),
    Opcode.NOP: OpInfo(cls=OpClass.NOP, latency=1, num_srcs=0,
                       writes_dest=False, integrable=False),
}

# Stable small-int identity (the enum declaration position) used by the
# integration-table index function; attached here so static instructions can
# precompute their index key without hashing enum members per lookup.
for _i, _op in enumerate(Opcode):
    object.__setattr__(OPINFO[_op], "opcode_id", _i)
del _i, _op

# Mapping from store opcodes to the load opcode that reads back the stored
# value.  Reverse integration uses this to create the complementary load
# entry when a store is renamed.
_STORE_TO_LOAD = {
    Opcode.STQ: Opcode.LDQ,
    Opcode.STL: Opcode.LDL,
    Opcode.STT: Opcode.LDT,
}

_OPCODE_BY_NAME = {op.value: op for op in Opcode}


def op_info(op: Opcode) -> OpInfo:
    """Return the :class:`OpInfo` metadata for ``op``."""
    return OPINFO[op]


def opcode_from_name(name: str) -> Opcode:
    """Look an opcode up by its mnemonic (``"addq"``, ``"ldq"``, ...)."""
    try:
        return _OPCODE_BY_NAME[name.lower()]
    except KeyError:
        raise ValueError(f"unknown opcode mnemonic: {name!r}") from None


def is_load(op: Opcode) -> bool:
    return OPINFO[op].is_load


def is_store(op: Opcode) -> bool:
    return OPINFO[op].is_store


def is_mem(op: Opcode) -> bool:
    return OPINFO[op].is_mem


def is_cond_branch(op: Opcode) -> bool:
    return OPINFO[op].is_cond_branch


def is_branch(op: Opcode) -> bool:
    """True for any instruction that can redirect the PC."""
    return OPINFO[op].is_branch


def is_call(op: Opcode) -> bool:
    return OPINFO[op].cls in (OpClass.CALL_DIRECT, OpClass.CALL_INDIRECT)


def is_return(op: Opcode) -> bool:
    return OPINFO[op].cls is OpClass.RETURN


def is_direct_jump(op: Opcode) -> bool:
    return OPINFO[op].cls is OpClass.DIRECT_JUMP


def is_syscall(op: Opcode) -> bool:
    return OPINFO[op].cls is OpClass.SYSCALL


def is_fp(op: Opcode) -> bool:
    return OPINFO[op].fp


def is_integrable(op: Opcode) -> bool:
    """Whether the paper's integration mechanism ever considers this opcode."""
    return OPINFO[op].integrable


def load_counterpart(store_op: Opcode) -> Opcode:
    """Return the load opcode that reads back what ``store_op`` wrote.

    Used by reverse integration: renaming ``stq ra, imm(rb)`` creates the IT
    entry ``<ldq/imm, rb, -, ra>``.
    """
    try:
        return _STORE_TO_LOAD[store_op]
    except KeyError:
        raise ValueError(f"{store_op} is not a store opcode") from None
