"""Operational semantics shared by the functional emulator, the out-of-order
execute stage and the DIVA checker.

Keeping a single ``evaluate`` / ``branch_taken`` / ``effective_address``
implementation guarantees that the timing core and the in-order checker agree
on instruction behaviour, so any disagreement observed by DIVA is a genuine
mis-integration (or wrong-path value) rather than a semantic divergence.
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1


def to_signed(value: int, bits: int = 64) -> int:
    """Interpret an unsigned ``bits``-wide value as a two's-complement int."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int = 64) -> int:
    """Wrap a Python int into ``bits``-wide unsigned representation."""
    return value & ((1 << bits) - 1)


def _shift_amount(value: int) -> int:
    return int(value) & 0x3F


def evaluate(op: Opcode, a, b, imm):
    """Compute the register result of a non-memory, non-control instruction.

    ``a`` and ``b`` are the source operand values (``ra`` and ``rb``), ``imm``
    the immediate.  Integer results are returned as 64-bit unsigned Python
    ints; floating-point results as Python floats.

    Wrong-path execution in the timing core can feed an integer operation a
    register that last held a floating-point value; such operands are
    truncated to integers (the result is discarded at the squash anyway).
    """
    if op is Opcode.ADDT:
        return float(a) + float(b)
    if op is Opcode.SUBT:
        return float(a) - float(b)
    if op is Opcode.MULT:
        return float(a) * float(b)
    if op is Opcode.DIVT:
        return float(a) / float(b) if b else float("inf")
    if op is Opcode.CPYS:
        return float(a)
    if op is Opcode.ITOFT:
        return float(to_signed(int(a)))
    if op is Opcode.FTOIT:
        return to_unsigned(int(a))
    if isinstance(a, float):
        a = int(a)
    if isinstance(b, float):
        b = int(b)
    if op is Opcode.ADDQ:
        return (a + b) & MASK64
    if op is Opcode.SUBQ:
        return (a - b) & MASK64
    if op is Opcode.MULQ:
        return (to_signed(a) * to_signed(b)) & MASK64
    if op is Opcode.AND:
        return a & b
    if op is Opcode.OR:
        return a | b
    if op is Opcode.XOR:
        return (a ^ b) & MASK64
    if op is Opcode.SLL:
        return (a << _shift_amount(b)) & MASK64
    if op is Opcode.SRL:
        return (a & MASK64) >> _shift_amount(b)
    if op is Opcode.SRA:
        return to_unsigned(to_signed(a) >> _shift_amount(b))
    if op is Opcode.CMPEQ:
        return 1 if a == b else 0
    if op is Opcode.CMPLT:
        return 1 if to_signed(a) < to_signed(b) else 0
    if op is Opcode.CMPLE:
        return 1 if to_signed(a) <= to_signed(b) else 0
    if op is Opcode.CMPULT:
        return 1 if (a & MASK64) < (b & MASK64) else 0
    if op in (Opcode.ADDQI, Opcode.LDA):
        return (a + imm) & MASK64
    if op is Opcode.SUBQI:
        return (a - imm) & MASK64
    if op is Opcode.MULQI:
        return (to_signed(a) * imm) & MASK64
    if op is Opcode.ANDI:
        return a & (imm & MASK64)
    if op is Opcode.ORI:
        return a | (imm & MASK64)
    if op is Opcode.XORI:
        return (a ^ imm) & MASK64
    if op is Opcode.SLLI:
        return (a << _shift_amount(imm)) & MASK64
    if op is Opcode.SRLI:
        return (a & MASK64) >> _shift_amount(imm)
    if op is Opcode.SRAI:
        return to_unsigned(to_signed(a) >> _shift_amount(imm))
    if op is Opcode.CMPEQI:
        return 1 if to_signed(a) == imm else 0
    if op is Opcode.CMPLTI:
        return 1 if to_signed(a) < imm else 0
    if op is Opcode.CMPLEI:
        return 1 if to_signed(a) <= imm else 0
    raise ValueError(f"evaluate() does not handle opcode {op}")


def branch_taken(op: Opcode, a) -> bool:
    """Resolve the direction of a conditional branch with condition value ``a``."""
    sa = to_signed(int(a))
    if op is Opcode.BEQ:
        return sa == 0
    if op is Opcode.BNE:
        return sa != 0
    if op is Opcode.BLT:
        return sa < 0
    if op is Opcode.BLE:
        return sa <= 0
    if op is Opcode.BGT:
        return sa > 0
    if op is Opcode.BGE:
        return sa >= 0
    raise ValueError(f"{op} is not a conditional branch")


def effective_address(base, imm: int) -> int:
    """Compute a load/store effective address."""
    return (int(base) + int(imm)) & MASK64


def narrow_load_value(op: Opcode, value):
    """Apply the load-width semantics (``ldl`` sign-extends 32 bits)."""
    if op is Opcode.LDL:
        return to_unsigned(to_signed(int(value) & MASK32, 32))
    return value


def narrow_store_value(op: Opcode, value):
    """Apply the store-width semantics (``stl`` keeps the low 32 bits)."""
    if op is Opcode.STL:
        return int(value) & MASK32
    return value
