"""Operational semantics shared by the functional emulator, the out-of-order
execute stage and the DIVA checker.

Keeping a single ``evaluate`` / ``branch_taken`` / ``effective_address``
implementation guarantees that the timing core and the in-order checker agree
on instruction behaviour, so any disagreement observed by DIVA is a genuine
mis-integration (or wrong-path value) rather than a semantic divergence.
"""

from __future__ import annotations

from repro.isa.opcodes import Opcode

MASK64 = (1 << 64) - 1
MASK32 = (1 << 32) - 1


def to_signed(value: int, bits: int = 64) -> int:
    """Interpret an unsigned ``bits``-wide value as a two's-complement int."""
    value &= (1 << bits) - 1
    if value >= 1 << (bits - 1):
        value -= 1 << bits
    return value


def to_unsigned(value: int, bits: int = 64) -> int:
    """Wrap a Python int into ``bits``-wide unsigned representation."""
    return value & ((1 << bits) - 1)


def _shift_amount(value: int) -> int:
    return int(value) & 0x3F


# Per-opcode handlers, split so integer handlers see already-coerced ints.
# Dispatch through a dict costs one (cached) hash instead of walking an
# identity-comparison chain for every executed instruction.
_FP_EVAL = {
    Opcode.ADDT: lambda a, b, imm: float(a) + float(b),
    Opcode.SUBT: lambda a, b, imm: float(a) - float(b),
    Opcode.MULT: lambda a, b, imm: float(a) * float(b),
    Opcode.DIVT: lambda a, b, imm: float(a) / float(b) if b else float("inf"),
    Opcode.CPYS: lambda a, b, imm: float(a),
    Opcode.ITOFT: lambda a, b, imm: float(to_signed(int(a))),
    Opcode.FTOIT: lambda a, b, imm: to_unsigned(int(a)),
}

_INT_EVAL = {
    Opcode.ADDQ: lambda a, b, imm: (a + b) & MASK64,
    Opcode.SUBQ: lambda a, b, imm: (a - b) & MASK64,
    Opcode.MULQ: lambda a, b, imm: (to_signed(a) * to_signed(b)) & MASK64,
    Opcode.AND: lambda a, b, imm: a & b,
    Opcode.OR: lambda a, b, imm: a | b,
    Opcode.XOR: lambda a, b, imm: (a ^ b) & MASK64,
    Opcode.SLL: lambda a, b, imm: (a << _shift_amount(b)) & MASK64,
    Opcode.SRL: lambda a, b, imm: (a & MASK64) >> _shift_amount(b),
    Opcode.SRA: lambda a, b, imm: to_unsigned(to_signed(a) >> _shift_amount(b)),
    Opcode.CMPEQ: lambda a, b, imm: 1 if a == b else 0,
    Opcode.CMPLT: lambda a, b, imm: 1 if to_signed(a) < to_signed(b) else 0,
    Opcode.CMPLE: lambda a, b, imm: 1 if to_signed(a) <= to_signed(b) else 0,
    Opcode.CMPULT: lambda a, b, imm: 1 if (a & MASK64) < (b & MASK64) else 0,
    Opcode.ADDQI: lambda a, b, imm: (a + imm) & MASK64,
    Opcode.LDA: lambda a, b, imm: (a + imm) & MASK64,
    Opcode.SUBQI: lambda a, b, imm: (a - imm) & MASK64,
    Opcode.MULQI: lambda a, b, imm: (to_signed(a) * imm) & MASK64,
    Opcode.ANDI: lambda a, b, imm: a & (imm & MASK64),
    Opcode.ORI: lambda a, b, imm: a | (imm & MASK64),
    Opcode.XORI: lambda a, b, imm: (a ^ imm) & MASK64,
    Opcode.SLLI: lambda a, b, imm: (a << _shift_amount(imm)) & MASK64,
    Opcode.SRLI: lambda a, b, imm: (a & MASK64) >> _shift_amount(imm),
    Opcode.SRAI: lambda a, b, imm: to_unsigned(
        to_signed(a) >> _shift_amount(imm)),
    Opcode.CMPEQI: lambda a, b, imm: 1 if to_signed(a) == imm else 0,
    Opcode.CMPLTI: lambda a, b, imm: 1 if to_signed(a) < imm else 0,
    Opcode.CMPLEI: lambda a, b, imm: 1 if to_signed(a) <= imm else 0,
}


def evaluate(op: Opcode, a, b, imm):
    """Compute the register result of a non-memory, non-control instruction.

    ``a`` and ``b`` are the source operand values (``ra`` and ``rb``), ``imm``
    the immediate.  Integer results are returned as 64-bit unsigned Python
    ints; floating-point results as Python floats.

    Wrong-path execution in the timing core can feed an integer operation a
    register that last held a floating-point value; such operands are
    truncated to integers (the result is discarded at the squash anyway).
    """
    fn = _FP_EVAL.get(op)
    if fn is not None:
        return fn(a, b, imm)
    if isinstance(a, float):
        a = int(a)
    if isinstance(b, float):
        b = int(b)
    fn = _INT_EVAL.get(op)
    if fn is not None:
        return fn(a, b, imm)
    raise ValueError(f"evaluate() does not handle opcode {op}")


def branch_taken(op: Opcode, a) -> bool:
    """Resolve the direction of a conditional branch with condition value ``a``."""
    sa = to_signed(int(a))
    if op is Opcode.BEQ:
        return sa == 0
    if op is Opcode.BNE:
        return sa != 0
    if op is Opcode.BLT:
        return sa < 0
    if op is Opcode.BLE:
        return sa <= 0
    if op is Opcode.BGT:
        return sa > 0
    if op is Opcode.BGE:
        return sa >= 0
    raise ValueError(f"{op} is not a conditional branch")


def effective_address(base, imm: int) -> int:
    """Compute a load/store effective address."""
    return (int(base) + int(imm)) & MASK64


def narrow_load_value(op: Opcode, value):
    """Apply the load-width semantics (``ldl`` sign-extends 32 bits)."""
    if op is Opcode.LDL:
        return to_unsigned(to_signed(int(value) & MASK32, 32))
    return value


def narrow_store_value(op: Opcode, value):
    """Apply the store-width semantics (``stl`` keeps the low 32 bits)."""
    if op is Opcode.STL:
        return int(value) & MASK32
    return value


# ----------------------------------------------------------------------
# Precomputed per-opcode dispatch, attached to the shared OpInfo records.
#
# ``evaluate`` / ``branch_taken`` pay a dict probe (hashing an enum member)
# per executed instruction; the hot loops instead read these attributes off
# ``inst.info``, which they already hold:
#
# * ``eval_fn``      -- the evaluate handler, or None for non-ALU ops;
# * ``eval_is_fp``   -- True when the handler is a float handler (integer
#                       handlers need the wrong-path float->int coercion
#                       that ``evaluate`` applies);
# * ``branch_fn``    -- signed-condition test for conditional branches;
# * ``is_ldl`` / ``is_stl`` -- the only opcodes with width narrowing.
#
# The semantics stay defined once, here; the attributes are only a
# dispatch-table transposition.
# ----------------------------------------------------------------------
_BRANCH_FN = {
    Opcode.BEQ: lambda sa: sa == 0,
    Opcode.BNE: lambda sa: sa != 0,
    Opcode.BLT: lambda sa: sa < 0,
    Opcode.BLE: lambda sa: sa <= 0,
    Opcode.BGT: lambda sa: sa > 0,
    Opcode.BGE: lambda sa: sa >= 0,
}


def _attach_dispatch() -> None:
    from repro.isa.opcodes import OPINFO

    for op, info in OPINFO.items():
        fp_fn = _FP_EVAL.get(op)
        int_fn = _INT_EVAL.get(op)
        object.__setattr__(info, "eval_fn", fp_fn or int_fn)
        object.__setattr__(info, "eval_is_fp", fp_fn is not None)
        object.__setattr__(info, "branch_fn", _BRANCH_FN.get(op))
        object.__setattr__(info, "is_ldl", op is Opcode.LDL)
        object.__setattr__(info, "is_stl", op is Opcode.STL)


_attach_dispatch()
