"""A small text assembler for the simulator's ISA.

The assembler exists so tests and examples can express programs readably::

    func:
        lda   sp, -16(sp)
        stq   ra, 0(sp)
        addqi v0, a0, 1
        ldq   ra, 0(sp)
        lda   sp, 16(sp)
        ret

Syntax summary
--------------
* one instruction per line; ``#`` and ``;`` start comments
* ``label:`` on its own line or before an instruction
* register operands use Alpha names (``r0``-``r31``, ``f0``-``f31``, ``sp``,
  ``ra``, ``t0``, ``s0``, ``a0``, ``v0``, ``zero``, ...)
* memory operands are written ``disp(base)``
* branch/call targets are labels or absolute integers
* pseudo-instructions: ``mov rd, ra``; ``li rd, imm``
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.isa.opcodes import Opcode, OPINFO, OpClass, opcode_from_name
from repro.isa.program import Program, ProgramBuilder


class AssemblerError(ValueError):
    """Raised for malformed assembly input."""


_MEM_RE = re.compile(r"^(-?\w+)\((\w+)\)$")
_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):$")


def _split_operands(text: str) -> List[str]:
    if not text:
        return []
    return [tok.strip() for tok in text.split(",") if tok.strip()]


def _parse_int(tok: str) -> Optional[int]:
    try:
        return int(tok, 0)
    except ValueError:
        return None


def _parse_mem(tok: str):
    """Parse ``disp(base)`` into ``(disp, base_name)`` or return ``None``."""
    match = _MEM_RE.match(tok.replace(" ", ""))
    if not match:
        return None
    disp = _parse_int(match.group(1))
    if disp is None:
        raise AssemblerError(f"bad displacement in {tok!r}")
    return disp, match.group(2)


def assemble(text: str, name: str = "program", entry=0) -> Program:
    """Assemble ``text`` into a :class:`Program`."""
    builder = ProgramBuilder(name=name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue
        # A label may share the line with an instruction.
        while True:
            parts = line.split(None, 1)
            head = parts[0]
            label_match = _LABEL_RE.match(head)
            if label_match:
                builder.label(label_match.group(1))
                line = parts[1].strip() if len(parts) > 1 else ""
                if not line:
                    break
                continue
            break
        if not line:
            continue
        _assemble_line(builder, line, lineno)
    return builder.build(entry=entry)


def _assemble_line(builder: ProgramBuilder, line: str, lineno: int) -> None:
    parts = line.split(None, 1)
    mnemonic = parts[0].lower()
    operands = _split_operands(parts[1] if len(parts) > 1 else "")
    try:
        if mnemonic == "mov":
            _expect(operands, 2, line, lineno)
            builder.mov(operands[0], operands[1])
            return
        if mnemonic == "li":
            _expect(operands, 2, line, lineno)
            imm = _require_int(operands[1], line, lineno)
            builder.li(operands[0], imm)
            return
        op = opcode_from_name(mnemonic)
    except ValueError as exc:
        raise AssemblerError(f"line {lineno}: {exc}") from None
    info = OPINFO[op]
    cls = info.cls

    if cls is OpClass.LOAD or op is Opcode.LDA:
        _expect(operands, 2, line, lineno)
        mem = _parse_mem(operands[1])
        if mem is None:
            raise AssemblerError(f"line {lineno}: expected disp(base): {line!r}")
        disp, base = mem
        builder.emit(op, rd=operands[0], ra=base, imm=disp)
    elif cls is OpClass.STORE:
        _expect(operands, 2, line, lineno)
        mem = _parse_mem(operands[1])
        if mem is None:
            raise AssemblerError(f"line {lineno}: expected disp(base): {line!r}")
        disp, base = mem
        builder.emit(op, ra=operands[0], rb=base, imm=disp)
    elif cls is OpClass.COND_BRANCH:
        _expect(operands, 2, line, lineno)
        builder.emit(op, ra=operands[0], target=_target(operands[1]))
    elif cls is OpClass.DIRECT_JUMP:
        _expect(operands, 1, line, lineno)
        builder.emit(op, target=_target(operands[0]))
    elif cls is OpClass.CALL_DIRECT:
        if len(operands) == 1:
            builder.bsr(_target(operands[0]))
        else:
            _expect(operands, 2, line, lineno)
            builder.emit(op, rd=operands[0], target=_target(operands[1]))
    elif cls in (OpClass.CALL_INDIRECT, OpClass.INDIRECT_JUMP):
        reg = operands[-1].strip("()")
        if cls is OpClass.CALL_INDIRECT and len(operands) == 2:
            builder.emit(op, rd=operands[0], ra=reg)
        else:
            builder.emit(op, rd="ra" if cls is OpClass.CALL_INDIRECT else None,
                         ra=reg)
    elif cls is OpClass.RETURN:
        reg = operands[0].strip("()") if operands else "ra"
        builder.ret(reg)
    elif cls is OpClass.SYSCALL:
        code = _require_int(operands[0], line, lineno) if operands else 0
        builder.syscall(code)
    elif cls is OpClass.NOP:
        builder.nop()
    else:
        # Register ALU / FP forms: rd, ra[, rb | imm]
        if info.has_imm:
            _expect(operands, 3, line, lineno)
            imm = _require_int(operands[2], line, lineno)
            builder.emit(op, rd=operands[0], ra=operands[1], imm=imm)
        elif info.num_srcs == 1:
            _expect(operands, 2, line, lineno)
            builder.emit(op, rd=operands[0], ra=operands[1])
        else:
            _expect(operands, 3, line, lineno)
            builder.emit(op, rd=operands[0], ra=operands[1], rb=operands[2])


def _expect(operands: List[str], count: int, line: str, lineno: int) -> None:
    if len(operands) != count:
        raise AssemblerError(
            f"line {lineno}: expected {count} operands in {line!r}, "
            f"got {len(operands)}")


def _require_int(tok: str, line: str, lineno: int) -> int:
    value = _parse_int(tok)
    if value is None:
        raise AssemblerError(f"line {lineno}: expected integer, got {tok!r} "
                             f"in {line!r}")
    return value


def _target(tok: str):
    value = _parse_int(tok)
    return value if value is not None else tok
