"""Program container and programmatic builder.

A :class:`Program` is an immutable sequence of :class:`StaticInst` addressed
by PC (4 bytes per instruction), plus optional initial data-memory contents.
:class:`ProgramBuilder` is the mutable construction API used both by the text
assembler and by the synthetic SPEC-like workload generators.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.isa.instruction import StaticInst
from repro.isa.opcodes import Opcode, OPINFO, OpClass, opcode_from_name
from repro.isa.registers import REG_RA, reg_index

INST_SIZE = 4

RegLike = Union[int, str]
TargetLike = Union[int, str]


def _reg(r: Optional[RegLike]) -> Optional[int]:
    if r is None:
        return None
    if isinstance(r, str):
        return reg_index(r)
    return int(r)


class Program:
    """An assembled program: instructions, labels and initial data memory."""

    def __init__(self, insts: List[StaticInst], labels: Dict[str, int],
                 entry: int = 0, data: Optional[Dict[int, int]] = None,
                 name: str = "program"):
        self._insts = list(insts)
        self.labels = dict(labels)
        self.entry = entry
        self.data = dict(data or {})
        self.name = name
        self._by_pc = {inst.pc: inst for inst in self._insts}

    def __len__(self) -> int:
        return len(self._insts)

    def __iter__(self) -> Iterator[StaticInst]:
        return iter(self._insts)

    def at(self, pc: int) -> Optional[StaticInst]:
        """Return the instruction at ``pc`` or ``None`` if it falls outside
        the program (the pipeline treats that as the end of the run)."""
        return self._by_pc.get(pc)

    def contains(self, pc: int) -> bool:
        return pc in self._by_pc

    def label_pc(self, name: str) -> int:
        return self.labels[name]

    @property
    def max_pc(self) -> int:
        return self._insts[-1].pc if self._insts else 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {self.name!r}: {len(self)} instructions>"


class ProgramBuilder:
    """Incrementally build a :class:`Program`.

    Branch and call targets may be given as label strings; forward references
    are resolved at :meth:`build` time.
    """

    def __init__(self, name: str = "program"):
        self.name = name
        self._records: List[dict] = []
        self._labels: Dict[str, int] = {}
        self._data: Dict[int, int] = {}
        self._pending_label: List[str] = []

    # ------------------------------------------------------------------
    # construction primitives
    # ------------------------------------------------------------------
    @property
    def next_pc(self) -> int:
        return len(self._records) * INST_SIZE

    def label(self, name: str) -> int:
        """Attach ``name`` to the next emitted instruction's PC."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        pc = self.next_pc
        self._labels[name] = pc
        return pc

    def set_data(self, addr: int, value: int) -> None:
        """Pre-initialise a data-memory word."""
        self._data[addr] = value

    def emit(self, op: Union[Opcode, str], rd: Optional[RegLike] = None,
             ra: Optional[RegLike] = None, rb: Optional[RegLike] = None,
             imm: Optional[int] = None,
             target: Optional[TargetLike] = None) -> int:
        """Emit one instruction; returns its PC."""
        if isinstance(op, str):
            op = opcode_from_name(op)
        pc = self.next_pc
        self._records.append(dict(pc=pc, op=op, rd=_reg(rd), ra=_reg(ra),
                                  rb=_reg(rb), imm=imm, target=target))
        return pc

    # ------------------------------------------------------------------
    # convenience emitters (used heavily by the workload generators)
    # ------------------------------------------------------------------
    def rr(self, op: Union[Opcode, str], rd: RegLike, ra: RegLike,
           rb: RegLike) -> int:
        """Register-register ALU/FP operation."""
        return self.emit(op, rd=rd, ra=ra, rb=rb)

    def ri(self, op: Union[Opcode, str], rd: RegLike, ra: RegLike,
           imm: int) -> int:
        """Register-immediate ALU operation."""
        return self.emit(op, rd=rd, ra=ra, imm=imm)

    def lda(self, rd: RegLike, imm: int, base: RegLike) -> int:
        """``lda rd, imm(base)`` -- address / stack-pointer arithmetic."""
        return self.emit(Opcode.LDA, rd=rd, ra=base, imm=imm)

    def li(self, rd: RegLike, value: int) -> int:
        """Load-immediate pseudo-instruction (``lda rd, value(zero)``)."""
        return self.emit(Opcode.LDA, rd=rd, ra="zero", imm=value)

    def mov(self, rd: RegLike, ra: RegLike) -> int:
        """Register move pseudo-instruction (``or rd, ra, zero``)."""
        return self.emit(Opcode.OR, rd=rd, ra=ra, rb="zero")

    def load(self, op: Union[Opcode, str], rd: RegLike, imm: int,
             base: RegLike) -> int:
        return self.emit(op, rd=rd, ra=base, imm=imm)

    def store(self, op: Union[Opcode, str], src: RegLike, imm: int,
              base: RegLike) -> int:
        return self.emit(op, ra=src, rb=base, imm=imm)

    def ldq(self, rd: RegLike, imm: int, base: RegLike) -> int:
        return self.load(Opcode.LDQ, rd, imm, base)

    def stq(self, src: RegLike, imm: int, base: RegLike) -> int:
        return self.store(Opcode.STQ, src, imm, base)

    def cbr(self, op: Union[Opcode, str], ra: RegLike,
            target: TargetLike) -> int:
        """Conditional branch on ``ra`` to ``target`` (label or PC)."""
        return self.emit(op, ra=ra, target=target)

    def br(self, target: TargetLike) -> int:
        return self.emit(Opcode.BR, target=target)

    def bsr(self, target: TargetLike, rd: RegLike = REG_RA) -> int:
        """Direct call: writes the return address into ``rd``."""
        return self.emit(Opcode.BSR, rd=rd, target=target)

    def jsr(self, ra: RegLike, rd: RegLike = REG_RA) -> int:
        """Indirect call through register ``ra``."""
        return self.emit(Opcode.JSR, rd=rd, ra=ra)

    def ret(self, ra: RegLike = REG_RA) -> int:
        return self.emit(Opcode.RET, ra=ra)

    def syscall(self, code: int) -> int:
        return self.emit(Opcode.SYSCALL, imm=code)

    def nop(self) -> int:
        return self.emit(Opcode.NOP)

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def build(self, entry: Union[int, str] = 0) -> Program:
        """Resolve label targets and produce the immutable :class:`Program`."""
        insts: List[StaticInst] = []
        for rec in self._records:
            target = rec["target"]
            if isinstance(target, str):
                if target not in self._labels:
                    raise ValueError(f"undefined label {target!r}")
                target = self._labels[target]
            op = rec["op"]
            imm = rec["imm"]
            # Direct control flow carries its displacement as the immediate
            # too, so opcode/immediate indexing sees a meaningful value.
            if target is not None and imm is None:
                imm = target - (rec["pc"] + INST_SIZE)
            insts.append(StaticInst(pc=rec["pc"], op=op, rd=rec["rd"],
                                    ra=rec["ra"], rb=rec["rb"], imm=imm,
                                    target=target))
        entry_pc = self._labels[entry] if isinstance(entry, str) else entry
        return Program(insts, self._labels, entry=entry_pc, data=self._data,
                       name=self.name)
