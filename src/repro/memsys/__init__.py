"""Memory-system timing models.

The paper's machine has an aggressive memory system: split 64KB I / 32KB D
first-level caches, a 2MB L2, hardware-filled TLBs, a write buffer and MSHRs
for non-blocking misses.  This package models the *timing* of that hierarchy
(hit/miss latencies, MSHR merging, write-buffer occupancy); data values live
in the architectural memory of :mod:`repro.functional`, mirroring the
functional/timing split of SimpleScalar-style simulators.
"""

from repro.memsys.cache import Cache, CacheConfig, CacheStats
from repro.memsys.tlb import TLB, TLBConfig
from repro.memsys.hierarchy import MemoryHierarchy, MemSysConfig, AccessResult

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheStats",
    "TLB",
    "TLBConfig",
    "MemoryHierarchy",
    "MemSysConfig",
    "AccessResult",
]
