"""Translation lookaside buffer timing model (hardware-filled)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.serialization import SerializableConfig


@dataclass(frozen=True)
class TLBConfig(SerializableConfig):
    """Geometry and miss penalty of a TLB."""

    name: str
    entries: int
    associativity: int
    page_bytes: int = 8192
    miss_latency: int = 30

    @property
    def num_sets(self) -> int:
        sets = self.entries // self.associativity
        if sets <= 0:
            raise ValueError(f"{self.name}: too few entries for associativity")
        return sets


@dataclass
class TLBStats:
    accesses: int = 0
    misses: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """Set-associative TLB; misses are filled by hardware in a fixed latency."""

    def __init__(self, config: TLBConfig):
        self.config = config
        self.stats = TLBStats()
        self._sets: List[Dict[int, int]] = [dict() for _ in range(config.num_sets)]

    def access(self, addr: int, cycle: int) -> Tuple[int, bool]:
        """Translate ``addr``; returns ``(extra_latency, hit)``."""
        self.stats.accesses += 1
        page = addr // self.config.page_bytes
        index = page % self.config.num_sets
        tlb_set = self._sets[index]
        if page in tlb_set:
            tlb_set[page] = cycle
            return 0, True
        self.stats.misses += 1
        if len(tlb_set) >= self.config.associativity:
            victim = min(tlb_set, key=lambda p: tlb_set[p])
            del tlb_set[victim]
        tlb_set[page] = cycle
        return self.config.miss_latency, False

    def reset_stats(self) -> None:
        self.stats = TLBStats()
