"""The full memory hierarchy used by the timing core.

Defaults follow the paper's configuration (Section 3.1):

* 64KB / 32-byte line / 2-way instruction cache,
* 32KB / 32-byte line / 2-way / 2-cycle write-back data cache, non-blocking
  with 16 MSHRs and a 16-entry write buffer,
* 128-entry 4-way data TLB, 64-entry 4-way instruction TLB, 30-cycle
  hardware miss handling,
* 2MB / 64-byte line / 4-way / 6-cycle unified L2,
* 80-cycle main memory.

Bus contention is folded into the fixed L2/memory latencies; the paper's bus
model only perturbs absolute IPC, not the integration comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.memsys.cache import Cache, CacheConfig
from repro.memsys.tlb import TLB, TLBConfig
from repro.serialization import SerializableConfig


@dataclass(frozen=True)
class MemSysConfig(SerializableConfig):
    """Parameters of the whole hierarchy."""

    il1: CacheConfig = CacheConfig("il1", size_bytes=64 * 1024, line_bytes=32,
                                   associativity=2, hit_latency=1)
    dl1: CacheConfig = CacheConfig("dl1", size_bytes=32 * 1024, line_bytes=32,
                                   associativity=2, hit_latency=2, mshrs=16)
    l2: CacheConfig = CacheConfig("l2", size_bytes=2 * 1024 * 1024,
                                  line_bytes=64, associativity=4,
                                  hit_latency=6)
    itlb: TLBConfig = TLBConfig("itlb", entries=64, associativity=4)
    dtlb: TLBConfig = TLBConfig("dtlb", entries=128, associativity=4)
    memory_latency: int = 80
    write_buffer_entries: int = 16
    store_forward_latency: int = 2
    address_generation_latency: int = 1


@dataclass
class AccessResult:
    """Outcome of one timed memory access."""

    latency: int
    l1_hit: bool
    l2_hit: bool
    tlb_hit: bool


class MemoryHierarchy:
    """Composable timing model of the I-side and D-side memory paths."""

    def __init__(self, config: Optional[MemSysConfig] = None):
        self.config = config or MemSysConfig()
        cfg = self.config
        self.il1 = Cache(cfg.il1)
        self.dl1 = Cache(cfg.dl1)
        self.l2 = Cache(cfg.l2)
        self.itlb = TLB(cfg.itlb)
        self.dtlb = TLB(cfg.dtlb)
        # Write buffer: completion cycles of stores drained to the cache.
        self._write_buffer: List[int] = []

    # ------------------------------------------------------------------
    def _l2_and_memory(self, addr: int, cycle: int,
                       is_write: bool) -> Tuple[int, bool]:
        latency, hit = self.l2.access(addr, cycle, is_write=is_write,
                                      fill_latency=self.config.memory_latency)
        return latency, hit

    def ifetch(self, pc: int, cycle: int) -> AccessResult:
        """Timed instruction fetch of the line containing ``pc``."""
        tlb_latency, tlb_hit = self.itlb.access(pc, cycle)
        below, l2_hit = (0, True)
        if not self.il1.probe(pc):
            below, l2_hit = self._l2_and_memory(pc, cycle, is_write=False)
        latency, l1_hit = self.il1.access(pc, cycle, fill_latency=below)
        return AccessResult(latency=latency + tlb_latency, l1_hit=l1_hit,
                            l2_hit=l2_hit, tlb_hit=tlb_hit)

    def load(self, addr: int, cycle: int) -> AccessResult:
        """Timed data load."""
        tlb_latency, tlb_hit = self.dtlb.access(addr, cycle)
        below, l2_hit = (0, True)
        if not self.dl1.probe(addr):
            below, l2_hit = self._l2_and_memory(addr, cycle, is_write=False)
        latency, l1_hit = self.dl1.access(addr, cycle, fill_latency=below)
        return AccessResult(latency=latency + tlb_latency, l1_hit=l1_hit,
                            l2_hit=l2_hit, tlb_hit=tlb_hit)

    def store(self, addr: int, cycle: int) -> Tuple[int, bool]:
        """Retire-time store through the write buffer.

        Returns ``(stall_cycles, accepted)``: the store is accepted into the
        write buffer unless it is full, in which case retirement must stall
        for ``stall_cycles`` before retrying.
        """
        self._drain_write_buffer(cycle)
        if len(self._write_buffer) >= self.config.write_buffer_entries:
            stall = max(0, min(self._write_buffer) - cycle)
            return max(stall, 1), False
        tlb_latency, _ = self.dtlb.access(addr, cycle)
        below, _ = (0, True)
        if not self.dl1.probe(addr):
            below, _ = self._l2_and_memory(addr, cycle, is_write=True)
        latency, _ = self.dl1.access(addr, cycle, is_write=True,
                                     fill_latency=below)
        self._write_buffer.append(cycle + latency + tlb_latency)
        return 0, True

    def _drain_write_buffer(self, cycle: int) -> None:
        self._write_buffer = [c for c in self._write_buffer if c > cycle]

    @property
    def write_buffer_occupancy(self) -> int:
        return len(self._write_buffer)

    def reset_stats(self) -> None:
        for unit in (self.il1, self.dl1, self.l2, self.itlb, self.dtlb):
            unit.reset_stats()
