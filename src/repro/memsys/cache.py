"""Set-associative cache timing model with LRU replacement and MSHR merging."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.serialization import SerializableConfig


@dataclass(frozen=True)
class CacheConfig(SerializableConfig):
    """Geometry and latency of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int
    hit_latency: int
    mshrs: int = 16
    writeback: bool = True

    @property
    def num_sets(self) -> int:
        sets = self.size_bytes // (self.line_bytes * self.associativity)
        if sets <= 0:
            raise ValueError(f"{self.name}: size too small for geometry")
        return sets


@dataclass
class CacheStats:
    """Counters maintained by a :class:`Cache`."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0
    mshr_merges: int = 0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class _Line:
    __slots__ = ("tag", "dirty", "last_use")

    def __init__(self, tag: int, cycle: int):
        self.tag = tag
        self.dirty = False
        self.last_use = cycle


class Cache:
    """A single cache level.

    :meth:`access` returns ``(latency, hit)`` where ``latency`` counts only
    this level's contribution; the :class:`~repro.memsys.hierarchy.
    MemoryHierarchy` composes levels.  Outstanding misses are tracked per
    line so that accesses arriving while a fill is in flight are merged into
    the existing MSHR and only pay the remaining latency, modelling a
    non-blocking cache.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self.stats = CacheStats()
        self._sets: List[Dict[int, _Line]] = [dict() for _ in range(config.num_sets)]
        # line address -> cycle at which the outstanding fill completes
        self._mshrs: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _index_tag(self, addr: int) -> Tuple[int, int]:
        line_addr = addr // self.config.line_bytes
        return line_addr % self.config.num_sets, line_addr

    def line_addr(self, addr: int) -> int:
        return addr // self.config.line_bytes

    def probe(self, addr: int) -> bool:
        """Check for presence without updating LRU state or statistics."""
        index, tag = self._index_tag(addr)
        return tag in self._sets[index]

    def access(self, addr: int, cycle: int, is_write: bool = False,
               fill_latency: int = 0) -> Tuple[int, bool]:
        """Access ``addr`` at ``cycle``.

        ``fill_latency`` is the latency of the levels below (already
        computed by the hierarchy) and is used to schedule the MSHR fill.
        Returns ``(total_latency, hit)``.
        """
        cfg = self.config
        self.stats.accesses += 1
        index, tag = self._index_tag(addr)
        cache_set = self._sets[index]
        line = cache_set.get(tag)
        if line is not None:
            self.stats.hits += 1
            line.last_use = cycle
            if is_write:
                line.dirty = cfg.writeback
            # Hit under an outstanding fill: the data arrives only when the
            # MSHR completes, so the access waits for the remaining latency.
            fill_done = self._mshrs.get(tag)
            if fill_done is not None and fill_done > cycle:
                self.stats.mshr_merges += 1
                return max(cfg.hit_latency, fill_done - cycle), True
            return cfg.hit_latency, True

        self.stats.misses += 1
        # MSHR merge: a fill for this line is already in flight.
        fill_done = self._mshrs.get(tag)
        if fill_done is not None and fill_done > cycle:
            self.stats.mshr_merges += 1
            latency = max(cfg.hit_latency, fill_done - cycle)
            return latency, False

        latency = cfg.hit_latency + fill_latency
        self._reap_mshrs(cycle)
        if len(self._mshrs) >= cfg.mshrs:
            # Structural stall: wait for the oldest outstanding fill.
            oldest_done = min(self._mshrs.values())
            latency += max(0, oldest_done - cycle)
        self._mshrs[tag] = cycle + latency
        self._fill(index, tag, cycle, is_write)
        return latency, False

    # ------------------------------------------------------------------
    def _fill(self, index: int, tag: int, cycle: int, is_write: bool) -> None:
        cache_set = self._sets[index]
        if len(cache_set) >= self.config.associativity:
            victim_tag = min(cache_set, key=lambda t: cache_set[t].last_use)
            victim = cache_set.pop(victim_tag)
            self.stats.evictions += 1
            if victim.dirty:
                self.stats.writebacks += 1
        line = _Line(tag, cycle)
        if is_write and self.config.writeback:
            line.dirty = True
        cache_set[tag] = line

    def _reap_mshrs(self, cycle: int) -> None:
        done = [tag for tag, when in self._mshrs.items() if when <= cycle]
        for tag in done:
            del self._mshrs[tag]

    def reset_stats(self) -> None:
        self.stats = CacheStats()
