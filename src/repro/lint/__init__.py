"""``repro lint``: a project-invariant static analyzer.

The repository's hard invariants -- deterministic engine iteration,
cache-key purity of the config tree, C/Python kernel parity, fast-path
guard soundness, env-var conventions, lossless stats merging -- are
reachability/blocking properties of the system's state machine that the
runtime golden tests can only sample.  This package checks them
structurally, before execution: an AST-visitor rule engine
(:mod:`repro.lint.engine`) runs six project-specific rules
(:mod:`repro.lint.rules`) over the checkout and fails on any new finding.

Entry points: ``repro lint [--json] [--baseline PATH] [--rules LIST]`` on
the CLI, :func:`run_lint` as a library, and the self-hosted run in
``tests/test_lint.py`` that keeps ``src/`` clean in tier-1.
"""

from __future__ import annotations

from repro.lint.baseline import (BASELINE_NAME, load_baseline,
                                 write_baseline)
from repro.lint.engine import (Finding, LintReport, default_root, run_lint)
from repro.lint.project import Project

__all__ = ["BASELINE_NAME", "Finding", "LintReport", "Project",
           "default_root", "load_baseline", "run_lint", "write_baseline"]
