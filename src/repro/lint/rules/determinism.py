"""Rule ``determinism``: the engine's state machine must be replayable.

Bit-identical sharding, the content-addressed result cache and the golden
pipeline tests all assume that simulating the same (program, config) twice
-- in any process, on any host -- walks the exact same per-cycle state
sequence.  Four constructs silently break that while passing every sampled
runtime test, so inside the engine packages (``core/``, ``functional/``,
``isa/``, ``variants/``) this rule flags:

* **iteration over a set** (set literals, ``set()``/``frozenset()`` calls,
  ``union``/``intersection``/``difference`` results) in a ``for`` loop or
  comprehension -- set order is hash-seed dependent, so anything ordered
  that the loop feeds (a list, a schedule, stats) diverges across
  processes; wrap the iterable in ``sorted(...)`` instead;
* **the global ``random`` module** -- its state is per-process and
  unseeded; thread an explicitly seeded ``random.Random(seed)`` instead;
* **wall-clock reads** (``time.time``/``monotonic``/``perf_counter``/
  ``process_time``, ``datetime.now``/``utcnow``/``today``) -- timing must
  never steer simulated state;
* **``id(...)``** -- CPython addresses vary run to run, so using them as
  keys or tie-breakers produces run-dependent orderings.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.lint.engine import Finding
from repro.lint.project import Project

#: Engine packages whose state must replay bit-identically (relative to
#: ``src/repro``).  The experiment/distrib layers legitimately read clocks
#: and host identity, so they are deliberately out of scope.
SCOPED_DIRS = ("core", "functional", "isa", "variants")

_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference"}
_CLOCK_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "perf_counter"),
    ("time", "process_time"), ("time", "localtime"), ("time", "time_ns"),
    ("time", "monotonic_ns"), ("time", "perf_counter_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
}


def _is_set_expr(node: ast.expr) -> bool:
    """Whether ``node`` evaluates to a set with unordered iteration."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True
    return False


class DeterminismRule:
    id = "determinism"
    description = ("no unordered-set iteration, global random, wall-clock "
                   "reads or id() ordering inside the engine packages")

    def applicable(self, project: Project) -> bool:
        return any((project.package_root / d).is_dir() for d in SCOPED_DIRS)

    def _scoped_files(self, project: Project):
        for directory in SCOPED_DIRS:
            base = project.package_root / directory
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*.py")):
                if "__pycache__" not in path.parts:
                    yield path

    def check(self, project: Project) -> Iterator[Finding]:
        for path in self._scoped_files(project):
            try:
                tree = project.tree(path)
            except SyntaxError as exc:
                yield Finding(project.rel(path), exc.lineno or 0, self.id,
                              f"syntax error: {exc.msg}")
                continue
            rel = project.rel(path)
            yield from self._check_tree(tree, rel)

    # ------------------------------------------------------------------
    def _check_tree(self, tree: ast.Module, rel: str) -> Iterator[Finding]:
        iter_exprs: List[Tuple[ast.expr, int]] = []
        for node in ast.walk(tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_exprs.append((node.iter, node.iter.lineno))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for gen in node.generators:
                    iter_exprs.append((gen.iter, gen.iter.lineno))
            elif isinstance(node, ast.Attribute):
                if (isinstance(node.value, ast.Name)
                        and node.value.id == "random"):
                    # random.Random(seed) constructs an explicitly seeded
                    # generator; everything else on the module is shared
                    # unseeded per-process state.
                    if node.attr != "Random":
                        yield Finding(
                            rel, node.lineno, self.id,
                            f"global `random.{node.attr}` is unseeded "
                            f"per-process state; thread a seeded "
                            f"random.Random through instead")
                elif (isinstance(node.value, ast.Name)
                        and (node.value.id, node.attr) in _CLOCK_CALLS):
                    yield Finding(
                        rel, node.lineno, self.id,
                        f"wall-clock read `{node.value.id}.{node.attr}` "
                        f"inside the engine; simulated state must not "
                        f"depend on host time")
            elif isinstance(node, ast.Call):
                func = node.func
                if (isinstance(func, ast.Name) and func.id == "id"
                        and len(node.args) == 1):
                    yield Finding(
                        rel, node.lineno, self.id,
                        "`id(...)` varies across runs; never use object "
                        "identity for keys or ordering in the engine")
                elif (isinstance(func, ast.Name) and func.id == "Random"
                        and not node.args and not node.keywords):
                    yield Finding(
                        rel, node.lineno, self.id,
                        "`Random()` without a seed is nondeterministic; "
                        "pass an explicit seed")
                elif (isinstance(func, ast.Attribute)
                        and func.attr == "Random"
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "random"
                        and not node.args and not node.keywords):
                    yield Finding(
                        rel, node.lineno, self.id,
                        "`random.Random()` without a seed is "
                        "nondeterministic; pass an explicit seed")
        for expr, lineno in iter_exprs:
            if _is_set_expr(expr):
                yield Finding(
                    rel, lineno, self.id,
                    "iterating over an unordered set feeds ordered state; "
                    "wrap the iterable in sorted(...)")
