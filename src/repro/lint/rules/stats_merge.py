"""Rule ``stats-merge``: ``SimStats`` must stay losslessly mergeable.

Sharded runs recombine per-slice statistics with ``SimStats.merge()``,
whose correctness rests on every field being one of exactly three shapes:

* ``int`` counters -- merged by exact integer addition (associative,
  commutative, identity 0);
* ``Counter`` histograms -- merged element-wise (same algebra);
* ``str`` identification fields -- merged as "first non-empty".

A ``float`` accumulator would *almost* work -- and then sharded merges
would stop being bit-identical across groupings, because float addition is
not associative.  Lists, dicts, optionals and nested objects have no merge
rule at all and would be silently mangled by the generic ``mine + theirs``
arm.  The golden merge tests sample this; the rule proves it for every
field at author time by checking the dataclass annotations of ``SimStats``
in ``core/stats.py``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding
from repro.lint.project import Project

STATS_PY = "src/repro/core/stats.py"
STATS_CLASS = "SimStats"

#: Annotations merge() handles losslessly.
ALLOWED = {"int", "Counter", "str"}


class StatsMergeRule:
    id = "stats-merge"
    description = ("every SimStats field is int, Counter or str so "
                   "merge() stays lossless and associative")

    def applicable(self, project: Project) -> bool:
        return project.exists(STATS_PY)

    def check(self, project: Project) -> Iterator[Finding]:
        path = project.root / STATS_PY
        tree = project.tree(path)
        rel = project.rel(path)
        stats_cls = None
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == STATS_CLASS:
                stats_cls = node
                break
        if stats_cls is None:
            yield Finding(rel, 0, self.id,
                          f"{STATS_CLASS} class not found in {STATS_PY}")
            return
        for stmt in stats_cls.body:
            if not (isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)):
                continue
            annotation = ast.unparse(stmt.annotation)
            if annotation.startswith("ClassVar"):
                continue  # not a dataclass field
            if annotation in ALLOWED:
                continue
            yield Finding(
                rel, stmt.lineno, self.id,
                f"{STATS_CLASS}.{stmt.target.id}: annotation "
                f"`{annotation}` is not losslessly mergeable -- merge() "
                f"only preserves int (sum), Counter (element-wise sum) "
                f"and str (first non-empty id) fields")
