"""The six project-invariant lint rules.

Each rule guards an invariant the runtime test suites can only sample (see
the module docstrings, and the rule table in docs/ARCHITECTURE.md):

==============  ========================================================
``determinism``   no unordered iteration / clocks / global random / id()
                  ordering inside the engine packages
``cache-key``     every config field reaches the canonical
                  to_dict()/fingerprint() cache identity
``kernel-parity`` ``_kernel.c`` stays in lockstep with ``window.py`` and
                  the scheduler's call sites
``fast-path``     the fused driver's dispatch set and guard attributes
                  stay sound
``env-var``       every ``REPRO_*`` knob is documented and read through
                  its validated accessor
``stats-merge``   ``SimStats`` fields stay losslessly mergeable
==============  ========================================================
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.lint.engine import Rule
from repro.lint.rules.cache_key import CacheKeyRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.env_vars import EnvVarRule
from repro.lint.rules.fast_path import FastPathRule
from repro.lint.rules.kernel_parity import KernelParityRule
from repro.lint.rules.stats_merge import StatsMergeRule

#: Every project rule, in reporting order.
ALL_RULES: Tuple[Rule, ...] = (
    DeterminismRule(),
    CacheKeyRule(),
    KernelParityRule(),
    FastPathRule(),
    EnvVarRule(),
    StatsMergeRule(),
)

RULES_BY_ID: Dict[str, Rule] = {rule.id: rule for rule in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID", "CacheKeyRule", "DeterminismRule",
           "EnvVarRule", "FastPathRule", "KernelParityRule",
           "StatsMergeRule"]
