"""Rule ``kernel-parity``: ``_kernel.c`` stays in lockstep with the window.

The compiled scheduler kernel operates directly on the structure-of-arrays
:class:`~repro.core.window.Window` state and bakes in its layout constants.
Python-side renames or layout changes that miss the C side historically
surface as a slow bisect of the fast/slow equivalence suite (or worse, as
the silent pure-Python fallback when ``kernel.py``'s constant check
refuses a stale build).  This rule fails lint at author time instead by
cross-checking four things, all statically:

1. every ``win.<field>`` passed at a ``_kernel_*`` call site -- in the
   scheduler (select/wakeup), the LSQ (forwarding probes) or the execute
   stage (writeback drain) -- is a declared ``Window.__slots__`` entry
   (catches a window rename that missed a caller);
2. every such field name also appears as a token in ``_kernel.c`` (catches
   a window+caller rename that missed the C side);
3. every integer ``#define`` in ``_kernel.c`` that shadows a module-level
   constant of ``window.py`` or ``rename/physical.py`` (``SEQ_BITS``,
   ``PORT_LOAD``, ``ZERO_PREG``, ...) has the same value, and the known
   mirrored constants are actually defined;
4. every constant ``kernel.py`` verifies via ``getattr(_kernel, "X")`` is
   exported by the C module (``PyModule_AddIntConstant``), so the loader's
   stale-build detection cannot be silently hollowed out;
5. every function ``kernel.py`` requires via ``hasattr(_kernel, "f")`` is
   actually registered in the C method table, for the same reason.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding
from repro.lint.project import Project

WINDOW_PY = "src/repro/core/window.py"
SCHEDULER_PY = "src/repro/core/scheduler.py"
KERNEL_C = "src/repro/core/_kernel.c"
KERNEL_PY = "src/repro/core/kernel.py"
PHYSICAL_PY = "src/repro/rename/physical.py"

#: Python files that call into the compiled kernel (scanned for the
#: ``win.<field>`` arguments of checks 1 and 2 when present).
CALLER_FILES = (SCHEDULER_PY,
                "src/repro/core/lsq.py",
                "src/repro/core/stages/execute.py")

_DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Z_][A-Z0-9_]*)\s+"
                        r"\(?(-?\d+)\)?\s*$", re.MULTILINE)
_ADD_CONST_RE = re.compile(r'PyModule_AddIntConstant\s*\(\s*\w+\s*,\s*'
                           r'"([A-Za-z_][A-Za-z0-9_]*)"')
_METHOD_TABLE_RE = re.compile(r'\{\s*"([A-Za-z_][A-Za-z0-9_]*)"\s*,\s*'
                              r'kernel_')
_KERNEL_CALLS = ("_kernel_select", "_kernel_wakeup", "_kernel_drain",
                 "_kernel_forward", "_kernel_unresolved")


def _window_constants(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int>`` assignments of window.py."""
    constants: Dict[str, int] = {}
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
                and not isinstance(node.value.value, bool)):
            constants[node.targets[0].id] = node.value.value
    return constants


def _window_slots(tree: ast.Module) -> Optional[Set[str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "Window":
            for stmt in node.body:
                if (isinstance(stmt, ast.Assign)
                        and any(isinstance(t, ast.Name)
                                and t.id == "__slots__"
                                for t in stmt.targets)
                        and isinstance(stmt.value, (ast.Tuple, ast.List))):
                    return {elt.value for elt in stmt.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)}
    return None


def _window_locals(func: ast.AST) -> Set[str]:
    """Local names bound to the window object inside one function
    (``win = self.window`` / ``window = self.window``)."""
    bound: Set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "window"):
            bound.add(node.targets[0].id)
    return bound


def _kernel_call_fields(tree: ast.Module) -> List[Tuple[str, int]]:
    """(window_field, lineno) for every ``win.<field>`` argument passed at
    a ``self._kernel_*`` call site in one caller file."""
    fields: List[Tuple[str, int]] = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        window_names = _window_locals(func)
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _KERNEL_CALLS):
                continue
            for arg in node.args:
                if (isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id in window_names):
                    fields.append((arg.attr, arg.lineno))
                elif (isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Attribute)
                        and arg.value.attr == "window"):
                    fields.append((arg.attr, arg.lineno))
    return fields


def _kernel_py_checked_constants(tree: ast.Module) -> Set[str]:
    """Constant names kernel.py reads off the extension module via
    ``getattr(_kernel, "NAME", ...)``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "getattr" and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)):
            names.add(node.args[1].value)
    return names


def _kernel_py_required_functions(tree: ast.Module) -> Set[str]:
    """The ``REQUIRED_KERNEL_FUNCTIONS`` tuple kernel.py's loader checks
    with ``hasattr`` before activating a build."""
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "REQUIRED_KERNEL_FUNCTIONS"
                and isinstance(node.value, (ast.Tuple, ast.List))):
            return {elt.value for elt in node.value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)}
    return set()


class KernelParityRule:
    id = "kernel-parity"
    description = ("_kernel.c field names and layout constants stay in "
                   "lockstep with window.py and scheduler.py")

    REQUIRED = (WINDOW_PY, SCHEDULER_PY, KERNEL_C)

    def applicable(self, project: Project) -> bool:
        return all(project.exists(rel) for rel in self.REQUIRED)

    def check(self, project: Project) -> Iterator[Finding]:
        window_tree = project.tree(project.root / WINDOW_PY)
        c_source = project.source(project.root / KERNEL_C)

        slots = _window_slots(window_tree)
        if slots is None:
            yield Finding(WINDOW_PY, 0, self.id,
                          "Window class (or its literal __slots__ tuple) "
                          "not found; the parity check needs the declared "
                          "field list")
            return
        constants = _window_constants(window_tree)
        if project.exists(PHYSICAL_PY):
            # The zero-register number lives one layer up; the C writeback
            # drain mirrors it the same way it mirrors the window layout.
            constants.update(
                _window_constants(project.tree(project.root / PHYSICAL_PY)))
        c_tokens = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", c_source))

        # 1 + 2: caller-passed window fields exist and reach the C side.
        passed: List[Tuple[str, str, int]] = []
        for caller in CALLER_FILES:
            if not project.exists(caller):
                continue
            caller_tree = project.tree(project.root / caller)
            passed.extend((caller, field, lineno) for field, lineno
                          in _kernel_call_fields(caller_tree))
        if not passed:
            yield Finding(SCHEDULER_PY, 0, self.id,
                          "no win.<field> arguments found at any "
                          "_kernel_* call site; the parity check cannot "
                          "see the shared layout")
        for caller, field, lineno in passed:
            if field not in slots:
                yield Finding(
                    caller, lineno, self.id,
                    f"kernel call passes window field `{field}` which is "
                    f"not in Window.__slots__ (renamed on one side only?)")
            elif field not in c_tokens:
                yield Finding(
                    caller, lineno, self.id,
                    f"kernel call passes window field `{field}` but "
                    f"_kernel.c never mentions it; the C loop is out of "
                    f"step with its caller")

        # 3: shadowed #define values match the Python-side constants.
        defines = {name: int(value)
                   for name, value in _DEFINE_RE.findall(c_source)}
        for name, value in sorted(defines.items()):
            if name in constants and constants[name] != value:
                yield Finding(
                    KERNEL_C, 0, self.id,
                    f"#define {name} {value} disagrees with the "
                    f"Python-side {name} = {constants[name]}")
        for required in ("SEQ_BITS", "PORT_LOAD", "ZERO_PREG"):
            if required in constants and required not in defines:
                yield Finding(
                    KERNEL_C, 0, self.id,
                    f"mirrored constant {required} is not #defined in "
                    f"_kernel.c (the compiled loops would be built "
                    f"against an unchecked layout)")

        # 4 + 5: the loader's stale-build check matches the exported
        # constants and the registered entry points.
        if project.exists(KERNEL_PY):
            kernel_tree = project.tree(project.root / KERNEL_PY)
            exported = set(_ADD_CONST_RE.findall(c_source))
            for name in sorted(_kernel_py_checked_constants(kernel_tree)):
                if name in constants and name not in exported:
                    yield Finding(
                        KERNEL_PY, 0, self.id,
                        f"kernel.py verifies `{name}` against the "
                        f"extension but _kernel.c never exports it via "
                        f"PyModule_AddIntConstant, so the stale-build "
                        f"check always fails open to pure Python")
            methods = set(_METHOD_TABLE_RE.findall(c_source))
            for name in sorted(_kernel_py_required_functions(kernel_tree)):
                if name not in methods:
                    yield Finding(
                        KERNEL_PY, 0, self.id,
                        f"kernel.py requires kernel function `{name}` but "
                        f"_kernel.c's method table never registers it, so "
                        f"the build always fails open to pure Python")
