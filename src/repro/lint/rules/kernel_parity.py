"""Rule ``kernel-parity``: ``_kernel.c`` stays in lockstep with the window.

The compiled scheduler kernel operates directly on the structure-of-arrays
:class:`~repro.core.window.Window` state and bakes in its layout constants.
Python-side renames or layout changes that miss the C side historically
surface as a slow bisect of the fast/slow equivalence suite (or worse, as
the silent pure-Python fallback when ``kernel.py``'s constant check
refuses a stale build).  This rule fails lint at author time instead by
cross-checking four things, all statically:

1. every ``win.<field>`` the scheduler passes at its ``_kernel_select`` /
   ``_kernel_wakeup`` call sites is a declared ``Window.__slots__`` entry
   (catches a window rename that missed the scheduler);
2. every such field name also appears as a token in ``_kernel.c`` (catches
   a window+scheduler rename that missed the C side);
3. every integer ``#define`` in ``_kernel.c`` that shadows a module-level
   ``window.py`` constant (``SEQ_BITS``, ``PORT_LOAD``, ...) has the same
   value, and the known layout constants are actually defined;
4. every constant ``kernel.py`` verifies via ``getattr(_kernel, "X")`` is
   exported by the C module (``PyModule_AddIntConstant``), so the loader's
   stale-build detection cannot be silently hollowed out.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding
from repro.lint.project import Project

WINDOW_PY = "src/repro/core/window.py"
SCHEDULER_PY = "src/repro/core/scheduler.py"
KERNEL_C = "src/repro/core/_kernel.c"
KERNEL_PY = "src/repro/core/kernel.py"

_DEFINE_RE = re.compile(r"^\s*#\s*define\s+([A-Z_][A-Z0-9_]*)\s+"
                        r"\(?(-?\d+)\)?\s*$", re.MULTILINE)
_ADD_CONST_RE = re.compile(r'PyModule_AddIntConstant\s*\(\s*\w+\s*,\s*'
                           r'"([A-Za-z_][A-Za-z0-9_]*)"')
_KERNEL_CALLS = ("_kernel_select", "_kernel_wakeup")


def _window_constants(tree: ast.Module) -> Dict[str, int]:
    """Module-level ``NAME = <int>`` assignments of window.py."""
    constants: Dict[str, int] = {}
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, int)
                and not isinstance(node.value.value, bool)):
            constants[node.targets[0].id] = node.value.value
    return constants


def _window_slots(tree: ast.Module) -> Optional[Set[str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "Window":
            for stmt in node.body:
                if (isinstance(stmt, ast.Assign)
                        and any(isinstance(t, ast.Name)
                                and t.id == "__slots__"
                                for t in stmt.targets)
                        and isinstance(stmt.value, (ast.Tuple, ast.List))):
                    return {elt.value for elt in stmt.value.elts
                            if isinstance(elt, ast.Constant)
                            and isinstance(elt.value, str)}
    return None


def _window_locals(func: ast.AST) -> Set[str]:
    """Local names bound to the window object inside one function
    (``win = self.window`` / ``window = self.window``)."""
    bound: Set[str] = set()
    for node in ast.walk(func):
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Attribute)
                and node.value.attr == "window"):
            bound.add(node.targets[0].id)
    return bound


def _kernel_call_fields(tree: ast.Module) -> List[Tuple[str, int]]:
    """(window_field, lineno) for every ``win.<field>`` argument passed at
    a ``self._kernel_*`` call site in scheduler.py."""
    fields: List[Tuple[str, int]] = []
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        window_names = _window_locals(func)
        for node in ast.walk(func):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in _KERNEL_CALLS):
                continue
            for arg in node.args:
                if (isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Name)
                        and arg.value.id in window_names):
                    fields.append((arg.attr, arg.lineno))
                elif (isinstance(arg, ast.Attribute)
                        and isinstance(arg.value, ast.Attribute)
                        and arg.value.attr == "window"):
                    fields.append((arg.attr, arg.lineno))
    return fields


def _kernel_py_checked_constants(tree: ast.Module) -> Set[str]:
    """Constant names kernel.py reads off the extension module via
    ``getattr(_kernel, "NAME", ...)``."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id == "getattr" and len(node.args) >= 2
                and isinstance(node.args[1], ast.Constant)
                and isinstance(node.args[1].value, str)):
            names.add(node.args[1].value)
    return names


class KernelParityRule:
    id = "kernel-parity"
    description = ("_kernel.c field names and layout constants stay in "
                   "lockstep with window.py and scheduler.py")

    REQUIRED = (WINDOW_PY, SCHEDULER_PY, KERNEL_C)

    def applicable(self, project: Project) -> bool:
        return all(project.exists(rel) for rel in self.REQUIRED)

    def check(self, project: Project) -> Iterator[Finding]:
        window_tree = project.tree(project.root / WINDOW_PY)
        scheduler_tree = project.tree(project.root / SCHEDULER_PY)
        c_source = project.source(project.root / KERNEL_C)

        slots = _window_slots(window_tree)
        if slots is None:
            yield Finding(WINDOW_PY, 0, self.id,
                          "Window class (or its literal __slots__ tuple) "
                          "not found; the parity check needs the declared "
                          "field list")
            return
        constants = _window_constants(window_tree)
        c_tokens = set(re.findall(r"[A-Za-z_][A-Za-z0-9_]*", c_source))

        # 1 + 2: scheduler-passed window fields exist and reach the C side.
        passed = _kernel_call_fields(scheduler_tree)
        if not passed:
            yield Finding(SCHEDULER_PY, 0, self.id,
                          "no win.<field> arguments found at the "
                          "_kernel_select/_kernel_wakeup call sites; the "
                          "parity check cannot see the shared layout")
        for field, lineno in passed:
            if field not in slots:
                yield Finding(
                    SCHEDULER_PY, lineno, self.id,
                    f"kernel call passes window field `{field}` which is "
                    f"not in Window.__slots__ (renamed on one side only?)")
            elif field not in c_tokens:
                yield Finding(
                    SCHEDULER_PY, lineno, self.id,
                    f"kernel call passes window field `{field}` but "
                    f"_kernel.c never mentions it; the C loop is out of "
                    f"step with the scheduler")

        # 3: shadowed #define values match window.py.
        defines = {name: int(value)
                   for name, value in _DEFINE_RE.findall(c_source)}
        for name, value in sorted(defines.items()):
            if name in constants and constants[name] != value:
                yield Finding(
                    KERNEL_C, 0, self.id,
                    f"#define {name} {value} disagrees with window.py's "
                    f"{name} = {constants[name]}")
        for required in ("SEQ_BITS", "PORT_LOAD"):
            if required in constants and required not in defines:
                yield Finding(
                    KERNEL_C, 0, self.id,
                    f"layout constant {required} is not #defined in "
                    f"_kernel.c (the compiled loops would be built "
                    f"against an unchecked layout)")

        # 4: the loader's stale-build check matches the exported constants.
        if project.exists(KERNEL_PY):
            kernel_tree = project.tree(project.root / KERNEL_PY)
            exported = set(_ADD_CONST_RE.findall(c_source))
            for name in sorted(_kernel_py_checked_constants(kernel_tree)):
                if name in constants and name not in exported:
                    yield Finding(
                        KERNEL_PY, 0, self.id,
                        f"kernel.py verifies `{name}` against the "
                        f"extension but _kernel.c never exports it via "
                        f"PyModule_AddIntConstant, so the stale-build "
                        f"check always fails open to pure Python")
