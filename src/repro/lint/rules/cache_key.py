"""Rule ``cache-key``: every config field must reach the fingerprint.

The content-addressed result cache keys on ``MachineConfig.fingerprint()``.
A configuration field that exists on the dataclass but does not perturb the
fingerprint is a *silent cache collision*: two different machines resolve
to the same cached result and every downstream figure is quietly wrong.
That is exactly the pre-PR1 ``_config_key`` bug -- the hand-maintained key
tuple skipped the memory-system and branch-predictor sub-configs -- and it
is invisible to runtime tests unless one happens to sweep the skipped
field.

The rule walks the live configuration tree (the root class plus every
nested config dataclass reachable from its defaults) and checks, for every
declared field:

* **schema coverage** -- the field appears in the instance's canonical
  ``to_dict()`` rendering, or is legitimately elided (named in the class's
  ``_ELIDE_DEFAULT`` and carrying a default value);
* **fingerprint sensitivity** -- perturbing the field on a default
  instance (``int + 1``, ``not bool``, another enum member, ...) changes
  ``fingerprint()``.

Unlike the pure-AST rules this one imports the config classes: schema
participation is a property of the *running* serializer (including any
``to_dict``/``fingerprint`` overrides, which is how the historical bug
shape manifests), so a static field listing cannot prove it.  When the
linted tree is not the live ``repro`` package (fixture projects), the rule
reports itself not applicable; the fixture tests inject a loader instead.
"""

from __future__ import annotations

import dataclasses
import enum
import inspect
from pathlib import Path
from typing import Any, Callable, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding
from repro.lint.project import Project


def _live_tree_loader(project: Project) -> Optional[type]:
    """The root config class, but only when ``project`` is the checkout the
    imported ``repro`` package actually runs from."""
    import repro

    package = Path(repro.__file__).resolve().parent
    if package != (project.root / "src" / "repro").resolve():
        return None
    from repro.core.config import MachineConfig

    return MachineConfig


def _perturb(value: Any) -> Tuple[bool, Any]:
    """A value guaranteed different from ``value`` (ok, new_value)."""
    if isinstance(value, bool):
        return True, not value
    if isinstance(value, int):
        return True, value + 1
    if isinstance(value, float):
        return True, value + 1.0
    if isinstance(value, str):
        return True, value + "~lint"
    if isinstance(value, enum.Enum):
        members = list(type(value))
        others = [m for m in members if m is not value]
        if others:
            return True, others[0]
        return False, value
    return False, value


class CacheKeyRule:
    id = "cache-key"
    description = ("every field of every config dataclass participates in "
                   "the canonical to_dict()/fingerprint() schema")

    def __init__(self, loader: Optional[Callable[[Project], Optional[type]]]
                 = None):
        self._loader = loader or _live_tree_loader

    def applicable(self, project: Project) -> bool:
        try:
            return self._loader(project) is not None
        except Exception:
            return False

    # ------------------------------------------------------------------
    def _anchor(self, project: Project, cls: type) -> Tuple[str, int]:
        """(path, line) of the class definition, best effort."""
        try:
            path = inspect.getsourcefile(cls)
            _, lineno = inspect.getsourcelines(cls)
        except (OSError, TypeError):
            return f"<{cls.__module__}>", 0
        return project.rel(Path(path)) if path else f"<{cls.__module__}>", \
            lineno

    def check(self, project: Project) -> Iterator[Finding]:
        root_cls = self._loader(project)
        if root_cls is None:
            return
        path, lineno = self._anchor(project, root_cls)
        try:
            instance = root_cls()
        except Exception as exc:
            yield Finding(path, lineno, self.id,
                          f"{root_cls.__name__}: cannot instantiate with "
                          f"defaults ({exc}); the rule needs a default "
                          f"instance to audit the schema")
            return
        seen: Set[type] = set()
        yield from self._check_instance(project, instance, seen)

    def _check_instance(self, project: Project, instance: Any,
                        seen: Set[type]) -> Iterator[Finding]:
        """Audit one (sub)config instance; nested configs are audited on
        the instances the parent's defaults carry, so subtree classes
        without defaults of their own are reached too."""
        cls = type(instance)
        if cls in seen:
            return
        seen.add(cls)
        path, lineno = self._anchor(project, cls)
        try:
            rendered = instance.to_dict()
            base_fp = instance.fingerprint()
        except Exception as exc:
            yield Finding(path, lineno, self.id,
                          f"{cls.__name__}: canonical serialization failed "
                          f"({exc})")
            return
        elide = getattr(cls, "_ELIDE_DEFAULT", frozenset())
        for f in dataclasses.fields(cls):
            value = getattr(instance, f.name)
            nested = (dataclasses.is_dataclass(value)
                      and not isinstance(value, type))
            if f.name not in rendered:
                elided_ok = (not nested and f.name in elide
                             and (f.default is not dataclasses.MISSING
                                  or f.default_factory    # type: ignore[misc]
                                  is not dataclasses.MISSING))
                if not elided_ok:
                    yield Finding(
                        path, lineno, self.id,
                        f"{cls.__name__}.{f.name}: declared field missing "
                        f"from canonical to_dict() -- configs differing "
                        f"only here share a fingerprint (cache collision)")
                    if not nested:
                        continue
            # Nested configs are audited on their own instances; their
            # fields reach the parent fingerprint through the nested dict.
            if nested:
                yield from self._check_instance(project, value, seen)
                continue
            if isinstance(value, (list, tuple)):
                for item in value:
                    if dataclasses.is_dataclass(item) and not isinstance(
                            item, type):
                        yield from self._check_instance(project, item, seen)
                continue
            ok, changed = _perturb(value)
            if not ok:
                continue
            try:
                mutated = dataclasses.replace(instance, **{f.name: changed})
                mutated_fp = mutated.fingerprint()
            except Exception:
                # A validating __post_init__ rejected the probe value; the
                # coverage check above already proved schema membership.
                continue
            if mutated_fp == base_fp:
                yield Finding(
                    path, lineno, self.id,
                    f"{cls.__name__}.{f.name}: perturbing the field does "
                    f"not change fingerprint() -- configs differing only "
                    f"here share a cache entry (the pre-PR1 _config_key "
                    f"bug shape)")
