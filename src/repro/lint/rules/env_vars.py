"""Rule ``env-var``: every ``REPRO_*`` knob is documented and validated.

The simulator's behaviour knobs all travel through ``REPRO_*`` environment
variables.  Two conventions keep them from rotting:

* **documentation** -- every ``REPRO_*`` name that appears anywhere in the
  sources must have a row in the environment-variable table of
  ``docs/ARCHITECTURE.md`` (any markdown table row containing the
  backticked name counts);
* **validated accessors** -- ``os.environ`` may only be read for a
  ``REPRO_*`` variable inside that variable's registered accessor
  function (the single place that owns defaulting and validation, in the
  ``EnvVarError`` one-line style).  Everywhere else must call the
  accessor, so a malformed value can never surface as a stray
  ``ValueError`` traceback deep in a worker.  Generic helpers that read a
  *dynamic* name (``env_float``/``_env_int``) are registered separately;
  a dynamic read anywhere else is flagged too.

Writes (``os.environ["REPRO_X"] = ...``, the CLI's routing trick) are
allowed anywhere: the convention governs who *interprets* the value.

Adding a new variable therefore means: write the accessor, register it in
:data:`ACCESSOR_REGISTRY`, and add the docs table row -- which is exactly
the checklist in docs/ARCHITECTURE.md.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding
from repro.lint.project import Project

DOCS_MD = "docs/ARCHITECTURE.md"

ENV_NAME_RE = re.compile(r"^REPRO_[A-Z][A-Z0-9_]*$")
_DOC_ROW_RE = re.compile(r"`(REPRO_[A-Z][A-Z0-9_]*)`")

#: variable -> accessor functions allowed to read it, as
#: "path/inside/project.py::function".  One accessor per variable is the
#: convention; a second entry is only warranted for genuinely layered
#: readers.
ACCESSOR_REGISTRY: Dict[str, FrozenSet[str]] = {
    "REPRO_VARIANT": frozenset(
        {"src/repro/experiments/runner.py::default_variant"}),
    "REPRO_CACHE_DIR": frozenset(
        {"src/repro/experiments/cache.py::cache_dir"}),
    "REPRO_DISK_CACHE": frozenset(
        {"src/repro/experiments/cache.py::disk_cache_enabled"}),
    "REPRO_QUEUE_DIR": frozenset(
        {"src/repro/distrib/queue.py::default_queue_dir"}),
    "REPRO_BACKEND": frozenset(
        {"src/repro/distrib/backend.py::default_backend"}),
    "REPRO_KERNEL": frozenset(
        {"src/repro/core/kernel.py::select_backend"}),
    "REPRO_FAST_PATH": frozenset(
        {"src/repro/core/pipeline.py::fast_path_enabled"}),
    "REPRO_ELIDE": frozenset(
        {"src/repro/core/pipeline.py::elision_enabled"}),
    "REPRO_FAULTS": frozenset(
        {"src/repro/reliability/faults.py::faults_spec"}),
    "REPRO_RETRY_MAX": frozenset(
        {"src/repro/reliability/retry.py::default_retry_max"}),
    "REPRO_RETRY_BASE": frozenset(
        {"src/repro/reliability/retry.py::default_retry_base"}),
    "REPRO_TRACE": frozenset(
        {"src/repro/obs/trace.py::default_trace_prefix"}),
    "REPRO_METRICS_INTERVAL": frozenset(
        {"src/repro/obs/metrics.py::default_metrics_interval"}),
}

#: Functions allowed to read a *dynamic* (non-literal) environment name:
#: the shared validating helpers every numeric accessor is built on.
GENERIC_ACCESSORS: FrozenSet[str] = frozenset({
    "src/repro/experiments/runner.py::env_float",
    "src/repro/experiments/runner.py::_env_int",
})


def _module_str_constants(tree: ast.Module) -> Dict[str, str]:
    """Module-level ``NAME = "literal"`` bindings (``ENV_CACHE_DIR`` style
    indirections resolve through these)."""
    out: Dict[str, str] = {}
    for node in tree.body:
        if (isinstance(node, ast.Assign) and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Constant)
                and isinstance(node.value.value, str)):
            out[node.targets[0].id] = node.value.value
    return out


def _is_environ(node: ast.expr) -> bool:
    """``os.environ`` or a bare ``environ`` name."""
    if isinstance(node, ast.Attribute) and node.attr == "environ":
        return True
    if isinstance(node, ast.Name) and node.id == "environ":
        return True
    return False


class _Read:
    __slots__ = ("var", "lineno", "function")

    def __init__(self, var: Optional[str], lineno: int, function: str):
        self.var = var          # None = dynamic name
        self.lineno = lineno
        self.function = function


def _environ_reads(tree: ast.Module,
                   constants: Dict[str, str]) -> List[_Read]:
    """Every environment *read* in one module, with its enclosing function.

    Detected forms: ``os.environ.get(X, ...)``, ``os.environ[X]`` in Load
    context, ``os.getenv(X)``.  ``X`` resolves through module-level string
    constants; unresolvable names become dynamic reads (``var=None``).
    """
    reads: List[_Read] = []

    def resolve(arg: ast.expr) -> Optional[str]:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.Name) and arg.id in constants:
            return constants[arg.id]
        return None

    def visit(node: ast.AST, function: str) -> None:
        for child in ast.iter_child_nodes(node):
            scope = function
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope = child.name
            if (isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)):
                func = child.func
                if func.attr == "get" and _is_environ(func.value):
                    if child.args:
                        reads.append(_Read(resolve(child.args[0]),
                                           child.lineno, scope))
                elif (func.attr == "getenv"
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "os"):
                    if child.args:
                        reads.append(_Read(resolve(child.args[0]),
                                           child.lineno, scope))
            elif (isinstance(child, ast.Subscript)
                    and _is_environ(child.value)
                    and isinstance(child.ctx, ast.Load)):
                reads.append(_Read(resolve(child.slice), child.lineno,
                                   scope))
            visit(child, scope)

    visit(tree, "<module>")
    return reads


class EnvVarRule:
    id = "env-var"
    description = ("every REPRO_* variable is documented in the "
                   "ARCHITECTURE.md table and read only through its "
                   "registered validated accessor")

    def __init__(self, registry: Optional[Dict[str, FrozenSet[str]]] = None,
                 generic: Optional[FrozenSet[str]] = None):
        self.registry = ACCESSOR_REGISTRY if registry is None else registry
        self.generic = GENERIC_ACCESSORS if generic is None else generic

    def applicable(self, project: Project) -> bool:
        return bool(project.python_files())

    def _documented(self, project: Project) -> Optional[Set[str]]:
        """REPRO_* names with a markdown table row in the docs."""
        if not project.exists(DOCS_MD):
            return None
        documented: Set[str] = set()
        for line in project.lines(project.root / DOCS_MD):
            if line.lstrip().startswith("|"):
                documented.update(_DOC_ROW_RE.findall(line))
        return documented

    def check(self, project: Project) -> Iterator[Finding]:
        documented = self._documented(project)
        mentioned: Dict[str, Tuple[str, int]] = {}
        for path in project.python_files():
            try:
                tree = project.tree(path)
            except SyntaxError:
                continue
            rel = project.rel(path)
            constants = _module_str_constants(tree)

            # Any exact REPRO_* string literal counts as a mention that
            # must be documented (reads, constants, accessor arguments).
            for node in ast.walk(tree):
                if (isinstance(node, ast.Constant)
                        and isinstance(node.value, str)
                        and ENV_NAME_RE.match(node.value)):
                    mentioned.setdefault(node.value, (rel, node.lineno))

            for read in _environ_reads(tree, constants):
                where = f"{rel}::{read.function}"
                if read.var is None:
                    if where not in self.generic:
                        yield Finding(
                            rel, read.lineno, self.id,
                            f"dynamic os.environ read in {read.function}() "
                            f"outside the registered generic accessors "
                            f"({', '.join(sorted(self.generic))})")
                    continue
                if not ENV_NAME_RE.match(read.var):
                    continue  # foreign variables (XDG_*, ...) are not ours
                allowed = self.registry.get(read.var)
                if allowed is None:
                    yield Finding(
                        rel, read.lineno, self.id,
                        f"{read.var} is read here but has no registered "
                        f"accessor; add one (validated, one-line "
                        f"EnvVarError style) and register it in "
                        f"repro/lint/rules/env_vars.py")
                elif where not in allowed:
                    yield Finding(
                        rel, read.lineno, self.id,
                        f"{read.var} must be read through its accessor "
                        f"({', '.join(sorted(allowed))}), not directly "
                        f"in {read.function}()")

        if documented is None:
            yield Finding(DOCS_MD, 0, self.id,
                          f"{DOCS_MD} not found; the environment-variable "
                          f"table is the canonical registry")
            return
        for var in sorted(mentioned):
            if var not in documented:
                rel, lineno = mentioned[var]
                yield Finding(
                    rel, lineno, self.id,
                    f"{var} is not documented in the {DOCS_MD} "
                    f"environment-variable table")
