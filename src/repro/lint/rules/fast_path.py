"""Rule ``fast-path``: the fused driver's guards must stay sound.

``Processor._run_phase_fast`` skips a stage whenever a *guard* proves the
stage's own no-work early-return would fire.  Two structural properties
keep that transformation behaviour-preserving, and both are easy to break
silently:

* **dispatch-set purity** -- eligibility must test ``type(x) is
  StockStage`` for exactly the stock stage classes (the ones defined in
  ``repro/core/stages/``).  An ``isinstance`` test, or admitting a class
  that overrides a stock stage's ``tick``/``writeback``, would route a
  variant with different early-return semantics through guards derived
  from the stock bodies;
* **guard attribute existence** -- every attribute a guard (or the fused
  loop's local aliases) reads off the engine objects must actually be
  declared by the corresponding class.  A rename like ``fetch_resume_cycle
  -> resume_cycle`` that misses the pipeline raises only at runtime, on
  the fast path only, after the equivalence suite happens to enter the
  guarded branch.

The attribute check uses a small declared typing table (`TYPED_SLOTS`) for
the handful of engine objects the fused loop touches, plus the project
class index for the attribute surfaces; no imports, so it runs unchanged
over fixture trees.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.engine import Finding
from repro.lint.project import Project

PIPELINE_PY = "src/repro/core/pipeline.py"
STAGES_DIR = "src/repro/core/stages"

#: The four stock stage component classes the fused driver may dispatch on.
STOCK_STAGES = ("FrontEnd", "RenameIntegrate", "IssueExecute", "CommitDiva")

#: Methods whose override changes a stage's no-work early-return contract.
GUARDED_METHODS = ("tick", "writeback")

#: Static types of the engine attributes the fused loop reads:
#: (owner class, attribute) -> class of the attribute's value.  Only the
#: objects whose *own* attributes the guards consult need entries; every
#: other attribute value is opaque (checked for existence, not descended).
TYPED_SLOTS: Dict[Tuple[str, str], str] = {
    ("Processor", "state"): "PipelineState",
    ("Processor", "config"): "MachineConfig",
    ("Processor", "front_end"): "FrontEnd",
    ("Processor", "rename_integrate"): "RenameIntegrate",
    ("Processor", "issue_execute"): "IssueExecute",
    ("Processor", "commit_diva"): "CommitDiva",
    ("PipelineState", "arch"): "ArchState",
    ("PipelineState", "stats"): "SimStats",
    ("PipelineState", "rs"): "ReservationStations",
    ("PipelineState", "rob"): "ReorderBuffer",
    ("PipelineState", "lsq"): "LoadStoreQueue",
    ("PipelineState", "prf"): "PhysicalRegisterFile",
    ("PipelineState", "window"): "Window",
}

#: Methods of Processor whose bodies the attribute check covers.  The
#: elision-horizon computation is a guard in the same sense as the inline
#: stage-skip conditions: every attribute it reads must exist, or the
#: quiescence proof silently diverges from the machine.
CHECKED_METHODS = ("_fast_path_eligible", "_run_phase_fast",
                   "_elide_target")


def _find_method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


class FastPathRule:
    id = "fast-path"
    description = ("fast-path dispatch admits only stock stages via "
                   "`type(x) is`, and every guard attribute exists")

    def applicable(self, project: Project) -> bool:
        return project.exists(PIPELINE_PY)

    # ------------------------------------------------------------------
    def _stage_module_classes(self, project: Project) -> Set[str]:
        """Classes defined in the stage package (the stock dispatch set)."""
        names: Set[str] = set()
        base = project.root / STAGES_DIR
        if not base.is_dir():
            return names
        for path in sorted(base.glob("*.py")):
            try:
                tree = project.tree(path)
            except SyntaxError:
                continue
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    names.add(node.name)
        return names

    def _overriding_subclasses(self, project: Project
                               ) -> Dict[str, Tuple[str, int]]:
        """name -> (path, line) of every project class that subclasses a
        stock stage and overrides a guarded method."""
        out: Dict[str, Tuple[str, int]] = {}
        for name, infos in project.classes().items():
            for info in infos:
                if not set(info.bases) & set(STOCK_STAGES):
                    continue
                tree = project.tree(info.path)
                for node in ast.walk(tree):
                    if (isinstance(node, ast.ClassDef)
                            and node.name == name
                            and any(isinstance(s, ast.FunctionDef)
                                    and s.name in GUARDED_METHODS
                                    for s in node.body)):
                        out[name] = (project.rel(info.path), info.lineno)
        return out

    # ------------------------------------------------------------------
    def check(self, project: Project) -> Iterator[Finding]:
        path = project.root / PIPELINE_PY
        tree = project.tree(path)
        rel = project.rel(path)
        processor: Optional[ast.ClassDef] = None
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef) and node.name == "Processor":
                processor = node
                break
        if processor is None:
            yield Finding(rel, 0, self.id,
                          "Processor class not found; cannot audit the "
                          "fast-path driver")
            return

        eligible = _find_method(processor, "_fast_path_eligible")
        if eligible is None:
            yield Finding(rel, processor.lineno, self.id,
                          "_fast_path_eligible not found; cannot audit "
                          "the fast-path dispatch set")
        else:
            yield from self._check_dispatch(project, rel, eligible)

        yield from self._check_attributes(project, rel, processor)

    # ------------------------------------------------------------------
    def _check_dispatch(self, project: Project, rel: str,
                        eligible: ast.FunctionDef) -> Iterator[Finding]:
        stock = self._stage_module_classes(project)
        overriding = self._overriding_subclasses(project)
        compared: List[Tuple[str, int]] = []
        for node in ast.walk(eligible):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "isinstance"):
                yield Finding(
                    rel, node.lineno, self.id,
                    "fast-path eligibility must use `type(x) is Stock` "
                    "(exact class), not isinstance -- a subclass with "
                    "overridden tick semantics would pass the guard")
            if (isinstance(node, ast.Compare)
                    and len(node.ops) == 1
                    and isinstance(node.ops[0], ast.Is)
                    and isinstance(node.left, ast.Call)
                    and isinstance(node.left.func, ast.Name)
                    and node.left.func.id == "type"):
                comparator = node.comparators[0]
                if isinstance(comparator, ast.Name):
                    compared.append((comparator.id, node.lineno))
                elif isinstance(comparator, ast.Attribute):
                    compared.append((comparator.attr, node.lineno))
        for name, lineno in compared:
            if name in overriding:
                where = "%s:%d" % overriding[name]
                yield Finding(
                    rel, lineno, self.id,
                    f"fast-path dispatch set admits `{name}` ({where}), "
                    f"which overrides a stock stage's "
                    f"tick/writeback -- its early-return contract is not "
                    f"the one the fused guards encode")
            elif stock and name not in stock:
                yield Finding(
                    rel, lineno, self.id,
                    f"fast-path dispatch set admits `{name}`, which is "
                    f"not a stock stage class from {STAGES_DIR}/")

    # ------------------------------------------------------------------
    def _check_attributes(self, project: Project, rel: str,
                          processor: ast.ClassDef) -> Iterator[Finding]:
        for method_name in CHECKED_METHODS:
            method = _find_method(processor, method_name)
            if method is None:
                continue
            yield from self._check_method_attrs(project, rel, method)

    def _infer(self, node: ast.expr, env: Dict[str, Optional[str]],
               project: Project) -> Tuple[Optional[str], bool]:
        """(class name or None, known) for an expression.

        ``known=False`` means the expression's type is opaque -- attribute
        accesses on it are not checked.  ``known=True`` with a class name
        means attribute accesses must exist on that class.
        """
        if isinstance(node, ast.Name):
            if node.id == "self":
                return "Processor", True
            if node.id in env:
                cls = env[node.id]
                return cls, cls is not None
            return None, False
        if isinstance(node, ast.Attribute):
            base_cls, known = self._infer(node.value, env, project)
            if not known or base_cls is None:
                return None, False
            return TYPED_SLOTS.get((base_cls, node.attr)), \
                (base_cls, node.attr) in TYPED_SLOTS
        return None, False

    def _check_method_attrs(self, project: Project, rel: str,
                            method: ast.FunctionDef) -> Iterator[Finding]:
        env: Dict[str, Optional[str]] = {}
        # Pass 1: local aliases (`execute = self.issue_execute`,
        # `rs_ready = state.rs._ready`, ...) in statement order.
        for node in ast.walk(method):
            if (isinstance(node, ast.Assign) and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)):
                cls, known = self._infer(node.value, env, project)
                if known and cls is not None:
                    env[node.targets[0].id] = cls
        # Pass 2: every attribute access on a typed base must exist.
        reported: Set[Tuple[int, str, str]] = set()
        for node in ast.walk(method):
            if not isinstance(node, ast.Attribute):
                continue
            base_cls, known = self._infer(node.value, env, project)
            if not known or base_cls is None:
                continue
            attrs = project.class_attrs(base_cls)
            if attrs is None:
                continue  # class not in this tree (partial fixture)
            if node.attr in attrs:
                continue
            key = (node.lineno, base_cls, node.attr)
            if key in reported:
                continue
            reported.add(key)
            yield Finding(
                rel, node.lineno, self.id,
                f"fast-path guard references `{base_cls}.{node.attr}`, "
                f"which no class declaration defines -- a rename on one "
                f"side would only fail at runtime on the fast path")
