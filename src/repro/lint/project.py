"""Parsed-source index shared by the lint rules.

:class:`Project` wraps one repository checkout (the directory that holds
``src/repro``, ``docs/`` and ``tests/``) and hands the rules lazily parsed
ASTs, raw source lines and a light class-attribute index.  Everything is
path-based -- rules never import the code under analysis unless they opt
into it explicitly (only the cache-key purity rule does, and only when the
linted tree *is* the live ``repro`` package) -- so the same rules run
unchanged over the tiny fixture trees in ``tests/lint_fixtures/``.

The class index is deliberately simple: for every ``class`` statement in the
tree it records the attribute names the class visibly declares -- methods,
class-level assignments, annotated (dataclass) fields, ``__slots__`` strings
and every ``self.X = ...`` store anywhere in its methods -- plus the names
of its bases so lookups can union inherited attributes.  That is exactly
enough to answer the question the fast-path rule asks ("does this guard
expression reference an attribute that exists?") without real type
inference.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

#: Package sources live here, relative to the project root.
PACKAGE_REL = Path("src") / "repro"


@dataclass
class ClassInfo:
    """One ``class`` statement: declared attributes and base-class names."""

    name: str
    path: Path                       # absolute path of the defining module
    lineno: int
    bases: List[str] = field(default_factory=list)
    attrs: Set[str] = field(default_factory=set)


def _slot_strings(value: ast.expr) -> List[str]:
    """String elements of a ``__slots__`` tuple/list literal."""
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return [elt.value for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)]
    if isinstance(value, ast.Constant) and isinstance(value.value, str):
        return [value.value]
    return []


def class_info(node: ast.ClassDef, path: Path) -> ClassInfo:
    """Collect the visible attribute surface of one class statement."""
    info = ClassInfo(name=node.name, path=path, lineno=node.lineno)
    for base in node.bases:
        if isinstance(base, ast.Name):
            info.bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            info.bases.append(base.attr)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.attrs.add(stmt.name)
            for sub in ast.walk(stmt):
                if (isinstance(sub, ast.Attribute)
                        and isinstance(sub.ctx, ast.Store)
                        and isinstance(sub.value, ast.Name)
                        and sub.value.id == "self"):
                    info.attrs.add(sub.attr)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    info.attrs.add(target.id)
                    if target.id == "__slots__":
                        info.attrs.update(_slot_strings(stmt.value))
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                info.attrs.add(stmt.target.id)
    return info


class Project:
    """One checkout under lint: parsed files plus the class index."""

    def __init__(self, root: Path):
        self.root = Path(root).resolve()
        self.package_root = self.root / PACKAGE_REL
        self._sources: Dict[Path, str] = {}
        self._lines: Dict[Path, List[str]] = {}
        self._trees: Dict[Path, ast.Module] = {}
        self._classes: Optional[Dict[str, List[ClassInfo]]] = None

    # ------------------------------------------------------------------
    def rel(self, path: Path) -> str:
        """Root-relative POSIX path (stable across machines, used in
        findings and baseline keys)."""
        try:
            return Path(path).resolve().relative_to(self.root).as_posix()
        except ValueError:
            return Path(path).as_posix()

    def exists(self, relpath: str) -> bool:
        return (self.root / relpath).is_file()

    def python_files(self) -> List[Path]:
        """Every package source file, in sorted (deterministic) order."""
        if not self.package_root.is_dir():
            return []
        return sorted(p for p in self.package_root.rglob("*.py")
                      if "__pycache__" not in p.parts)

    # ------------------------------------------------------------------
    def source(self, path: Path) -> str:
        path = Path(path)
        if path not in self._sources:
            self._sources[path] = path.read_text(encoding="utf-8")
        return self._sources[path]

    def lines(self, path: Path) -> List[str]:
        path = Path(path)
        if path not in self._lines:
            self._lines[path] = self.source(path).splitlines()
        return self._lines[path]

    def tree(self, path: Path) -> ast.Module:
        path = Path(path)
        if path not in self._trees:
            self._trees[path] = ast.parse(self.source(path),
                                          filename=str(path))
        return self._trees[path]

    # ------------------------------------------------------------------
    def classes(self) -> Dict[str, List[ClassInfo]]:
        """name -> every class statement with that name in the package."""
        if self._classes is None:
            index: Dict[str, List[ClassInfo]] = {}
            for path in self.python_files():
                try:
                    tree = self.tree(path)
                except SyntaxError:
                    continue
                for node in ast.walk(tree):
                    if isinstance(node, ast.ClassDef):
                        index.setdefault(node.name, []).append(
                            class_info(node, path))
            self._classes = index
        return self._classes

    def class_attrs(self, name: str,
                    _seen: Optional[Set[str]] = None) -> Optional[Set[str]]:
        """Union of declared attributes of every in-project class called
        ``name``, including attributes inherited from in-project bases.
        ``None`` when no such class exists in the tree."""
        infos = self.classes().get(name)
        if not infos:
            return None
        seen = _seen if _seen is not None else set()
        if name in seen:
            return set()
        seen.add(name)
        attrs: Set[str] = set()
        for info in infos:
            attrs.update(info.attrs)
            for base in info.bases:
                inherited = self.class_attrs(base, seen)
                if inherited:
                    attrs.update(inherited)
        return attrs
