"""The ``repro lint`` rule engine.

A lint *rule* checks one project invariant -- a property of the repository
the runtime test suite can only sample -- and reports violations as
:class:`Finding` records (file, line, rule id, message).  The engine owns
everything around the rules: file discovery (via
:class:`~repro.lint.project.Project`), inline ``# repro: lint-ok[rule]``
suppressions, the committed baseline of grandfathered findings, stable
ordering, JSON rendering and the exit-status contract (non-zero exactly
when *new* findings exist).

Suppression syntax::

    risky_line()  # repro: lint-ok[determinism] seeded upstream per slice

The comment suppresses the named rule (a comma-separated list, or ``*``)
on its own line; a comment on the line immediately above works too, for
lines with no room.  Suppressions are for *intentional* violations and
must carry a justification; the baseline exists only to grandfather
pre-existing findings when a new rule lands, so the repository's committed
baseline should trend toward (and stay) empty.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Protocol, Sequence

from repro.lint.project import Project

#: ``# repro: lint-ok[rule-a,rule-b] optional justification``
SUPPRESS_RE = re.compile(r"#\s*repro:\s*lint-ok\[([A-Za-z0-9_*,\- ]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    path: str        # project-root-relative POSIX path
    line: int        # 1-based; 0 when the finding is file-level
    rule: str        # rule id, e.g. "determinism"
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def baseline_key(self) -> str:
        """Line-number-free identity used by the baseline file, so findings
        stay grandfathered while unrelated edits shift them around."""
        return "\t".join((self.rule, self.path, self.message))

    def to_dict(self) -> Dict[str, Any]:
        return {"path": self.path, "line": self.line,
                "rule": self.rule, "message": self.message}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Finding":
        return cls(path=data["path"], line=int(data["line"]),
                   rule=data["rule"], message=data["message"])


class Rule(Protocol):
    """The interface every lint rule implements."""

    #: Stable rule id (kebab-case; used in suppressions, baselines, --rules).
    id: str
    #: One-line description for reports and the docs rule table.
    description: str

    def applicable(self, project: Project) -> bool:
        """Whether the rule's target files exist in this tree."""

    def check(self, project: Project) -> Iterable[Finding]:
        """Yield every violation found in ``project``."""


@dataclass
class LintReport:
    """Outcome of one engine run."""

    root: str
    findings: List[Finding]              # new findings only, sorted
    suppressed: int = 0
    baselined: int = 0
    rules: List[str] = field(default_factory=list)          # ran
    skipped_rules: List[str] = field(default_factory=list)  # not applicable

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "rules": list(self.rules),
            "skipped_rules": list(self.skipped_rules),
            "findings": [f.to_dict() for f in self.findings],
            "counts": {"new": len(self.findings),
                       "suppressed": self.suppressed,
                       "baselined": self.baselined},
        }


def _suppressions_on(line: str) -> Optional[List[str]]:
    match = SUPPRESS_RE.search(line)
    if match is None:
        return None
    return [token.strip() for token in match.group(1).split(",")
            if token.strip()]


def is_suppressed(project: Project, finding: Finding) -> bool:
    """Whether an inline ``lint-ok`` comment covers this finding.

    The flagged line itself and the line immediately above are consulted;
    a missing or unreadable file (synthetic findings from dynamic rules)
    never suppresses.
    """
    if finding.line <= 0:
        return False
    try:
        lines = project.lines(project.root / finding.path)
    except OSError:
        return False
    for lineno in (finding.line, finding.line - 1):
        if 1 <= lineno <= len(lines):
            rules = _suppressions_on(lines[lineno - 1])
            if rules and ("*" in rules or finding.rule in rules):
                return True
    return False


def default_rules() -> Sequence[Rule]:
    from repro.lint.rules import ALL_RULES

    return ALL_RULES


def run_lint(root: Path, rules: Optional[Sequence[Rule]] = None,
             baseline_keys: Iterable[str] = ()) -> LintReport:
    """Run ``rules`` (default: all six project rules) over the tree at
    ``root`` and fold in suppressions and the baseline."""
    project = Project(root)
    if rules is None:
        rules = default_rules()
    baseline = set(baseline_keys)
    report = LintReport(root=str(project.root), findings=[])
    collected: List[Finding] = []
    for rule in rules:
        if not rule.applicable(project):
            report.skipped_rules.append(rule.id)
            continue
        report.rules.append(rule.id)
        collected.extend(rule.check(project))
    for finding in sorted(set(collected)):
        if is_suppressed(project, finding):
            report.suppressed += 1
        elif finding.baseline_key() in baseline:
            report.baselined += 1
        else:
            report.findings.append(finding)
    return report


def default_root() -> Path:
    """The checkout to lint: the tree this ``repro`` package was imported
    from when it has the repository layout, else the working directory."""
    import repro

    package = Path(repro.__file__).resolve().parent
    root = package.parent.parent
    if (root / "src" / "repro").is_dir():
        return root
    return Path.cwd()
