"""The committed baseline of grandfathered lint findings.

Format: one tab-separated ``rule<TAB>path<TAB>message`` entry per line
(no line numbers -- see :meth:`repro.lint.engine.Finding.baseline_key`),
``#`` comments and blank lines ignored.  The file exists so a *new* rule
can land as a blocking check while its pre-existing findings are paid down
over time; intentional, permanent violations belong in inline
``lint-ok[...]`` suppressions with a justification, not here, and the
repository's committed baseline should stay empty.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Set

from repro.lint.engine import Finding

#: Default baseline location, relative to the project root.
BASELINE_NAME = "lint-baseline.txt"

_HEADER = """\
# repro lint baseline -- grandfathered findings, one per line:
#   rule<TAB>path<TAB>message
# Entries are line-number free so unrelated edits do not churn them.
# Policy (docs/ARCHITECTURE.md): only pre-existing findings of a newly
# landed rule belong here; intentional violations get an inline
# `# repro: lint-ok[rule] <why>` instead.  Keep this file empty.
"""


def load_baseline(path: Path) -> Set[str]:
    """Baseline keys from ``path``; an absent file is an empty baseline."""
    keys: Set[str] = set()
    try:
        text = Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return keys
    for raw in text.splitlines():
        line = raw.rstrip("\n")
        if not line.strip() or line.lstrip().startswith("#"):
            continue
        if line.count("\t") < 2:
            raise ValueError(
                f"{path}: malformed baseline entry {line!r} "
                f"(expected rule<TAB>path<TAB>message)")
        keys.add(line)
    return keys


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write ``findings`` (plus the header) as the new baseline; returns
    the number of entries written."""
    entries: List[str] = sorted({f.baseline_key() for f in findings})
    body = _HEADER + "".join(entry + "\n" for entry in entries)
    Path(path).write_text(body, encoding="utf-8")
    return len(entries)
