"""Hand-written micro-kernels.

These small programs exercise specific behaviours of the machine and of the
integration mechanism in isolation; they are used throughout the test suite
and the examples.  Each returns a ready-to-run
:class:`~repro.isa.program.Program` whose exit code is the kernel's result
(so tests can compare the timing core against the functional emulator and
against a closed-form expected value).
"""

from __future__ import annotations

from repro.isa.program import Program, ProgramBuilder

# Base address used for in-memory data structures set up by the kernels.
GLOBAL_BASE = 0x0020_0000


def _exit_with(builder: ProgramBuilder, reg: str = "v0") -> None:
    """Emit the standard epilogue: print the result and exit with it."""
    builder.mov("a0", reg)
    builder.syscall(1)
    builder.syscall(0)


def counted_loop(iterations: int = 100, step: int = 3) -> Program:
    """Sum ``step`` into an accumulator ``iterations`` times.

    The loop body is fully predictable and contains a program-constant
    re-initialisation, so with general reuse enabled the ``li`` instruction
    integrates on every iteration.
    """
    b = ProgramBuilder(name=f"counted_loop_{iterations}")
    b.label("main")
    b.li("s0", 0)
    b.li("s1", iterations)
    b.label("loop")
    b.li("t0", step)                 # program constant: integrates
    b.rr("addq", "s0", "s0", "t0")
    b.ri("subqi", "s1", "s1", 1)
    b.cbr("bgt", "s1", "loop")
    _exit_with(b, "s0")
    return b.build(entry="main")


def array_sum(length: int = 64, stride: int = 1) -> Program:
    """Initialise an array with ``i`` and sum it.

    Exercises the data cache, load issue, and (with integration) the reuse of
    the loop's address-generation constants.
    """
    b = ProgramBuilder(name=f"array_sum_{length}")
    b.label("main")
    b.li("gp", GLOBAL_BASE)
    b.li("t0", 0)                    # index
    b.li("t1", length)
    b.mov("t2", "gp")
    b.label("init")
    b.stq("t0", 0, "t2")
    b.ri("addqi", "t2", "t2", 8 * stride)
    b.ri("addqi", "t0", "t0", 1)
    b.rr("cmplt", "t3", "t0", "t1")
    b.cbr("bne", "t3", "init")
    b.li("s0", 0)                    # sum
    b.li("t0", 0)
    b.mov("t2", "gp")
    b.label("sum")
    b.ldq("t4", 0, "t2")
    b.rr("addq", "s0", "s0", "t4")
    b.ri("addqi", "t2", "t2", 8 * stride)
    b.ri("addqi", "t0", "t0", 1)
    b.rr("cmplt", "t3", "t0", "t1")
    b.cbr("bne", "t3", "sum")
    _exit_with(b, "s0")
    return b.build(entry="main")


def fib_recursive(n: int = 12) -> Program:
    """Naive recursive Fibonacci.

    This is the classic stress test for reverse integration: every call
    saves ``ra``, ``s0`` and ``a0`` to the stack frame and restores them on
    the way out, and the stack-pointer adjustments nest perfectly.
    """
    b = ProgramBuilder(name=f"fib_{n}")
    b.label("main")
    b.li("a0", n)
    b.bsr("fib")
    _exit_with(b, "v0")

    b.label("fib")
    b.lda("sp", -32, "sp")
    b.stq("ra", 0, "sp")
    b.stq("s0", 8, "sp")
    b.stq("a0", 16, "sp")
    b.ri("cmplei", "t0", "a0", 1)
    b.cbr("bne", "t0", "fib_base")
    b.ri("subqi", "a0", "a0", 1)
    b.bsr("fib")
    b.mov("s0", "v0")
    b.ldq("a0", 16, "sp")
    b.ri("subqi", "a0", "a0", 2)
    b.bsr("fib")
    b.rr("addq", "v0", "v0", "s0")
    b.br("fib_done")
    b.label("fib_base")
    b.mov("v0", "a0")
    b.label("fib_done")
    b.ldq("a0", 16, "sp")
    b.ldq("s0", 8, "sp")
    b.ldq("ra", 0, "sp")
    b.lda("sp", 32, "sp")
    b.ret()
    return b.build(entry="main")


def pointer_chase(nodes: int = 64, hops: int = 256) -> Program:
    """Build a singly linked ring and chase it.

    Serial dependent loads make this memory-latency bound (the ``mcf``-like
    behaviour): integration has little to offer, which is exactly the point.
    """
    b = ProgramBuilder(name=f"pointer_chase_{nodes}_{hops}")
    node_size = 16
    b.label("main")
    b.li("gp", GLOBAL_BASE)
    # Build the ring: node[i].next = &node[i+1], last points back to first.
    b.li("t0", 0)
    b.li("t1", nodes - 1)
    b.mov("t2", "gp")
    b.label("build")
    b.ri("addqi", "t3", "t2", node_size)
    b.stq("t3", 0, "t2")             # next pointer
    b.stq("t0", 8, "t2")             # payload = index
    b.mov("t2", "t3")
    b.ri("addqi", "t0", "t0", 1)
    b.rr("cmplt", "t4", "t0", "t1")
    b.cbr("bne", "t4", "build")
    b.stq("gp", 0, "t2")             # close the ring
    b.stq("t0", 8, "t2")
    # Chase.
    b.li("s0", 0)                    # sum of payloads
    b.li("s1", hops)
    b.mov("t2", "gp")
    b.label("chase")
    b.ldq("t3", 8, "t2")
    b.rr("addq", "s0", "s0", "t3")
    b.ldq("t2", 0, "t2")
    b.ri("subqi", "s1", "s1", 1)
    b.cbr("bgt", "s1", "chase")
    _exit_with(b, "s0")
    return b.build(entry="main")


def pointer_chase_memory_bound(nodes: int = 12, hops: int = 2048,
                               stride: int = 512 * 1024) -> Program:
    """A pointer chase whose every hop misses all the way to main memory.

    The ring nodes sit ``stride`` bytes apart.  The default stride equals
    one way of the 2MB 4-way L2 (8192 sets x 64-byte lines), so every node
    maps to the *same* set of both the L2 (4 ways) and the 32KB 2-way DL1;
    with more nodes than ways, LRU evicts each line long before the ring
    comes back around and every hop pays the full main-memory latency.
    Serial dependent loads mean the machine fills its windows and then sits
    provably idle for most of each miss -- the workload that event-horizon
    cycle elision is for, and the adversarial case for any clocking scheme
    that must stay bit-identical across long quiescent spans.  The chase
    loop is kept to the minimal three instructions (dependent load, trip
    counter, branch) so the active cycles between misses stay small next to
    the quiescent span of each miss.
    """
    b = ProgramBuilder(name=f"pointer_chase_mem_{nodes}_{hops}")
    b.label("main")
    b.li("gp", GLOBAL_BASE)
    b.li("t5", stride)
    # Build the ring: node[i].next = &node[i+1], last points back to first.
    b.li("t0", 0)
    b.li("t1", nodes - 1)
    b.mov("t2", "gp")
    b.label("build")
    b.rr("addq", "t3", "t2", "t5")
    b.stq("t3", 0, "t2")             # next pointer
    b.stq("t0", 8, "t2")             # payload = index
    b.mov("t2", "t3")
    b.ri("addqi", "t0", "t0", 1)
    b.rr("cmplt", "t4", "t0", "t1")
    b.cbr("bne", "t4", "build")
    b.stq("gp", 0, "t2")             # close the ring
    b.stq("t0", 8, "t2")
    # Chase: nothing but the serial dependent load and loop control.
    b.li("s1", hops)
    b.mov("t2", "gp")
    b.label("chase")
    b.ldq("t2", 0, "t2")
    b.ri("subqi", "s1", "s1", 1)
    b.cbr("bgt", "s1", "chase")
    # Exit with the payload of the final node (one last dependent load),
    # so a wrong chase cannot terminate with the right value.
    b.ldq("s0", 8, "t2")
    _exit_with(b, "s0")
    return b.build(entry="main")


def save_restore_chain(depth: int = 6, iterations: int = 32) -> Program:
    """A chain of functions, each saving/restoring callee-saved registers.

    ``iterations`` calls of a ``depth``-deep call chain where every level
    saves ``ra`` and two callee-saved registers: the densest possible source
    of reverse-integration (speculative memory bypassing) opportunities.
    """
    b = ProgramBuilder(name=f"save_restore_{depth}x{iterations}")
    b.label("main")
    b.li("s0", 0)
    b.li("s1", iterations)
    b.label("loop")
    b.mov("a0", "s1")
    b.bsr("level0")
    b.rr("addq", "s0", "s0", "v0")
    b.ri("subqi", "s1", "s1", 1)
    b.cbr("bgt", "s1", "loop")
    _exit_with(b, "s0")

    for level in range(depth):
        b.label(f"level{level}")
        b.lda("sp", -32, "sp")
        b.stq("ra", 0, "sp")
        b.stq("s2", 8, "sp")
        b.stq("s3", 16, "sp")
        b.ri("addqi", "s2", "a0", level)
        b.ri("addqi", "s3", "a0", 2 * level)
        if level + 1 < depth:
            b.bsr(f"level{level + 1}")
            b.rr("addq", "v0", "v0", "s2")
            b.rr("addq", "v0", "v0", "s3")
        else:
            b.rr("addq", "v0", "s2", "s3")
        b.ldq("s3", 16, "sp")
        b.ldq("s2", 8, "sp")
        b.ldq("ra", 0, "sp")
        b.lda("sp", 32, "sp")
        b.ret()
    return b.build(entry="main")


def matrix_smooth(size: int = 8, passes: int = 4) -> Program:
    """A small floating-point stencil over a ``size`` x ``size`` matrix.

    Provides the FP component of the instruction-type breakdown (the
    ``eon``/``twolf``-like behaviour).
    """
    b = ProgramBuilder(name=f"matrix_smooth_{size}x{passes}")
    row_bytes = size * 8
    b.label("main")
    b.li("gp", GLOBAL_BASE)
    # Initialise matrix[i][j] = i + j (integer stores, loaded as FP bits via
    # itoft after loading -- we keep values integral so results are exact).
    b.li("t0", 0)
    b.li("t5", size * size)
    b.mov("t2", "gp")
    b.label("init")
    b.stq("t0", 0, "t2")
    b.ri("addqi", "t2", "t2", 8)
    b.ri("addqi", "t0", "t0", 1)
    b.rr("cmplt", "t3", "t0", "t5")
    b.cbr("bne", "t3", "init")
    # Smoothing passes: cell += neighbour; accumulate a checksum.
    b.li("s0", 0)
    b.li("s1", passes)
    b.label("pass")
    b.li("t0", 1)
    b.label("cell")
    b.rr("sll", "t2", "t0", "zero")      # t2 = t0 (cheap copy through ALU)
    b.ri("slli", "t2", "t0", 3)
    b.rr("addq", "t2", "t2", "gp")
    b.ldq("t3", 0, "t2")
    b.ldq("t4", -8, "t2")
    b.rr("itoft", "f1", "t3", "zero")
    b.rr("itoft", "f2", "t4", "zero")
    b.rr("addt", "f3", "f1", "f2")
    b.rr("mult", "f3", "f3", "f2")
    b.rr("ftoit", "t3", "f3", "zero")
    b.rr("addq", "s0", "s0", "t3")
    b.ri("addqi", "t0", "t0", 1)
    b.ri("cmplti", "t3", "t0", size * size)
    b.cbr("bne", "t3", "cell")
    b.ri("subqi", "s1", "s1", 1)
    b.cbr("bgt", "s1", "pass")
    b.ri("andi", "s0", "s0", 0xFFFF)
    _exit_with(b, "s0")
    return b.build(entry="main")
