"""Workload programs for the simulator.

The paper evaluates on the SPEC2000 integer benchmarks compiled for Alpha.
Those binaries (and an Alpha toolchain) are unavailable here, so this package
provides two substitutes:

* :mod:`repro.workloads.kernels` -- small hand-written micro-kernels
  (counted loops, recursive Fibonacci, array reductions, pointer chasing,
  call-heavy save/restore chains) used by tests and examples;
* :mod:`repro.workloads.spec_like` -- parameterised synthetic programs, one
  per SPEC2000-INT benchmark name, that reproduce the *structural* properties
  integration depends on: call intensity and call-graph depth, stack
  save/restore density, un-hoisted loop-invariant and program-constant
  computation, pointer chasing, and data-dependent (hard-to-predict)
  branches.

Every workload is a plain :class:`~repro.isa.program.Program`, so it runs on
both the functional emulator and the timing core.
"""

from repro.workloads.kernels import (
    counted_loop,
    array_sum,
    fib_recursive,
    pointer_chase,
    pointer_chase_memory_bound,
    save_restore_chain,
    matrix_smooth,
)
from repro.workloads.spec_like import (
    WorkloadSpec,
    SPEC_WORKLOADS,
    build_workload,
    workload_names,
)

__all__ = [
    "counted_loop",
    "array_sum",
    "fib_recursive",
    "pointer_chase",
    "pointer_chase_memory_bound",
    "save_restore_chain",
    "matrix_smooth",
    "WorkloadSpec",
    "SPEC_WORKLOADS",
    "build_workload",
    "workload_names",
]
