"""Synthetic SPEC2000-integer-like workloads.

The real SPEC2000 binaries are not available in this environment, so each
benchmark name from the paper's Figure 4 maps to a *synthetic* program that
reproduces the structural properties register integration responds to:

* **call intensity and call-graph depth** -- each function call saves and
  restores ``ra`` and callee-saved registers through the stack frame, the
  food source for reverse integration (speculative memory bypassing);
* **dynamic redundancy** -- program-constant initialisations and un-hoisted
  loop-invariant address computations repeated across invocations of the
  same function, the food source for general reuse;
* **static redundancy across functions** -- loop-control and address idioms
  with identical opcode/immediate shapes in different functions, which only
  opcode indexing can match;
* **hard-to-predict branches** on pseudo-random data, which create the
  squashes that squash reuse feeds on;
* **pointer chasing** and large data footprints for the memory-bound
  benchmarks (``mcf``), where integration helps least.

Every workload is generated deterministically from its seed, so simulation
results are reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Sequence

from repro.isa.program import Program, ProgramBuilder

GLOBAL_BASE = 0x0020_0000
GLOBAL_WORDS = 512


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters describing one synthetic benchmark."""

    name: str
    seed: int
    description: str
    # Call structure.
    num_funcs: int = 6
    call_depth: int = 3
    calls_per_body: int = 2
    callee_saves: int = 2
    caller_saves: int = 1
    # Per-function body composition.
    alu_ops: int = 6
    const_inits: int = 3
    loads: int = 3
    stores: int = 2
    fp_ops: int = 0
    inner_loop_iters: int = 0
    inner_loop_body: int = 4
    noisy_branches: int = 1
    pointer_chase: int = 0
    # Main loop.
    outer_iters: int = 40

    def scaled(self, scale: float) -> "WorkloadSpec":
        """Scale the dynamic length by adjusting the outer iteration count."""
        iters = max(1, int(round(self.outer_iters * scale)))
        return replace(self, outer_iters=iters)

    def estimate_dynamic_insts(self) -> int:
        """Rough dynamic instruction count, for longest-first scheduling.

        Models the generator's structure: the main loop invokes every
        top-level function once per outer iteration, and each invocation
        fans out ``calls_per_body`` calls per level down the call graph.
        Only the *ordering* of benchmarks matters to the scheduler, so the
        per-construct costs are coarse.
        """
        body = (self.const_inits * 2
                + self.alu_ops * 2 + 2
                + self.loads * 3 + self.stores * 3
                + self.fp_ops * 2
                + self.inner_loop_iters * (self.inner_loop_body * 2 + 4)
                + self.pointer_chase * 3
                + self.noisy_branches * 5
                + 8 + 4 * (self.callee_saves + self.caller_saves)
                + 3 * self.calls_per_body)
        top_level = max(1, -(-self.num_funcs // max(1, self.call_depth)))
        invocations = sum(self.calls_per_body ** level
                          for level in range(self.call_depth))
        init_loop = 8 * GLOBAL_WORDS
        per_iter = top_level * invocations * body + 3 * top_level + 2
        return init_loop + self.outer_iters * per_iter


class _FunctionPlan:
    """Static plan for one generated function (level + callees)."""

    def __init__(self, name: str, level: int, callees: List[str]):
        self.name = name
        self.level = level
        self.callees = callees


class _Generator:
    """Emits one synthetic program from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec):
        self.spec = spec
        self.rng = random.Random(spec.seed)
        self.builder = ProgramBuilder(name=spec.name)
        self.plans = self._plan_functions()

    # ------------------------------------------------------------------
    def _plan_functions(self) -> List[_FunctionPlan]:
        spec = self.spec
        plans: List[_FunctionPlan] = []
        levels: Dict[int, List[str]] = {}
        for i in range(spec.num_funcs):
            level = min(spec.call_depth - 1,
                        i * spec.call_depth // max(1, spec.num_funcs))
            name = f"func_{i}"
            levels.setdefault(level, []).append(name)
            plans.append(_FunctionPlan(name, level, []))
        for plan in plans:
            lower = levels.get(plan.level + 1, [])
            if not lower:
                continue
            count = min(len(lower), spec.calls_per_body)
            plan.callees = [self.rng.choice(lower) for _ in range(count)]
        return plans

    # ------------------------------------------------------------------
    def generate(self) -> Program:
        self._emit_main()
        for plan in self.plans:
            self._emit_function(plan)
        return self.builder.build(entry="main")

    # ------------------------------------------------------------------
    def _emit_main(self) -> None:
        b = self.builder
        spec = self.spec
        top_level = [p.name for p in self.plans if p.level == 0]
        b.label("main")
        b.li("gp", GLOBAL_BASE)
        # Fill the global array with a pseudo-random pattern so that
        # data-dependent branches are genuinely hard to predict.
        b.li("t0", 0)
        b.li("t1", GLOBAL_WORDS)
        b.mov("t2", "gp")
        b.li("t3", 0x9E3779B97F4A7C15 & 0xFFFF)
        b.li("t4", 12345)
        b.label("main_init")
        b.rr("mulq", "t4", "t4", "t3")
        b.ri("addqi", "t4", "t4", 0x3D)
        b.ri("andi", "t5", "t4", 0xFFFF)
        b.stq("t5", 0, "t2")
        b.ri("addqi", "t2", "t2", 8)
        b.ri("addqi", "t0", "t0", 1)
        b.rr("cmplt", "t6", "t0", "t1")
        b.cbr("bne", "t6", "main_init")
        # Outer loop calling the top-level functions.
        b.li("s0", 0)                        # checksum accumulator
        b.li("s1", spec.outer_iters)         # loop counter
        b.label("main_loop")
        for idx, callee in enumerate(top_level):
            b.mov("a0", "s1")
            if idx:
                b.ri("addqi", "a0", "a0", idx * 3)
            b.bsr(callee)
            b.rr("addq", "s0", "s0", "v0")
        b.ri("subqi", "s1", "s1", 1)
        b.cbr("bgt", "s1", "main_loop")
        b.ri("andi", "s0", "s0", 0xFFFFFF)
        b.mov("a0", "s0")
        b.syscall(1)
        b.syscall(0)

    # ------------------------------------------------------------------
    def _emit_function(self, plan: _FunctionPlan) -> None:
        b = self.builder
        spec = self.spec
        rng = self.rng
        makes_calls = bool(plan.callees)
        saves = ["ra"] if makes_calls else []
        saves += [f"s{i}" for i in range(2, 2 + spec.callee_saves)]
        frame = 16 + 8 * len(saves)

        b.label(plan.name)
        if saves:
            b.lda("sp", -frame, "sp")
            for slot, reg in enumerate(saves):
                b.stq(reg, 8 * slot, "sp")

        # Accumulator lives in a callee-saved register when the body makes
        # calls (so it survives them), otherwise in a temporary.
        acc = "s2" if (makes_calls and spec.callee_saves > 0) else "t7"
        arg = "s3" if (makes_calls and spec.callee_saves > 1) else "t6"
        b.mov(acc, "a0")
        b.mov(arg, "a0")

        self._emit_const_inits(plan, acc)
        self._emit_alu_block(acc, spec.alu_ops)
        self._emit_memory_block(plan, acc)
        if spec.inner_loop_iters:
            self._emit_inner_loop(plan, acc)
        if spec.pointer_chase:
            self._emit_pointer_chase(plan, acc)
        if spec.fp_ops:
            self._emit_fp_block(acc)
        self._emit_noisy_branches(plan, acc)

        # Calls to lower-level functions.
        for call_idx, callee in enumerate(plan.callees):
            b.ri("srai", "a0", arg, 1)
            if call_idx:
                b.ri("addqi", "a0", "a0", call_idx)
            b.bsr(callee)
            b.rr("addq", acc, acc, "v0")

        b.mov("v0", acc)
        if saves:
            for slot, reg in enumerate(reversed(saves)):
                b.ldq(reg, 8 * (len(saves) - 1 - slot), "sp")
            b.lda("sp", frame, "sp")
        b.ret()

    # ------------------------------------------------------------------
    def _function_offsets(self, plan: _FunctionPlan) -> List[int]:
        """A small per-function pool of global-array offsets.

        Drawing several static loads from the same pool creates *different
        static instructions with identical opcode/immediate/input
        combinations* -- the cross-static redundancy that only opcode
        indexing (extension 2) can exploit."""
        if not hasattr(plan, "offsets"):
            pool_size = max(2, 1 + self.spec.const_inits // 2)
            plan.offsets = [8 * self.rng.randrange(0, GLOBAL_WORDS // 2)
                            for _ in range(pool_size)]
        return plan.offsets

    def _emit_const_inits(self, plan: _FunctionPlan, acc: str) -> None:
        """Program-constant and global-address computations: the same values
        are recomputed on every invocation, so general reuse integrates them."""
        b = self.builder
        rng = self.rng
        offsets = self._function_offsets(plan)
        for i in range(self.spec.const_inits):
            choice = rng.random()
            if choice < 0.4:
                b.li("t0", rng.randrange(1, 200))
                b.rr("addq", acc, acc, "t0")
            else:
                # Un-hoisted global load; offsets recur across static
                # instructions of the same function.
                offset = rng.choice(offsets)
                b.ldq("t2", offset, "gp")
                b.rr("xor", acc, acc, "t2")

    def _emit_alu_block(self, acc: str, count: int) -> None:
        b = self.builder
        rng = self.rng
        ops = ["addq", "subq", "xor", "and", "or"]
        imm_ops = ["addqi", "subqi", "xori", "slli", "srli"]
        b.mov("t0", acc)
        for i in range(count):
            if rng.random() < 0.5:
                b.rr(rng.choice(ops), "t0", "t0", acc)
            else:
                imm_op = rng.choice(imm_ops)
                imm = rng.randrange(1, 7) if imm_op in ("slli", "srli") \
                    else rng.randrange(1, 64)
                b.ri(imm_op, "t0", "t0", imm)
        b.rr("addq", acc, acc, "t0")

    def _emit_memory_block(self, plan: _FunctionPlan, acc: str) -> None:
        """Loads and stores against the shared global array."""
        b = self.builder
        rng = self.rng
        spec = self.spec
        offsets = self._function_offsets(plan)
        for i in range(spec.loads):
            kind = rng.random()
            if kind < 0.3:
                # Redundant load of (mostly) read-only data: reusable.
                b.ldq("t2", rng.choice(offsets), "gp")
            elif kind < 0.6:
                # Data-dependent indexed load: base register changes every
                # invocation, so it cannot integrate.
                b.ri("andi", "t1", acc, (GLOBAL_WORDS - 1) * 8)
                b.rr("addq", "t1", "gp", "t1")
                b.ldq("t2", 0, "t1")
            else:
                b.ldq("t2", 8 * rng.randrange(0, GLOBAL_WORDS), "gp")
            b.rr("addq", acc, acc, "t2")
        for i in range(spec.stores):
            # Half the stores write back into the loaded region, so loaded
            # values actually change over time (and stale reuse is punished).
            if rng.random() < 0.5:
                offset = rng.choice(offsets)
            else:
                offset = 8 * rng.randrange(GLOBAL_WORDS, GLOBAL_WORDS + 64)
            b.ri("andi", "t3", acc, 0xFF)
            b.stq("t3", offset, "gp")

    def _emit_inner_loop(self, plan: _FunctionPlan, acc: str) -> None:
        b = self.builder
        rng = self.rng
        spec = self.spec
        label = f"{plan.name}_loop"
        # Loop-invariant global load inside the loop (un-hoisted).
        base_off = self.rng.choice(self._function_offsets(plan))
        b.li("t0", spec.inner_loop_iters)
        b.label(label)
        b.ldq("t2", base_off, "gp")           # invariant load: integrates
        b.rr("addq", acc, acc, "t2")
        for i in range(spec.inner_loop_body):
            b.ri("addqi", acc, acc, i + 1)
        b.ri("subqi", "t0", "t0", 1)
        b.cbr("bgt", "t0", label)

    def _emit_pointer_chase(self, plan: _FunctionPlan, acc: str) -> None:
        """Serial dependent loads through the global array (mcf-like)."""
        b = self.builder
        spec = self.spec
        label = f"{plan.name}_chase"
        b.li("t0", spec.pointer_chase)
        b.mov("t1", "gp")
        b.label(label)
        b.ldq("t2", 0, "t1")
        b.ri("andi", "t2", "t2", (GLOBAL_WORDS - 1) * 8)
        b.rr("addq", "t1", "gp", "t2")
        b.rr("addq", acc, acc, "t2")
        b.ri("subqi", "t0", "t0", 1)
        b.cbr("bgt", "t0", label)

    def _emit_fp_block(self, acc: str) -> None:
        b = self.builder
        spec = self.spec
        b.rr("itoft", "f1", acc, "zero")
        b.rr("itoft", "f2", "gp", "zero")
        for i in range(spec.fp_ops):
            op = ("addt", "mult", "subt")[i % 3]
            b.rr(op, "f1", "f1", "f2")
        b.rr("ftoit", "t5", "f1", "zero")
        b.ri("andi", "t5", "t5", 0xFF)
        b.rr("addq", acc, acc, "t5")

    def _emit_noisy_branches(self, plan: _FunctionPlan, acc: str) -> None:
        """Branches on pseudo-random array data (hard to predict)."""
        b = self.builder
        rng = self.rng
        for i in range(self.spec.noisy_branches):
            skip = f"{plan.name}_skip{i}"
            offset = 8 * rng.randrange(0, GLOBAL_WORDS)
            b.ldq("t4", offset, "gp")
            b.ri("andi", "t4", "t4", 1)
            b.cbr("beq", "t4", skip)
            # Re-convergent work: executed only when the branch falls through,
            # and re-fetched after a misprediction (squash-reuse fodder).
            b.ri("addqi", acc, acc, 13 + i)
            b.ri("xori", acc, acc, 5)
            b.label(skip)
            b.ri("addqi", acc, acc, 1)


# ----------------------------------------------------------------------
# The benchmark suite (names follow the paper's Figure 4).
# ----------------------------------------------------------------------
SPEC_WORKLOADS: Dict[str, WorkloadSpec] = {}


def _register(spec: WorkloadSpec) -> None:
    SPEC_WORKLOADS[spec.name] = spec


_register(WorkloadSpec(
    name="bzip2", seed=101, outer_iters=26,
    description="loop-heavy compressor: few calls, long predictable loops",
    num_funcs=3, call_depth=2, calls_per_body=1, callee_saves=1,
    alu_ops=10, const_inits=2, loads=4, stores=3,
    inner_loop_iters=10, inner_loop_body=5, noisy_branches=2))
_register(WorkloadSpec(
    name="crafty", seed=102, outer_iters=16,
    description="chess search: deep call tree, repeated evaluation idioms",
    num_funcs=10, call_depth=4, calls_per_body=2, callee_saves=3,
    alu_ops=8, const_inits=5, loads=3, stores=1,
    noisy_branches=2))
_register(WorkloadSpec(
    name="eon.c", seed=103, outer_iters=14,
    description="ray tracer (cook): call-heavy with FP and memory traffic",
    num_funcs=8, call_depth=3, calls_per_body=2, callee_saves=2,
    alu_ops=5, const_inits=3, loads=5, stores=3, fp_ops=4,
    noisy_branches=1))
_register(WorkloadSpec(
    name="eon.k", seed=104, outer_iters=14,
    description="ray tracer (kajiya): call-heavy with FP and memory traffic",
    num_funcs=8, call_depth=3, calls_per_body=2, callee_saves=2,
    alu_ops=5, const_inits=3, loads=6, stores=3, fp_ops=5,
    noisy_branches=1))
_register(WorkloadSpec(
    name="eon.r", seed=105, outer_iters=14,
    description="ray tracer (rushmeier): call-heavy with FP and memory traffic",
    num_funcs=8, call_depth=3, calls_per_body=2, callee_saves=2,
    alu_ops=6, const_inits=3, loads=5, stores=4, fp_ops=4,
    noisy_branches=1))
_register(WorkloadSpec(
    name="gap", seed=106, outer_iters=16,
    description="group theory interpreter: call-intensive, constant-rich",
    num_funcs=8, call_depth=4, calls_per_body=2, callee_saves=2,
    alu_ops=6, const_inits=5, loads=4, stores=2,
    noisy_branches=1))
_register(WorkloadSpec(
    name="gcc", seed=107, outer_iters=12,
    description="compiler: large irregular call graph, branchy",
    num_funcs=12, call_depth=4, calls_per_body=2, callee_saves=3,
    alu_ops=7, const_inits=4, loads=4, stores=2,
    noisy_branches=3))
_register(WorkloadSpec(
    name="gzip", seed=108, outer_iters=28,
    description="LZ77 compressor: tight loops, few calls",
    num_funcs=3, call_depth=2, calls_per_body=1, callee_saves=1,
    alu_ops=12, const_inits=2, loads=4, stores=3,
    inner_loop_iters=12, inner_loop_body=4, noisy_branches=2))
_register(WorkloadSpec(
    name="mcf", seed=109, outer_iters=18,
    description="network simplex: pointer chasing, memory bound",
    num_funcs=4, call_depth=2, calls_per_body=1, callee_saves=1,
    alu_ops=4, const_inits=2, loads=6, stores=2,
    pointer_chase=20, noisy_branches=2))
_register(WorkloadSpec(
    name="parser", seed=110, outer_iters=18,
    description="link grammar parser: moderate calls, branchy",
    num_funcs=6, call_depth=3, calls_per_body=2, callee_saves=2,
    alu_ops=7, const_inits=3, loads=4, stores=2,
    noisy_branches=3))
_register(WorkloadSpec(
    name="perl.d", seed=111, outer_iters=14,
    description="perl interpreter (diffmail): deep dispatch call chains",
    num_funcs=10, call_depth=5, calls_per_body=2, callee_saves=3,
    alu_ops=6, const_inits=5, loads=4, stores=2,
    noisy_branches=2))
_register(WorkloadSpec(
    name="perl.s", seed=112, outer_iters=14,
    description="perl interpreter (splitmail): deep dispatch call chains",
    num_funcs=10, call_depth=5, calls_per_body=2, callee_saves=3,
    alu_ops=6, const_inits=6, loads=4, stores=2,
    noisy_branches=1))
_register(WorkloadSpec(
    name="twolf", seed=113, outer_iters=20,
    description="placement/route: loops with some FP and moderate calls",
    num_funcs=5, call_depth=2, calls_per_body=1, callee_saves=2,
    alu_ops=8, const_inits=3, loads=4, stores=3, fp_ops=2,
    inner_loop_iters=6, inner_loop_body=3, noisy_branches=2))
_register(WorkloadSpec(
    name="vortex", seed=114, outer_iters=12,
    description="object database: extremely call-intensive, save/restore heavy",
    num_funcs=12, call_depth=5, calls_per_body=3, callee_saves=4,
    alu_ops=5, const_inits=4, loads=5, stores=3,
    noisy_branches=1))
_register(WorkloadSpec(
    name="vpr.p", seed=115, outer_iters=24,
    description="FPGA place: loop-heavy, few calls, some FP",
    num_funcs=4, call_depth=2, calls_per_body=1, callee_saves=1,
    alu_ops=9, const_inits=2, loads=5, stores=3, fp_ops=2,
    inner_loop_iters=8, inner_loop_body=4, noisy_branches=2))
_register(WorkloadSpec(
    name="vpr.r", seed=116, outer_iters=24,
    description="FPGA route: loop-heavy, pointer-ish, few calls",
    num_funcs=4, call_depth=2, calls_per_body=1, callee_saves=1,
    alu_ops=9, const_inits=2, loads=6, stores=2,
    inner_loop_iters=8, inner_loop_body=3, noisy_branches=3))


def workload_names() -> List[str]:
    """Names of all registered synthetic benchmarks (paper Figure 4 order)."""
    return list(SPEC_WORKLOADS.keys())


def build_workload(name: str, scale: float = 1.0) -> Program:
    """Build the named benchmark, optionally scaling its dynamic length."""
    try:
        spec = SPEC_WORKLOADS[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}; known: "
                         f"{', '.join(workload_names())}") from None
    if scale != 1.0:
        spec = spec.scaled(scale)
    return _Generator(spec).generate()


def estimate_dynamic_insts(name: str, scale: float = 1.0) -> int:
    """Estimated dynamic length of ``name`` at ``scale``.

    Used by the experiment runner to schedule long benchmarks first so that
    short jobs backfill around the stragglers; precision beyond ordering is
    not required (exact totals come from the sharding profile when one has
    been built).
    """
    try:
        spec = SPEC_WORKLOADS[name]
    except KeyError:
        return 0
    if scale != 1.0:
        spec = spec.scaled(scale)
    return spec.estimate_dynamic_insts()
