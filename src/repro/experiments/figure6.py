"""Figure 6: impact of integration-table associativity and size.

Left: 1-way, 2-way, 4-way and fully associative 1K-entry ITs (with 1K
physical registers).  Right: fully associative, LRU-managed ITs of 64, 256,
1K and 4K entries (the 4K configuration also gets 4K physical registers, as
in the paper).  Both halves are run with a realistic and an oracle LISP.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional

from repro.analysis.metrics import format_table, geometric_mean, speedup
from repro.core import MachineConfig, SimStats
from repro.experiments.runner import FAST_BENCHMARKS, run_suite
from repro.integration.config import IntegrationConfig, LispMode

ASSOCIATIVITIES = (1, 2, 4, 0)          # 0 = fully associative
SIZES = (64, 256, 1024, 4096)


def _assoc_label(assoc: int) -> str:
    return "full" if assoc == 0 else f"{assoc}-way"


@dataclass
class Figure6Result:
    benchmarks: List[str]
    baseline: Dict[str, SimStats]
    # associativity sweep: results[label][benchmark]
    assoc_results: Dict[str, Dict[str, SimStats]]
    # size sweep: results[size][benchmark]
    size_results: Dict[int, Dict[str, SimStats]]

    def assoc_speedups(self) -> Dict[str, float]:
        return {label: geometric_mean(
                    speedup(self.baseline[n], runs[n])
                    for n in self.benchmarks)
                for label, runs in self.assoc_results.items()}

    def size_speedups(self) -> Dict[int, float]:
        return {size: geometric_mean(
                    speedup(self.baseline[n], runs[n])
                    for n in self.benchmarks)
                for size, runs in self.size_results.items()}

    def assoc_integration_rates(self) -> Dict[str, float]:
        return {label: sum(r.integration_rate for r in runs.values())
                / len(runs)
                for label, runs in self.assoc_results.items()}

    def size_integration_rates(self) -> Dict[int, float]:
        return {size: sum(r.integration_rate for r in runs.values())
                / len(runs)
                for size, runs in self.size_results.items()}


def run(benchmarks: Optional[Iterable[str]] = None,
        scale: Optional[float] = None,
        machine: Optional[MachineConfig] = None,
        lisp: LispMode = LispMode.REALISTIC,
        associativities: Iterable[int] = ASSOCIATIVITIES,
        sizes: Iterable[int] = SIZES,
        jobs: Optional[int] = None,
        variant: Optional[str] = None) -> Figure6Result:
    benchmarks = list(benchmarks or FAST_BENCHMARKS)
    associativities = tuple(associativities)
    sizes = tuple(sizes)
    machine = machine or MachineConfig()

    suite_configs = {
        "baseline": machine.with_integration(IntegrationConfig.disabled()),
    }
    for assoc in associativities:
        icfg = IntegrationConfig.full(it_assoc=assoc, lisp_mode=lisp)
        suite_configs[f"assoc/{_assoc_label(assoc)}"] = \
            machine.with_integration(icfg)
    for size in sizes:
        pregs = max(1024, size)
        icfg = IntegrationConfig.full(it_entries=size, it_assoc=0,
                                      lisp_mode=lisp,
                                      num_physical_regs=pregs)
        suite_configs[f"size/{size}"] = machine.with_integration(icfg)
    suite = run_suite(benchmarks, suite_configs, scale=scale, jobs=jobs,
                      variant=variant)

    assoc_results = {_assoc_label(assoc): suite[f"assoc/{_assoc_label(assoc)}"]
                     for assoc in associativities}
    size_results = {size: suite[f"size/{size}"] for size in sizes}
    return Figure6Result(benchmarks=benchmarks, baseline=suite["baseline"],
                         assoc_results=assoc_results,
                         size_results=size_results)


def report(result: Figure6Result) -> str:
    assoc_rows = [{"IT organisation": label,
                   "mean speedup": spd,
                   "mean integration rate":
                       result.assoc_integration_rates()[label]}
                  for label, spd in result.assoc_speedups().items()]
    size_rows = [{"IT entries": size,
                  "mean speedup": spd,
                  "mean integration rate":
                      result.size_integration_rates()[size]}
                 for size, spd in result.size_speedups().items()]
    left = format_table(assoc_rows,
                        ["IT organisation", "mean speedup",
                         "mean integration rate"],
                        title="Figure 6 (left) -- IT associativity (1K entries)")
    right = format_table(size_rows,
                         ["IT entries", "mean speedup",
                          "mean integration rate"],
                         title="Figure 6 (right) -- IT size (fully associative)")
    return left + "\n\n" + right
