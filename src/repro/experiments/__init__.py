"""Experiment harness: one module per table/figure of the paper's evaluation.

* :mod:`repro.experiments.runner`     -- the parallel, disk-cached run engine
* :mod:`repro.experiments.sharding`   -- checkpointed intra-benchmark slices
* :mod:`repro.experiments.cache`      -- content-addressed on-disk results
* :mod:`repro.experiments.figure4`    -- extension-by-extension speedups and
  integration rates (Figure 4), realistic vs oracle LISP
* :mod:`repro.experiments.figure5`    -- integration-stream breakdowns
* :mod:`repro.experiments.figure6`    -- IT associativity and size sweeps
* :mod:`repro.experiments.figure7`    -- reduced-complexity execution engines
* :mod:`repro.experiments.diagnostics`-- Section 3.2 performance diagnostics
  (branch-resolution latency, fetched instructions)
* :mod:`repro.experiments.ablations`  -- extra design-choice ablations called
  out in DESIGN.md (generation counters, reference-counter width, reverse
  entries, index schemes)
* :mod:`repro.experiments.scenario_matrix` -- the (benchmark x machine
  variant) sweep over the :mod:`repro.variants` registry, with per-variant
  deltas against the baseline machine

Each module exposes ``run(...)`` returning a structured result and
``report(result)`` returning the paper-style text table.
"""

from repro.experiments.cache import (
    PayloadCache,
    ResultCache,
    code_version,
    result_key,
)
from repro.experiments.runner import (
    DEFAULT_BENCHMARKS,
    FAST_BENCHMARKS,
    SMOKE_BENCHMARKS,
    EnvVarError,
    SuitePlan,
    apply_variant,
    clear_cache,
    default_jobs,
    default_scale,
    default_shards,
    default_variant,
    default_warmup_fraction,
    finish_suite,
    plan_suite,
    run_benchmark,
    run_suite,
    telemetry,
    validate_variant,
)

__all__ = [
    "DEFAULT_BENCHMARKS",
    "EnvVarError",
    "FAST_BENCHMARKS",
    "SMOKE_BENCHMARKS",
    "PayloadCache",
    "ResultCache",
    "apply_variant",
    "clear_cache",
    "code_version",
    "default_jobs",
    "default_scale",
    "default_shards",
    "default_variant",
    "default_warmup_fraction",
    "finish_suite",
    "plan_suite",
    "result_key",
    "run_benchmark",
    "run_suite",
    "SuitePlan",
    "telemetry",
    "validate_variant",
]
