"""Section 3.2 performance diagnostics.

The paper reports two second-order effects of integration on the baseline
machine: mis-predicted-branch resolution latency drops (26 -> 23.5 cycles on
average) because integrating instructions resolve branches earlier and free
execution resources, and the number of fetched instructions drops slightly
(~0.6%) because faster resolution wastes less wrong-path fetch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.metrics import arithmetic_mean, format_table
from repro.core import MachineConfig, SimStats
from repro.experiments.runner import DEFAULT_BENCHMARKS, run_suite
from repro.integration.config import IntegrationConfig


@dataclass
class DiagnosticsResult:
    benchmarks: List[str]
    without: Dict[str, SimStats]
    with_integration: Dict[str, SimStats]

    def resolution_latency(self) -> Dict[str, float]:
        """Mean mis-predicted-branch resolution latency without/with
        integration."""
        return {
            "without": arithmetic_mean(
                self.without[n].avg_branch_resolution_latency
                for n in self.benchmarks
                if self.without[n].retired_mispredicted_branches),
            "with": arithmetic_mean(
                self.with_integration[n].avg_branch_resolution_latency
                for n in self.benchmarks
                if self.with_integration[n].retired_mispredicted_branches),
        }

    def fetched_reduction(self) -> float:
        """Mean relative reduction in fetched instructions."""
        fracs = []
        for name in self.benchmarks:
            base = self.without[name].fetched
            if base:
                fracs.append(1.0 - self.with_integration[name].fetched / base)
        return arithmetic_mean(fracs)


def run(benchmarks: Optional[Iterable[str]] = None,
        scale: Optional[float] = None,
        machine: Optional[MachineConfig] = None,
        jobs: Optional[int] = None,
        variant: Optional[str] = None) -> DiagnosticsResult:
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    machine = machine or MachineConfig()
    suite = run_suite(
        benchmarks,
        {"none": machine.with_integration(IntegrationConfig.disabled()),
         "integration": machine.with_integration(IntegrationConfig.full())},
        scale=scale, jobs=jobs, variant=variant)
    return DiagnosticsResult(benchmarks=benchmarks, without=suite["none"],
                             with_integration=suite["integration"])


def report(result: DiagnosticsResult) -> str:
    latency = result.resolution_latency()
    rows = []
    for name in result.benchmarks:
        rows.append({
            "benchmark": name,
            "resolution w/o": result.without[name].avg_branch_resolution_latency,
            "resolution w/": result.with_integration[name]
            .avg_branch_resolution_latency,
            "fetched w/o": result.without[name].fetched,
            "fetched w/": result.with_integration[name].fetched,
        })
    table = format_table(
        rows, ["benchmark", "resolution w/o", "resolution w/",
               "fetched w/o", "fetched w/"],
        title="Section 3.2 diagnostics")
    return (table
            + f"\n\nmean resolution latency: {latency['without']:.1f} -> "
              f"{latency['with']:.1f} cycles"
            + f"\nmean fetched-instruction reduction: "
              f"{result.fetched_reduction():.2%}")
