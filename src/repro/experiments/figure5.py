"""Figure 5: breakdowns of the integration retirement stream.

The paper plots four breakdowns over every other benchmark with the baseline
integration configuration (1K-entry, 4-way IT, realistic LISP): instruction
type, integration distance, result status at integration time, and reference
count at integration time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis import breakdowns
from repro.core import MachineConfig, SimStats
from repro.experiments.runner import FAST_BENCHMARKS, run_suite
from repro.integration.config import IntegrationConfig


@dataclass
class Figure5Result:
    benchmarks: List[str]
    stats: Dict[str, SimStats]

    def type_breakdowns(self) -> Dict[str, Dict[str, float]]:
        return {name: breakdowns.type_breakdown(s)
                for name, s in self.stats.items()}

    def per_type_rates(self) -> Dict[str, Dict[str, float]]:
        return {name: breakdowns.per_type_integration_rates(s)
                for name, s in self.stats.items()}

    def distance_breakdowns(self) -> Dict[str, Dict[int, float]]:
        return {name: breakdowns.distance_breakdown(s)
                for name, s in self.stats.items()}

    def status_breakdowns(self) -> Dict[str, Dict[str, float]]:
        return {name: breakdowns.status_breakdown(s)
                for name, s in self.stats.items()}

    def refcount_breakdowns(self) -> Dict[str, Dict[int, float]]:
        return {name: breakdowns.refcount_breakdown(s)
                for name, s in self.stats.items()}

    def sharing_summary(self) -> Dict[str, Dict[str, float]]:
        return {name: breakdowns.sharing_degree_fractions(s)
                for name, s in self.stats.items()}


def run(benchmarks: Optional[Iterable[str]] = None,
        scale: Optional[float] = None,
        machine: Optional[MachineConfig] = None,
        jobs: Optional[int] = None,
        variant: Optional[str] = None) -> Figure5Result:
    """Run the breakdown experiment (full integration configuration)."""
    benchmarks = list(benchmarks or FAST_BENCHMARKS)
    machine = machine or MachineConfig()
    cfg = machine.with_integration(IntegrationConfig.full())
    suite = run_suite(benchmarks, {"full": cfg}, scale=scale, jobs=jobs,
                      variant=variant)
    return Figure5Result(benchmarks=benchmarks, stats=suite["full"])


def report(result: Figure5Result) -> str:
    """Per-benchmark textual rendering of all four breakdowns."""
    sections = [breakdowns.full_breakdown_report(result.stats[name])
                for name in result.benchmarks]
    return ("Figure 5 -- integration retirement stream breakdowns\n\n"
            + "\n\n".join(sections))
