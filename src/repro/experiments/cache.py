"""Content-addressed on-disk cache of simulation results.

Every simulation is deterministic, so a :class:`~repro.core.stats.SimStats`
result is fully determined by (benchmark, workload scale, machine-config
fingerprint, simulator code version).  :class:`ResultCache` stores results
as canonical JSON (via :meth:`SimStats.to_dict` -- deliberately not pickle,
so loading an entry from a shared or tampered cache directory can never
execute code) under a key hashing exactly that tuple, which makes re-runs
of whole figure sweeps near-instant and makes the cache self-invalidating:
any change to any configuration field (via :meth:`MachineConfig.fingerprint`)
or to any simulator source file (via :func:`code_version`) changes the key.

The cache is best-effort: store failures (unwritable directory, full disk)
are swallowed so a long sweep never loses its computed results to cache
I/O, and unreadable or corrupt entries are treated as misses.

Integrity: every entry carries a sha256 trailer (``...json\\n#sha256=HEX``)
written over the JSON body, so a torn write -- a crash between ``write``
and the atomic rename, or a short write on a full disk -- is detected at
load time.  Entries that fail verification (or decoding) are *quarantined*
to ``<root>/corrupt/`` rather than silently unlinked: the evidence
survives for inspection, the load is a plain miss, and the event is
counted in ``RunTelemetry.corrupt_quarantined``.  Trailer-less entries
from older cache layouts still load (the key's ``code_version`` component
retires them naturally).

The cache directory defaults to ``~/.cache/repro`` (respecting
``XDG_CACHE_HOME``) and can be redirected with ``REPRO_CACHE_DIR``; setting
``REPRO_DISK_CACHE=0`` disables the disk layer entirely (the in-process
memoization in :mod:`repro.experiments.runner` still applies).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import sys
import time
import uuid
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.stats import SimStats
from repro.reliability import fs
from repro.reliability.retry import with_retries

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_DISK_CACHE = "REPRO_DISK_CACHE"

#: Top-level cache subdirectories that garbage collection must never touch:
#: the distributed work queue (see :mod:`repro.distrib.queue`) keeps its
#: *job* files -- which are not cache entries -- under ``queue/``.
GC_EXCLUDE_TOP = ("queue",)

#: Where entries that fail integrity verification are moved.  Inside the
#: root so ``cache gc`` age/size bounds clean it up eventually, but never
#: consulted by lookups.
CORRUPT_TOP = "corrupt"

#: Separates the JSON body from its sha256 integrity digest in an entry.
INTEGRITY_TRAILER = b"\n#sha256="

#: Grace period before an orphaned ``*.tmp`` (a writer killed between
#: ``mkstemp`` and ``os.replace``) is considered garbage.  Long enough that
#: no live writer can still own it.
TMP_GRACE_SECONDS = 3600.0

_code_version: Optional[str] = None


def cache_dir() -> Path:
    """Resolve the cache root from the environment."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def disk_cache_enabled() -> bool:
    return os.environ.get(ENV_DISK_CACHE, "1").lower() not in (
        "0", "false", "no", "off")


def code_version() -> str:
    """Hash of every simulator source file, part of every cache key.

    Computed once per process over the ``repro`` package sources, so editing
    any simulator module automatically invalidates previously cached
    results.
    """
    global _code_version
    if _code_version is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def result_key(benchmark: str, scale: float, config: Any) -> str:
    """The content address of one simulation result."""
    material = "|".join((
        benchmark,
        repr(float(scale)),
        config.fingerprint(),
        code_version(),
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def seal_entry(body: bytes) -> bytes:
    """Append the sha256 integrity trailer to an encoded entry body."""
    digest = hashlib.sha256(body).hexdigest().encode("ascii")
    return body + INTEGRITY_TRAILER + digest


def unseal_entry(raw: bytes) -> tuple[Optional[bytes], bool]:
    """Split an entry into (body, verified).

    Returns ``(None, False)`` when the trailer is present but the digest
    does not match (torn or tampered entry), and ``(raw, False)`` for
    trailer-less legacy entries (accepted, but unverified).
    """
    idx = raw.rfind(INTEGRITY_TRAILER)
    if idx < 0:
        return raw, False
    body = raw[:idx]
    digest = raw[idx + len(INTEGRITY_TRAILER):].strip().decode(
        "ascii", "replace")
    if hashlib.sha256(body).hexdigest() != digest:
        return None, False
    return body, True


class PayloadCache:
    """JSON-per-entry cache laid out as ``<root>/<kk>/<key>.json``.

    Stores arbitrary JSON-serializable dictionaries; the checkpoint-plan
    cache of :mod:`repro.experiments.sharding` uses it directly, and
    :class:`ResultCache` layers the :class:`SimStats` schema on top.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a bad entry to ``<root>/corrupt/`` and count the event.

        Falls back to unlinking when the move itself fails (read-only
        corrupt dir, cross-device root): a bad entry must never stay
        where lookups will keep tripping over it.
        """
        dest_dir = self.root / CORRUPT_TOP
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        from repro.experiments.runner import telemetry

        telemetry.corrupt_quarantined += 1
        print(f"repro: cache: quarantined corrupt entry {path.name} "
              f"({reason})", file=sys.stderr)

    def load_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached JSON payload, or None on miss/corruption.

        A transient read error (EIO, stale handle) is a plain miss -- the
        entry stays on disk.  A failed integrity trailer or a decode
        failure means the entry is corrupt (torn write, tampering, or an
        incompatible schema), so it is quarantined to ``corrupt/``.
        """
        path = self.path_for(key)
        try:
            raw = fs.read_bytes(path, "cache")
        except OSError:
            self.misses += 1
            return None
        body, _verified = unseal_entry(raw)
        if body is None:
            self._quarantine(path, "sha256 mismatch")
            self.misses += 1
            return None
        try:
            payload = json.loads(body.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
        except Exception:
            self._quarantine(path, "undecodable entry")
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store_payload(self, key: str, payload: Dict[str, Any]) -> bool:
        """Atomically persist one JSON payload, best-effort.

        Encoding errors propagate (they are programming errors), but cache
        I/O failures -- unwritable directory, full disk -- are swallowed
        after bounded retries: losing a cache write must never lose the
        computed result.  Returns whether the entry was published, so
        callers whose *protocol* needs the publish (the distributed
        worker's publish-before-done step) can react.
        """
        data = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        blob = seal_entry(data)
        path = self.path_for(key)
        tmp = path.parent / f".{key[:16]}.{uuid.uuid4().hex}.tmp"
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            return False
        try:
            with_retries(
                lambda: fs.write_bytes(tmp, blob, "cache", durable=True),
                op=f"cache-write:{key[:8]}")
            with_retries(lambda: fs.replace(tmp, path, "cache"),
                         op=f"cache-publish:{key[:8]}")
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        except BaseException:
            # KeyboardInterrupt / SystemExit / SimulatedCrash between the
            # write and the rename: don't leave an orphaned .tmp behind
            # (``cache gc`` sweeps any that SIGKILL still manages to
            # strand).
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return True

    # ------------------------------------------------------------------
    def _gc_candidates(self):
        """Every GC-eligible file under the root (skips the queue tree)."""
        if not self.root.is_dir():
            return
        try:
            tops = sorted(self.root.iterdir())
        except OSError:
            return
        for top in tops:
            if top.name in GC_EXCLUDE_TOP:
                continue
            if top.is_file():
                yield top
            elif top.is_dir():
                for path in sorted(top.rglob("*")):
                    if path.is_file():
                        yield path

    def gc(self, max_age_seconds: Optional[float] = None,
           max_bytes: Optional[int] = None,
           tmp_grace_seconds: float = TMP_GRACE_SECONDS,
           now: Optional[float] = None) -> Dict[str, int]:
        """Age- and size-bounded garbage collection (``repro cache gc``).

        Three passes, all best-effort and safe under concurrent readers,
        writers and worker fleets (an entry deleted mid-read is a plain
        cache miss; the queue subtree is never touched):

        1. sweep orphaned ``*.tmp`` files older than ``tmp_grace_seconds``
           -- the debris of writers killed between ``mkstemp`` and the
           atomic rename;
        2. with ``max_age_seconds``, drop entries whose mtime is older;
        3. with ``max_bytes``, drop oldest-first until the cache fits.

        Returns counters: ``tmp_removed``, ``aged_out``, ``evicted_for_size``,
        ``bytes_freed``, ``entries_kept``, ``bytes_kept``.
        """
        now = time.time() if now is None else now
        stats = {"tmp_removed": 0, "aged_out": 0, "evicted_for_size": 0,
                 "bytes_freed": 0, "entries_kept": 0, "bytes_kept": 0}
        entries = []   # (mtime, size, path) of surviving .json entries
        for path in self._gc_candidates():
            try:
                info = path.stat()
            except OSError:
                continue
            if path.name.endswith(".tmp"):
                if now - info.st_mtime > tmp_grace_seconds:
                    if self._unlink(path):
                        stats["tmp_removed"] += 1
                        stats["bytes_freed"] += info.st_size
                continue
            if not path.name.endswith(".json"):
                continue
            if (max_age_seconds is not None
                    and now - info.st_mtime > max_age_seconds):
                if self._unlink(path):
                    stats["aged_out"] += 1
                    stats["bytes_freed"] += info.st_size
                continue
            entries.append((info.st_mtime, info.st_size, path))

        if max_bytes is not None:
            total = sum(size for _, size, _ in entries)
            entries.sort()                       # oldest first
            survivors = []
            while entries and total > max_bytes:
                entry = entries.pop(0)
                _, size, path = entry
                if self._unlink(path):
                    stats["evicted_for_size"] += 1
                    stats["bytes_freed"] += size
                    total -= size
                else:
                    # Undeletable (EACCES/EBUSY): it still occupies space,
                    # so it stays in the totals and eviction moves on to
                    # the next-oldest entry.
                    survivors.append(entry)
            entries = survivors + entries
        stats["entries_kept"] = len(entries)
        stats["bytes_kept"] = sum(size for _, size, _ in entries)
        self._prune_empty_dirs()
        return stats

    @staticmethod
    def _unlink(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def _prune_empty_dirs(self) -> None:
        """Drop now-empty ``<kk>/`` shard directories after a sweep."""
        if not self.root.is_dir():
            return
        for sub in self.root.iterdir():
            if sub.name in GC_EXCLUDE_TOP or not sub.is_dir():
                continue
            try:
                next(sub.iterdir())
            except StopIteration:
                try:
                    sub.rmdir()
                except OSError:
                    pass
            except OSError:
                pass


class ResultCache(PayloadCache):
    """:class:`PayloadCache` specialised to :class:`SimStats` entries."""

    def load(self, key: str) -> Optional[SimStats]:
        """Return the cached result, or None on miss/corruption."""
        payload = self.load_payload(key)
        if payload is None:
            return None
        try:
            return SimStats.from_dict(payload)
        except Exception:
            # Stale schema: quarantine the entry and treat it as a miss.
            self._quarantine(self.path_for(key), "stale schema")
            self.hits -= 1
            self.misses += 1
            return None

    def store(self, key: str, result: SimStats) -> bool:
        """Atomically persist one result, best-effort; True if published."""
        return self.store_payload(key, result.to_dict())

    # ------------------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        """Summary of what is on disk (for ``repro cache info``).

        Counts cache entries only -- the work queue under ``queue/`` is
        not part of the cache, so its job files are excluded here just as
        they are from :meth:`gc` and :meth:`clear`.
        """
        entries = 0
        corrupt = 0
        total_bytes = 0
        for path in self._gc_candidates():
            if not path.name.endswith(".json"):
                continue
            if path.parent.name == CORRUPT_TOP:
                corrupt += 1
                continue
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "enabled": disk_cache_enabled(),
            "entries": entries,
            "corrupt": corrupt,
            "bytes": total_bytes,
            "code_version": code_version(),
        }

    def clear(self) -> int:
        """Delete every cached result; returns how many were removed.

        Leaves the work queue under ``queue/`` alone: clearing the cache
        must not destroy another submitter's in-flight jobs (use
        ``repro status --purge`` for that).
        """
        removed = 0
        if self.root.is_dir():
            for path in self._gc_candidates():
                if not path.name.endswith(".json"):
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for sub in self.root.iterdir():
                if sub.is_dir() and sub.name not in GC_EXCLUDE_TOP:
                    shutil.rmtree(sub, ignore_errors=True)
        return removed
