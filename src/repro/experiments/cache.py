"""Content-addressed on-disk cache of simulation results.

Every simulation is deterministic, so a :class:`~repro.core.stats.SimStats`
result is fully determined by (benchmark, workload scale, machine-config
fingerprint, simulator code version).  :class:`ResultCache` stores results
as canonical JSON (via :meth:`SimStats.to_dict` -- deliberately not pickle,
so loading an entry from a shared or tampered cache directory can never
execute code) under a key hashing exactly that tuple, which makes re-runs
of whole figure sweeps near-instant and makes the cache self-invalidating:
any change to any configuration field (via :meth:`MachineConfig.fingerprint`)
or to any simulator source file (via :func:`code_version`) changes the key.

The cache is best-effort: store failures (unwritable directory, full disk)
are swallowed so a long sweep never loses its computed results to cache
I/O, and unreadable or corrupt entries are treated as misses.

The cache directory defaults to ``~/.cache/repro`` (respecting
``XDG_CACHE_HOME``) and can be redirected with ``REPRO_CACHE_DIR``; setting
``REPRO_DISK_CACHE=0`` disables the disk layer entirely (the in-process
memoization in :mod:`repro.experiments.runner` still applies).
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional

from repro.core.stats import SimStats

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
ENV_DISK_CACHE = "REPRO_DISK_CACHE"

#: Top-level cache subdirectories that garbage collection must never touch:
#: the distributed work queue (see :mod:`repro.distrib.queue`) keeps its
#: *job* files -- which are not cache entries -- under ``queue/``.
GC_EXCLUDE_TOP = ("queue",)

#: Grace period before an orphaned ``*.tmp`` (a writer killed between
#: ``mkstemp`` and ``os.replace``) is considered garbage.  Long enough that
#: no live writer can still own it.
TMP_GRACE_SECONDS = 3600.0

_code_version: Optional[str] = None


def cache_dir() -> Path:
    """Resolve the cache root from the environment."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro"


def disk_cache_enabled() -> bool:
    return os.environ.get(ENV_DISK_CACHE, "1").lower() not in (
        "0", "false", "no", "off")


def code_version() -> str:
    """Hash of every simulator source file, part of every cache key.

    Computed once per process over the ``repro`` package sources, so editing
    any simulator module automatically invalidates previously cached
    results.
    """
    global _code_version
    if _code_version is None:
        import repro
        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def result_key(benchmark: str, scale: float, config: Any) -> str:
    """The content address of one simulation result."""
    material = "|".join((
        benchmark,
        repr(float(scale)),
        config.fingerprint(),
        code_version(),
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


class PayloadCache:
    """JSON-per-entry cache laid out as ``<root>/<kk>/<key>.json``.

    Stores arbitrary JSON-serializable dictionaries; the checkpoint-plan
    cache of :mod:`repro.experiments.sharding` uses it directly, and
    :class:`ResultCache` layers the :class:`SimStats` schema on top.
    """

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load_payload(self, key: str) -> Optional[Dict[str, Any]]:
        """Return the cached JSON payload, or None on miss/corruption.

        A transient read error (EIO, stale handle) is a plain miss -- the
        entry stays on disk.  A decode failure means the entry is corrupt
        (or from an incompatible schema), so it is dropped.
        """
        path = self.path_for(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def store_payload(self, key: str, payload: Dict[str, Any]) -> None:
        """Atomically persist one JSON payload, best-effort.

        Encoding errors propagate (they are programming errors), but cache
        I/O failures -- unwritable directory, full disk -- are swallowed:
        losing a cache write must never lose the computed result.
        """
        data = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        except OSError:
            return
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        except BaseException:
            # KeyboardInterrupt / SystemExit between mkstemp and replace:
            # don't leave an orphaned .tmp behind (``cache gc`` sweeps any
            # that SIGKILL still manages to strand).
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------
    def _gc_candidates(self):
        """Every GC-eligible file under the root (skips the queue tree)."""
        if not self.root.is_dir():
            return
        try:
            tops = sorted(self.root.iterdir())
        except OSError:
            return
        for top in tops:
            if top.name in GC_EXCLUDE_TOP:
                continue
            if top.is_file():
                yield top
            elif top.is_dir():
                for path in sorted(top.rglob("*")):
                    if path.is_file():
                        yield path

    def gc(self, max_age_seconds: Optional[float] = None,
           max_bytes: Optional[int] = None,
           tmp_grace_seconds: float = TMP_GRACE_SECONDS,
           now: Optional[float] = None) -> Dict[str, int]:
        """Age- and size-bounded garbage collection (``repro cache gc``).

        Three passes, all best-effort and safe under concurrent readers,
        writers and worker fleets (an entry deleted mid-read is a plain
        cache miss; the queue subtree is never touched):

        1. sweep orphaned ``*.tmp`` files older than ``tmp_grace_seconds``
           -- the debris of writers killed between ``mkstemp`` and the
           atomic rename;
        2. with ``max_age_seconds``, drop entries whose mtime is older;
        3. with ``max_bytes``, drop oldest-first until the cache fits.

        Returns counters: ``tmp_removed``, ``aged_out``, ``evicted_for_size``,
        ``bytes_freed``, ``entries_kept``, ``bytes_kept``.
        """
        now = time.time() if now is None else now
        stats = {"tmp_removed": 0, "aged_out": 0, "evicted_for_size": 0,
                 "bytes_freed": 0, "entries_kept": 0, "bytes_kept": 0}
        entries = []   # (mtime, size, path) of surviving .json entries
        for path in self._gc_candidates():
            try:
                info = path.stat()
            except OSError:
                continue
            if path.name.endswith(".tmp"):
                if now - info.st_mtime > tmp_grace_seconds:
                    if self._unlink(path):
                        stats["tmp_removed"] += 1
                        stats["bytes_freed"] += info.st_size
                continue
            if not path.name.endswith(".json"):
                continue
            if (max_age_seconds is not None
                    and now - info.st_mtime > max_age_seconds):
                if self._unlink(path):
                    stats["aged_out"] += 1
                    stats["bytes_freed"] += info.st_size
                continue
            entries.append((info.st_mtime, info.st_size, path))

        if max_bytes is not None:
            total = sum(size for _, size, _ in entries)
            entries.sort()                       # oldest first
            survivors = []
            while entries and total > max_bytes:
                entry = entries.pop(0)
                _, size, path = entry
                if self._unlink(path):
                    stats["evicted_for_size"] += 1
                    stats["bytes_freed"] += size
                    total -= size
                else:
                    # Undeletable (EACCES/EBUSY): it still occupies space,
                    # so it stays in the totals and eviction moves on to
                    # the next-oldest entry.
                    survivors.append(entry)
            entries = survivors + entries
        stats["entries_kept"] = len(entries)
        stats["bytes_kept"] = sum(size for _, size, _ in entries)
        self._prune_empty_dirs()
        return stats

    @staticmethod
    def _unlink(path: Path) -> bool:
        try:
            path.unlink()
            return True
        except OSError:
            return False

    def _prune_empty_dirs(self) -> None:
        """Drop now-empty ``<kk>/`` shard directories after a sweep."""
        if not self.root.is_dir():
            return
        for sub in self.root.iterdir():
            if sub.name in GC_EXCLUDE_TOP or not sub.is_dir():
                continue
            try:
                next(sub.iterdir())
            except StopIteration:
                try:
                    sub.rmdir()
                except OSError:
                    pass
            except OSError:
                pass


class ResultCache(PayloadCache):
    """:class:`PayloadCache` specialised to :class:`SimStats` entries."""

    def load(self, key: str) -> Optional[SimStats]:
        """Return the cached result, or None on miss/corruption."""
        payload = self.load_payload(key)
        if payload is None:
            return None
        try:
            return SimStats.from_dict(payload)
        except Exception:
            # Stale schema: drop the entry and treat it as a miss.
            try:
                self.path_for(key).unlink()
            except OSError:
                pass
            self.hits -= 1
            self.misses += 1
            return None

    def store(self, key: str, result: SimStats) -> None:
        """Atomically persist one result, best-effort."""
        self.store_payload(key, result.to_dict())

    # ------------------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        """Summary of what is on disk (for ``repro cache info``).

        Counts cache entries only -- the work queue under ``queue/`` is
        not part of the cache, so its job files are excluded here just as
        they are from :meth:`gc` and :meth:`clear`.
        """
        entries = 0
        total_bytes = 0
        for path in self._gc_candidates():
            if not path.name.endswith(".json"):
                continue
            entries += 1
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        return {
            "root": str(self.root),
            "enabled": disk_cache_enabled(),
            "entries": entries,
            "bytes": total_bytes,
            "code_version": code_version(),
        }

    def clear(self) -> int:
        """Delete every cached result; returns how many were removed.

        Leaves the work queue under ``queue/`` alone: clearing the cache
        must not destroy another submitter's in-flight jobs (use
        ``repro status --purge`` for that).
        """
        removed = 0
        if self.root.is_dir():
            for path in self._gc_candidates():
                if not path.name.endswith(".json"):
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
            for sub in self.root.iterdir():
                if sub.is_dir() and sub.name not in GC_EXCLUDE_TOP:
                    shutil.rmtree(sub, ignore_errors=True)
        return removed
