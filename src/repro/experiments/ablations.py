"""Design-choice ablations beyond the paper's figures (see DESIGN.md §5).

These isolate the mechanisms the paper argues for qualitatively:

* generation-counter width (0/2/4 bits) -- register mis-integration control;
* reference-counter width (1/2/4 bits) -- sharing-degree saturation;
* LISP off / realistic / oracle -- load mis-integration control;
* reverse entries on/off at fixed indexing -- the isolated value of
  extension 3;
* PC vs opcode+imm vs opcode+imm+call-depth indexing at fixed everything
  else -- the isolated value of extension 2's call-depth mixing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.metrics import arithmetic_mean, format_table
from repro.core import MachineConfig, SimStats
from repro.experiments.runner import FAST_BENCHMARKS, run_suite
from repro.integration.config import IndexScheme, IntegrationConfig, LispMode


@dataclass
class AblationResult:
    benchmarks: List[str]
    # results[ablation_label][benchmark]
    results: Dict[str, Dict[str, SimStats]]

    def mean_integration_rate(self, label: str) -> float:
        runs = self.results[label]
        return arithmetic_mean(runs[n].integration_rate
                               for n in self.benchmarks)

    def mean_mis_integrations_per_million(self, label: str) -> float:
        runs = self.results[label]
        return arithmetic_mean(runs[n].mis_integrations_per_million
                               for n in self.benchmarks)

    def mean_register_mis_integrations(self, label: str) -> float:
        runs = self.results[label]
        return arithmetic_mean(runs[n].register_mis_integrations
                               for n in self.benchmarks)


def ablation_configs() -> Dict[str, IntegrationConfig]:
    """The named ablation points."""
    return {
        "full (4b gen, 4b rc)": IntegrationConfig.full(),
        "gen counters 0b": IntegrationConfig.full(generation_bits=0),
        "gen counters 2b": IntegrationConfig.full(generation_bits=2),
        "refcount 1b": IntegrationConfig.full(refcount_bits=1),
        "refcount 2b": IntegrationConfig.full(refcount_bits=2),
        "lisp off": IntegrationConfig.full(lisp_mode=LispMode.OFF),
        "lisp oracle": IntegrationConfig.full(lisp_mode=LispMode.ORACLE),
        "no reverse entries": IntegrationConfig.full(reverse=False),
        "reverse all stores": IntegrationConfig.full(reverse_sp_only=False),
        "pc indexing": IntegrationConfig.full(index_scheme=IndexScheme.PC),
        "opcode+imm indexing": IntegrationConfig.full(
            index_scheme=IndexScheme.OPCODE_IMM),
    }


def run(benchmarks: Optional[Iterable[str]] = None,
        scale: Optional[float] = None,
        machine: Optional[MachineConfig] = None,
        configs: Optional[Dict[str, IntegrationConfig]] = None,
        jobs: Optional[int] = None,
        variant: Optional[str] = None) -> AblationResult:
    benchmarks = list(benchmarks or FAST_BENCHMARKS)
    machine = machine or MachineConfig()
    configs = configs or ablation_configs()
    suite_configs = {label: machine.with_integration(icfg)
                     for label, icfg in configs.items()}
    results = run_suite(benchmarks, suite_configs, scale=scale, jobs=jobs,
                        variant=variant)
    return AblationResult(benchmarks=benchmarks, results=results)


def report(result: AblationResult) -> str:
    rows = []
    for label in result.results:
        rows.append({
            "ablation": label,
            "mean integration rate": result.mean_integration_rate(label),
            "mis-integrations/M":
                result.mean_mis_integrations_per_million(label),
            "register mis-integrations":
                result.mean_register_mis_integrations(label),
        })
    return format_table(
        rows, ["ablation", "mean integration rate", "mis-integrations/M",
               "register mis-integrations"],
        title="Design-choice ablations")
