"""Where the cycles go: per-benchmark CPI stall stacks.

Every simulated cycle is blamed on exactly one bucket by
:func:`repro.obs.cpi.classify_stall` (retired work, front-end supply,
rename stall, operand wait, memory, integration replay, squash
recovery).  This experiment runs the benchmark set without and with
register integration and reports each bucket's *CPI contribution* --
bucket cycles divided by retired instructions -- so the two stacks are
directly comparable even though the runs take different cycle counts.

That decomposition is how the paper's speedup is localized: register
integration shrinks the squash-recovery share (squashed work is
reacquired by renaming instead of re-execution) rather than uniformly
scaling the machine.  Like every experiment module, the sweep rides the
content-addressed :func:`~repro.experiments.runner.run_suite` pool, so a
warm rerun performs zero simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.metrics import format_table
from repro.core import MachineConfig, SimStats
from repro.experiments.runner import FAST_BENCHMARKS, run_suite
from repro.integration.config import IntegrationConfig
from repro.obs.cpi import CPI_BUCKETS

#: Config label -> suite key, in presentation order.
CONFIGS = ("none", "integration")


@dataclass
class CpiStackResult:
    """CPI stacks for every (benchmark x integration on/off) run."""

    benchmarks: List[str]
    #: results[config][benchmark] -> SimStats, config in :data:`CONFIGS`.
    results: Dict[str, Dict[str, SimStats]]

    # ------------------------------------------------------------------
    def stack(self, config: str, benchmark: str) -> Dict[str, float]:
        """Per-bucket CPI contribution (bucket cycles / retired)."""
        stats = self.results[config][benchmark]
        retired = max(1, stats.retired)
        return {bucket: stats.cpi_stack.get(bucket, 0) / retired
                for bucket in CPI_BUCKETS}

    def cpi(self, config: str, benchmark: str) -> float:
        stats = self.results[config][benchmark]
        return stats.cycles / max(1, stats.retired)

    def recovery_share(self, config: str, benchmark: str) -> float:
        """Fraction of cycles blamed on speculation repair (squash
        recovery + integration replay) -- the share integration targets."""
        stats = self.results[config][benchmark]
        repair = (stats.cpi_stack.get("squash_recovery", 0)
                  + stats.cpi_stack.get("integration_replay", 0))
        return repair / max(1, stats.cycles)


def run(benchmarks: Optional[Iterable[str]] = None,
        scale: Optional[float] = None,
        machine: Optional[MachineConfig] = None,
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
        variant: Optional[str] = None,
        backend: Optional[object] = None) -> CpiStackResult:
    """Sweep the benchmark set without/with integration on one backend."""
    benchmarks = list(benchmarks or FAST_BENCHMARKS)
    machine = machine or MachineConfig()
    suite = run_suite(
        benchmarks,
        {"none": machine.with_integration(IntegrationConfig.disabled()),
         "integration": machine.with_integration(IntegrationConfig.full())},
        scale=scale, jobs=jobs, shards=shards, variant=variant,
        backend=backend)
    return CpiStackResult(benchmarks=benchmarks, results=suite)


def report(result: CpiStackResult) -> str:
    """One row per (benchmark, config): total CPI and every bucket's
    contribution, with the speculation-repair share called out."""
    rows = []
    for name in result.benchmarks:
        for config in CONFIGS:
            stack = result.stack(config, name)
            row = {"benchmark": name, "config": config,
                   "CPI": round(result.cpi(config, name), 3)}
            for bucket in CPI_BUCKETS:
                row[bucket] = round(stack[bucket], 3)
            row["repair%"] = round(
                100.0 * result.recovery_share(config, name), 1)
            rows.append(row)
    return format_table(
        rows,
        ["benchmark", "config", "CPI", *CPI_BUCKETS, "repair%"],
        title="CPI stall stacks -- per-bucket CPI contribution "
              "(cycles in bucket / retired)")
