"""The (benchmark x machine-variant) scenario matrix.

Every registered machine variant (see :mod:`repro.variants`) is run over a
benchmark set on the shared :func:`~repro.experiments.runner.run_suite`
pool; the report shows each variant's IPC and integration rate next to its
delta against the ``baseline`` variant, which is how the differential claims
of the paper (integration speedup, CHT filtering value, in-order gap,
control-speculation cost) are quantified in one table.

Because the variant name is part of every configuration fingerprint, the
whole matrix is content-addressed: a warm rerun performs zero simulations,
and with ``shards > 1`` the checkpoint plans -- which are variant- and
config-independent -- are built once per benchmark and shared by the whole
matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.metrics import arithmetic_mean, format_table
from repro.core import MachineConfig, SimStats
from repro.experiments.runner import FAST_BENCHMARKS, run_suite
from repro.variants import DEFAULT_VARIANT, variant_names


@dataclass
class ScenarioMatrixResult:
    """All runs of one (benchmark x variant) sweep."""

    benchmarks: List[str]
    variants: List[str]
    #: results[variant][benchmark] -> SimStats
    results: Dict[str, Dict[str, SimStats]]

    # ------------------------------------------------------------------
    def ipc(self, variant: str) -> Dict[str, float]:
        return {name: self.results[variant][name].ipc
                for name in self.benchmarks}

    def mean_ipc(self, variant: str) -> float:
        return arithmetic_mean(self.ipc(variant).values())

    def ipc_delta(self, variant: str) -> Optional[float]:
        """Mean relative IPC delta of ``variant`` against the baseline
        variant (None when the baseline is not part of the sweep)."""
        if DEFAULT_VARIANT not in self.results:
            return None
        base = self.mean_ipc(DEFAULT_VARIANT)
        if not base:
            return None
        return self.mean_ipc(variant) / base - 1.0

    def mean_integration_rate(self, variant: str) -> float:
        return arithmetic_mean(self.results[variant][n].integration_rate
                               for n in self.benchmarks)

    def integration_rate_delta(self, variant: str) -> Optional[float]:
        if DEFAULT_VARIANT not in self.results:
            return None
        return (self.mean_integration_rate(variant)
                - self.mean_integration_rate(DEFAULT_VARIANT))

    def mean_misprediction_rate(self, variant: str) -> float:
        return arithmetic_mean(
            self.results[variant][n].branch_misprediction_rate
            for n in self.benchmarks)

    def mean_violations(self, variant: str) -> float:
        return arithmetic_mean(
            float(self.results[variant][n].memory_order_violations)
            for n in self.benchmarks)


def run(benchmarks: Optional[Iterable[str]] = None,
        variants: Optional[Iterable[str]] = None,
        scale: Optional[float] = None,
        machine: Optional[MachineConfig] = None,
        jobs: Optional[int] = None,
        shards: Optional[int] = None,
        backend: Optional[object] = None) -> ScenarioMatrixResult:
    """Sweep (benchmark x variant) on one backend.

    ``variants`` defaults to every registered variant.  One ``run_suite``
    call carries the whole matrix, so scheduling interleaves all variants
    (longest jobs first) and, with sharding, every variant reuses the same
    per-benchmark checkpoint plans.  ``backend`` routes the matrix's jobs
    through any :class:`~repro.distrib.backend.ExecutionBackend` --
    ``"distributed"`` spreads the whole matrix over a worker fleet.
    """
    benchmarks = list(benchmarks or FAST_BENCHMARKS)
    variants = list(variants or variant_names())
    machine = machine or MachineConfig()
    configs = {name: machine.with_variant(name) for name in variants}
    suite = run_suite(benchmarks, configs, scale=scale, jobs=jobs,
                      shards=shards, backend=backend)
    return ScenarioMatrixResult(benchmarks=benchmarks, variants=variants,
                                results=suite)


def report(result: ScenarioMatrixResult) -> str:
    """Per-variant summary table with deltas against the baseline."""
    rows = []
    for variant in result.variants:
        ipc_delta = result.ipc_delta(variant)
        rate_delta = result.integration_rate_delta(variant)
        rows.append({
            "variant": variant,
            "IPC": round(result.mean_ipc(variant), 3),
            "dIPC%": ("--" if ipc_delta is None
                      else f"{100.0 * ipc_delta:+.1f}"),
            "int.rate": round(result.mean_integration_rate(variant), 3),
            "d rate": ("--" if rate_delta is None
                       else f"{rate_delta:+.3f}"),
            "mispred": round(result.mean_misprediction_rate(variant), 4),
            "violations": round(result.mean_violations(variant), 1),
        })
    table = format_table(
        rows, ["variant", "IPC", "dIPC%", "int.rate", "d rate", "mispred",
               "violations"],
        title=f"Scenario matrix -- {len(result.variants)} variants x "
              f"{len(result.benchmarks)} benchmarks "
              f"(deltas vs {DEFAULT_VARIANT})")
    per_bench = []
    for name in result.benchmarks:
        row = {"benchmark": name}
        for variant in result.variants:
            row[variant] = round(result.results[variant][name].ipc, 3)
        per_bench.append(row)
    detail = format_table(per_bench, ["benchmark"] + list(result.variants),
                          title="Per-benchmark IPC")
    return table + "\n\n" + detail
