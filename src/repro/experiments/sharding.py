"""Checkpointed slice sharding: one benchmark simulated on many cores.

``run_suite`` fans out across (benchmark, config) jobs, but each simulation
is a single serial cycle loop, so the wall-clock time of a sweep is pinned
to its longest benchmark.  This module cuts that tail latency by splitting
one simulation into ``shards`` independently schedulable *slices*:

1. the functional emulator fast-forwards the program once and captures an
   architectural checkpoint (registers + sparse memory + PC + retired
   instruction count) at every slice start;
2. each slice resumes the timing core from its checkpoint, runs a
   stats-discarded detailed *warm-up* (default: the full previous slice, so
   caches, branch predictor and integration table are hot when counting
   starts), then counts exactly ``budget`` retirements;
3. the per-slice :class:`~repro.core.stats.SimStats` recombine losslessly
   with :meth:`SimStats.merge` -- retired-instruction counts tile the
   program exactly, so all rate metrics keep their true denominators.

Checkpoints depend only on (benchmark, scale, slice starts) -- never on the
machine configuration *or the machine variant* (every variant retires the
same architectural stream; DIVA guarantees it) -- so one checkpoint set is
built per benchmark and reused by *every* config and variant in a sweep; it
is content-addressed on disk next to the result cache.  Slice and merged
results, by contrast, are cycle-level and therefore variant-specific:
:func:`slice_key` and :func:`merged_key` hash the full
``MachineConfig.fingerprint()``, which includes the variant name, so two
variants of the same configuration can never shadow each other's entries.

Accuracy: ``shards=1`` is the unsharded engine (bit-identical stats).  With
the default warm-up (one full slice), ``shards=2`` is exact -- slice 1's
warm-up replays slice 0 from reset, so the counted region starts from the
true machine state and every architectural counter and the cycle count
match the whole run (only the per-cycle RS-occupancy accumulator can drift
by a few samples at the seam).  For higher shard counts each slice only
warms over its immediate predecessor, leaving a small cold-start delta in
cycle-accurate metrics (IPC), reported by :func:`cold_start_report`;
retired-instruction counters (integration counts, retired mixes and every
rate denominator) tile exactly at *any* shard count.  Memory-bound,
history-sensitive workloads (``mcf``) show the largest IPC deltas.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.core import MachineConfig, SimStats, simulate
from repro.experiments.cache import PayloadCache, code_version
from repro.functional.emulator import Checkpoint, collect_checkpoints
from repro.isa.program import Program
from repro.workloads import build_workload

#: Hard ceiling on the shard count (more slices than this is never useful
#: for the synthetic workloads and would drown the run in warm-up work).
MAX_SHARDS = 64

#: Default warm-up, as a fraction of the slice length.  1.0 = each slice
#: re-executes its full predecessor in detail before counting.
DEFAULT_WARMUP_FRACTION = 1.0


# ----------------------------------------------------------------------
# slice plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SliceSpec:
    """One schedulable slice of a benchmark's dynamic instruction stream."""

    index: int          # slice number, 0-based
    start: int          # checkpoint position (dynamic instruction count)
    boundary: int       # first *counted* instruction (start + warm-up)
    budget: int         # counted retirements, exact (>= 1 for real slices)

    @property
    def warmup(self) -> int:
        return self.boundary - self.start

    @property
    def work(self) -> int:
        """Detailed-simulation work in instructions (warm-up + counted)."""
        return self.warmup + self.budget

    # The distributed job queue ships slices inside self-contained JSON
    # payloads (see :mod:`repro.distrib.worker`).
    def to_dict(self) -> Dict[str, int]:
        return {"index": self.index, "start": self.start,
                "boundary": self.boundary, "budget": self.budget}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SliceSpec":
        return cls(index=int(data["index"]), start=int(data["start"]),
                   boundary=int(data["boundary"]),
                   budget=int(data["budget"]))


@dataclass(frozen=True)
class ShardPlan:
    """Everything needed to simulate one benchmark as independent slices."""

    benchmark: str
    scale: float
    shards: int
    warmup_fraction: float
    total_insts: int
    slices: Sequence[SliceSpec]
    checkpoints: Dict[int, Checkpoint]   # keyed by SliceSpec.start

    def checkpoint_for(self, spec: SliceSpec) -> Checkpoint:
        return self.checkpoints[spec.start]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "scale": self.scale,
            "shards": self.shards,
            "warmup_fraction": self.warmup_fraction,
            "total_insts": self.total_insts,
            "slices": [[s.index, s.start, s.boundary, s.budget]
                       for s in self.slices],
            "checkpoints": {str(start): cp.to_dict()
                            for start, cp in self.checkpoints.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ShardPlan":
        return cls(
            benchmark=data["benchmark"],
            scale=float(data["scale"]),
            shards=int(data["shards"]),
            warmup_fraction=float(data["warmup_fraction"]),
            total_insts=int(data["total_insts"]),
            slices=tuple(SliceSpec(index=i, start=s, boundary=b, budget=n)
                         for i, s, b, n in data["slices"]),
            checkpoints={int(start): Checkpoint.from_dict(cp)
                         for start, cp in data["checkpoints"].items()},
        )


def plan_boundaries(total: int, shards: int,
                    warmup_fraction: float) -> List[SliceSpec]:
    """Partition ``total`` instructions into ``shards`` contiguous slices.

    Counted regions tile ``[0, total)`` exactly; each slice after the first
    starts ``round(slice_len * warmup_fraction)`` instructions early for its
    stats-discarded warm-up.  Slices whose counted region would be empty are
    dropped (a tiny program may yield fewer slices than requested).
    """
    if total <= 0:
        return [SliceSpec(index=0, start=0, boundary=0, budget=0)]
    shards = max(1, min(int(shards), total))
    slice_len = -(-total // shards)          # ceil division
    warmup = int(round(slice_len * warmup_fraction))
    slices: List[SliceSpec] = []
    for index in range(shards):
        boundary = index * slice_len
        if boundary >= total:
            break
        budget = min(slice_len, total - boundary)
        start = max(0, boundary - warmup) if index else 0
        slices.append(SliceSpec(index=index, start=start,
                                boundary=boundary, budget=budget))
    return slices


# ----------------------------------------------------------------------
# checkpoint cache (per benchmark x scale, shared across configs)
# ----------------------------------------------------------------------
_PLAN_MEMO: Dict[str, ShardPlan] = {}


def plan_key(benchmark: str, scale: float, shards: int,
             warmup_fraction: float) -> str:
    """Content address of a checkpoint plan (config-independent)."""
    material = "|".join((
        "shard-plan", benchmark, repr(float(scale)), str(int(shards)),
        repr(float(warmup_fraction)), code_version(),
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def build_plan(benchmark: str, scale: float, shards: int,
               warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
               program: Optional[Program] = None,
               cache: Optional[PayloadCache] = None) -> ShardPlan:
    """Build (or recall) the checkpoint plan for one benchmark x scale.

    The functional fast-forward runs at most twice (once to size the
    program, once to capture checkpoints at the computed slice starts) and
    the result is memoised in-process and content-addressed on disk, so a
    sweep over many machine configurations pays for it once.  Plans are
    built serially in the parent (the checkpoints must be in the parent
    anyway to parameterise the slice jobs); at ~15x the speed of detailed
    simulation and amortised across configs and warm runs, this has not
    been worth parallelising.
    """
    key = plan_key(benchmark, scale, shards, warmup_fraction)
    plan = _PLAN_MEMO.get(key)
    if plan is not None:
        return plan
    if cache is not None:
        payload = cache.load_payload(key)
        if payload is not None:
            try:
                plan = ShardPlan.from_dict(payload)
            except Exception:
                plan = None
            if plan is not None:
                _PLAN_MEMO[key] = plan
                return plan
    if program is None:
        program = build_workload(benchmark, scale=scale)
    # Pass 1: exact dynamic length (needed to place the boundaries).
    total, _ = collect_checkpoints(program, ())
    slices = plan_boundaries(total, shards, warmup_fraction)
    # Pass 2: capture the checkpoints at every distinct slice start.
    starts = sorted({s.start for s in slices})
    _, checkpoints = collect_checkpoints(program, starts)
    plan = ShardPlan(
        benchmark=benchmark, scale=scale, shards=shards,
        warmup_fraction=warmup_fraction, total_insts=total,
        slices=tuple(slices),
        checkpoints={cp.insts: cp for cp in checkpoints},
    )
    _PLAN_MEMO[key] = plan
    if cache is not None:
        cache.store_payload(key, plan.to_dict())
    return plan


def clear_plan_memo() -> None:
    """Drop the in-process plan memo (tests and cache management)."""
    _PLAN_MEMO.clear()


# ----------------------------------------------------------------------
# slice simulation + recombination
# ----------------------------------------------------------------------
def slice_key(benchmark: str, scale: float, config: MachineConfig,
              shards: int, warmup_fraction: float, index: int) -> str:
    """Content address of one slice's SimStats."""
    material = "|".join((
        "slice", benchmark, repr(float(scale)), config.fingerprint(),
        str(int(shards)), repr(float(warmup_fraction)), str(int(index)),
        code_version(),
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def merged_key(benchmark: str, scale: float, config: MachineConfig,
               shards: int, warmup_fraction: float) -> str:
    """Content address of the merged sharded result.

    Deliberately distinct from :func:`repro.experiments.cache.result_key`:
    a sharded result is an approximation of the whole run for cycle-accurate
    metrics, so it must never be returned for an unsharded request.
    """
    material = "|".join((
        "merged", benchmark, repr(float(scale)), config.fingerprint(),
        str(int(shards)), repr(float(warmup_fraction)), code_version(),
    ))
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


def simulate_slice(program: Program, config: MachineConfig,
                   spec: SliceSpec, checkpoint: Checkpoint,
                   name: Optional[str] = None) -> SimStats:
    """Simulate one slice: resume, warm up (stats discarded), count.

    The budget is exact (the commit stage stops on the boundary), so the
    counted regions of consecutive slices tile the program without overlap.
    """
    initial_state = checkpoint.state() if spec.start else None
    return simulate(program, config, name=name or program.name,
                    initial_state=initial_state,
                    max_instructions=spec.budget,
                    warmup_instructions=spec.warmup)


def merge_slices(parts: Sequence[SimStats]) -> SimStats:
    """Recombine per-slice stats (in any order) into one result."""
    return SimStats.merge_all(parts)


def run_sharded(benchmark: str, config: MachineConfig, scale: float,
                shards: int,
                warmup_fraction: float = DEFAULT_WARMUP_FRACTION,
                cache: Optional[PayloadCache] = None) -> SimStats:
    """Serial convenience: plan, simulate every slice, merge.

    The parallel path lives in :func:`repro.experiments.runner.run_suite`,
    which schedules slices of *different* benchmarks and configs together
    on one pool.
    """
    program = build_workload(benchmark, scale=scale)
    plan = build_plan(benchmark, scale, shards, warmup_fraction,
                      program=program, cache=cache)
    parts = [simulate_slice(program, config, spec, plan.checkpoint_for(spec),
                            name=benchmark)
             for spec in plan.slices]
    return merge_slices(parts)


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def cold_start_report(whole: SimStats, merged: SimStats) -> Dict[str, float]:
    """Quantify the sharding approximation against an unsharded run."""
    ipc_delta = (abs(merged.ipc / whole.ipc - 1.0) if whole.ipc else 0.0)
    cycle_delta = ((merged.cycles - whole.cycles) / whole.cycles
                   if whole.cycles else 0.0)
    return {
        "ipc_unsharded": round(whole.ipc, 4),
        "ipc_merged": round(merged.ipc, 4),
        "ipc_delta_fraction": round(ipc_delta, 4),
        "cycle_inflation_fraction": round(cycle_delta, 4),
        "retired_match": merged.retired == whole.retired,
    }
