"""Figure 7: trading integration for execution-engine complexity.

Four machine organisations -- the 4-way/40-RS baseline (``base``), half the
reservation stations (``RS``), reduced issue width with a single load/store
port (``IW``), and both reductions together (``IW+RS``) -- each simulated
with and without integration.  All speedups are reported relative to the
baseline machine *without* integration, as in the paper.  Section 3.5's
supporting metrics (executed-instruction reduction, executed-load reduction,
reservation-station occupancy) are also collected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.analysis.metrics import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    speedup,
)
from repro.core import MachineConfig, SimStats
from repro.experiments.runner import DEFAULT_BENCHMARKS, run_suite
from repro.integration.config import IntegrationConfig, LispMode

MACHINE_VARIANTS = ("base", "RS", "IW", "IW+RS")


def machine_variant(base: MachineConfig, variant: str) -> MachineConfig:
    """Build one of the paper's reduced-complexity machine organisations."""
    if variant == "base":
        return base
    if variant == "RS":
        return base.reduced_rs(20)
    if variant == "IW":
        return base.reduced_issue_width()
    if variant == "IW+RS":
        return base.reduced_both(20)
    raise ValueError(f"unknown machine variant {variant!r}")


@dataclass
class Figure7Result:
    benchmarks: List[str]
    # results[variant][("none"|"integration")][benchmark]
    results: Dict[str, Dict[str, Dict[str, SimStats]]]

    def _baseline(self) -> Dict[str, SimStats]:
        return self.results["base"]["none"]

    def speedups(self, variant: str, integration: str) -> Dict[str, float]:
        base = self._baseline()
        runs = self.results[variant][integration]
        table = {name: speedup(base[name], runs[name])
                 for name in self.benchmarks}
        table["GMean"] = geometric_mean(table[n] for n in self.benchmarks)
        return table

    def mean_speedup(self, variant: str, integration: str) -> float:
        return self.speedups(variant, integration)["GMean"]

    def executed_reduction(self) -> float:
        """Mean reduction in executed (issued) instructions due to
        integration on the baseline machine."""
        without = self.results["base"]["none"]
        with_int = self.results["base"]["integration"]
        fracs = []
        for name in self.benchmarks:
            if without[name].issued:
                fracs.append(1.0 - with_int[name].issued / without[name].issued)
        return arithmetic_mean(fracs)

    def load_reduction(self) -> float:
        without = self.results["base"]["none"]
        with_int = self.results["base"]["integration"]
        fracs = []
        for name in self.benchmarks:
            if without[name].executed_loads:
                fracs.append(1.0 - with_int[name].executed_loads
                             / without[name].executed_loads)
        return arithmetic_mean(fracs)

    def rs_occupancy(self, integration: str) -> float:
        runs = self.results["base"][integration]
        return arithmetic_mean(runs[n].avg_rs_occupancy
                               for n in self.benchmarks)


def run(benchmarks: Optional[Iterable[str]] = None,
        scale: Optional[float] = None,
        machine: Optional[MachineConfig] = None,
        lisp: LispMode = LispMode.REALISTIC,
        variants: Iterable[str] = MACHINE_VARIANTS,
        jobs: Optional[int] = None,
        variant: Optional[str] = None) -> Figure7Result:
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    variants = tuple(variants)
    machine = machine or MachineConfig()
    integration_cfgs = {
        "none": IntegrationConfig.disabled(),
        "integration": IntegrationConfig.full(lisp_mode=lisp),
    }
    suite_configs = {
        f"{variant}/{int_name}":
            machine_variant(machine, variant).with_integration(icfg)
        for variant in variants
        for int_name, icfg in integration_cfgs.items()}
    suite = run_suite(benchmarks, suite_configs, scale=scale, jobs=jobs,
                      variant=variant)

    results: Dict[str, Dict[str, Dict[str, SimStats]]] = {
        variant: {int_name: suite[f"{variant}/{int_name}"]
                  for int_name in integration_cfgs}
        for variant in variants}
    return Figure7Result(benchmarks=benchmarks, results=results)


def report(result: Figure7Result) -> str:
    rows = []
    for variant in result.results:
        rows.append({
            "machine": variant,
            "speedup w/o integration": result.mean_speedup(variant, "none"),
            "speedup w/ integration": result.mean_speedup(variant,
                                                          "integration"),
        })
    table = format_table(
        rows, ["machine", "speedup w/o integration", "speedup w/ integration"],
        title="Figure 7 -- reduced-complexity execution engines "
              "(speedups vs. base machine without integration)")
    extras = (
        f"\nexecuted-instruction reduction from integration: "
        f"{result.executed_reduction():.1%}"
        f"\nexecuted-load reduction from integration: "
        f"{result.load_reduction():.1%}"
        f"\nmean RS occupancy: {result.rs_occupancy('none'):.1f} -> "
        f"{result.rs_occupancy('integration'):.1f}")
    return table + extras
