"""Shared experiment machinery: the parallel, disk-cached run engine.

All experiments run synthetic benchmarks through :func:`repro.core.simulate`.
Every simulation is deterministic, so one (benchmark, scale, config) triple
maps to exactly one :class:`~repro.core.stats.SimStats`; results are cached
at two levels:

* an in-process memo (so e.g. the no-integration baseline is shared between
  Figure 4 and Figure 7 within one run) -- LRU-bounded so long-lived
  processes doing many sweeps don't grow without limit, and
* the content-addressed on-disk :class:`~repro.experiments.cache.ResultCache`
  keyed by benchmark x scale x config fingerprint x code version (so a warm
  repeat of a whole figure sweep performs zero simulations).

:func:`run_suite` is the fan-out point: it deduplicates the (benchmark,
config) job matrix against both caches and executes the remaining jobs on a
``multiprocessing`` pool when ``jobs > 1``, longest job first so short jobs
backfill around the stragglers.  With ``shards > 1`` each benchmark is
additionally split into checkpointed slices (see
:mod:`repro.experiments.sharding`) that are scheduled as independent pool
jobs, cutting the tail latency a single long benchmark otherwise imposes on
the whole sweep.  Because simulation is deterministic, the parallel path
returns bit-identical stats to the serial path at any shard count.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core import MachineConfig, SimStats, simulate
from repro.experiments import sharding
from repro.experiments.cache import ResultCache, disk_cache_enabled, result_key
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.variants import get_builder, variant_names
from repro.workloads import build_workload, workload_names
from repro.workloads.spec_like import estimate_dynamic_insts

#: The full benchmark list (paper Figure 4 order).
DEFAULT_BENCHMARKS: Tuple[str, ...] = tuple(workload_names())

#: "Every other benchmark", as the paper uses for Figure 5/6 in the interest
#: of space; also the default for the pytest benchmark harness.
FAST_BENCHMARKS: Tuple[str, ...] = (
    "crafty", "eon.k", "gap", "gzip", "parser", "perl.s", "vortex", "vpr.r",
)

#: An even smaller subset for smoke tests.
SMOKE_BENCHMARKS: Tuple[str, ...] = ("gzip", "crafty", "mcf")

_DISK_CACHE: Optional[ResultCache] = None


#: The run-telemetry counter names, in ``--verbose`` print order.
_TELEMETRY_FIELDS = (
    "simulations", "cycles_simulated", "cycles_elided", "memory_hits",
    "disk_hits", "memory_evictions", "slices_simulated", "remote_jobs",
    "leases_reclaimed", "corrupt_quarantined", "io_retries",
    "cache_degraded", "fenced",
)


class RunTelemetry:
    """In-process counters describing where results came from.

    ``simulations`` counts only simulations run *by this process* (pool
    children report back to the parent, so they are included); work done by
    remote workers under the distributed backend lands in ``remote_jobs``
    instead, so a ``--verbose`` summary stays truthful about who computed
    what.  ``leases_reclaimed`` counts crashed-worker leases this process
    reclaimed for the fleet.

    The reliability counters: ``corrupt_quarantined`` cache entries moved
    to ``corrupt/`` after failing integrity verification, ``io_retries``
    transient-IO retries spent by :func:`repro.reliability.retry.with_retries`,
    ``cache_degraded`` disk-cache writes that failed outright and fell
    back to memory-only, and ``fenced`` jobs abandoned un-published after
    this process lost its lease.

    The values live in the process-wide metrics registry
    (:data:`repro.obs.metrics.REGISTRY`, names ``run.<field>``) so every
    reporting surface reads the same numbers; this class is an attribute
    proxy preserving the ``telemetry.simulations += 1`` call sites.
    """

    FIELDS = _TELEMETRY_FIELDS
    __slots__ = ("_registry",)

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        object.__setattr__(self, "_registry",
                           registry if registry is not None else REGISTRY)

    def __getattr__(self, name: str) -> int:
        if name in _TELEMETRY_FIELDS:
            return self._registry.counter("run." + name)
        raise AttributeError(name)

    def __setattr__(self, name: str, value: int) -> None:
        if name not in _TELEMETRY_FIELDS:
            raise AttributeError(f"unknown telemetry counter {name!r}")
        self._registry.set_counter("run." + name, int(value))

    def reset(self) -> None:
        self._registry.reset("run.")

    def to_dict(self) -> Dict[str, int]:
        return {name: self._registry.counter("run." + name)
                for name in _TELEMETRY_FIELDS}


telemetry = RunTelemetry()


class EnvVarError(SystemExit):
    """A malformed ``REPRO_*`` environment variable.

    Subclasses :class:`SystemExit` so a bad value aborts CLI runs with a
    one-line message instead of a ``ValueError`` traceback out of
    ``float()``/``int()``, while still being catchable in library use.
    """

    def __init__(self, name: str, value: str, expected: str):
        self.name = name
        self.value = value
        super().__init__(
            f"invalid {name}={value!r}: expected {expected} "
            f"(unset it or fix the value)")


def env_float(name: str, default: str) -> float:
    """Read a positive, finite float from the environment (or ``default``)."""
    raw = os.environ.get(name, default).strip() or default
    try:
        value = float(raw)
    except ValueError:
        raise EnvVarError(name, raw, "a number (e.g. 0.5)") from None
    if not math.isfinite(value) or value <= 0:
        raise EnvVarError(name, raw, "a positive finite number (e.g. 0.5)")
    return value


def _env_int(name: str, default: str,
             expected: str = "an integer") -> int:
    raw = os.environ.get(name, default).strip() or default
    try:
        return int(raw)
    except ValueError:
        raise EnvVarError(name, raw, expected) from None


def default_scale() -> float:
    """Workload scale factor, overridable with the ``REPRO_SCALE`` env var.

    1.0 reproduces the sizes listed in DESIGN.md (10k-60k dynamic
    instructions per benchmark); smaller values shorten every experiment
    proportionally.  A malformed value raises :class:`EnvVarError` with a
    clear message instead of a bare ``ValueError`` traceback.
    """
    return env_float("REPRO_SCALE", "0.5")


def default_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_JOBS`` > serial.

    ``0`` (or any non-positive value) means "one worker per CPU".  A
    malformed ``REPRO_JOBS`` raises :class:`EnvVarError` with a clear
    message instead of a bare ``ValueError`` traceback.
    """
    if jobs is None:
        jobs = _env_int("REPRO_JOBS", "1",
                        "an integer (0 = one worker per CPU)")
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def default_shards(shards: Optional[int] = None) -> int:
    """Resolve a shard count: explicit > ``REPRO_SHARDS`` > unsharded.

    ``1`` (the default) is the unsharded engine with bit-identical results;
    higher values split every benchmark into that many checkpointed slices.
    The count is clamped to :data:`repro.experiments.sharding.MAX_SHARDS`.
    A bad env value raises :class:`EnvVarError`; a bad explicit argument is
    the caller's bug and raises :class:`ValueError`.
    """
    if shards is None:
        shards = _env_int("REPRO_SHARDS", "1",
                          "a positive shard count (1 = unsharded)")
        if shards < 1:
            raise EnvVarError("REPRO_SHARDS", str(shards),
                              "a positive shard count (1 = unsharded)")
    elif shards < 1:
        raise ValueError(f"shards must be >= 1 (got {shards}); "
                         f"1 means unsharded")
    return min(shards, sharding.MAX_SHARDS)


def default_warmup_fraction() -> float:
    """Slice warm-up length as a fraction of the slice, from the
    ``REPRO_SHARD_WARMUP`` env var (default 1.0 = one full slice)."""
    return env_float("REPRO_SHARD_WARMUP",
                     str(sharding.DEFAULT_WARMUP_FRACTION))


def default_variant() -> Optional[str]:
    """Machine variant from the ``REPRO_VARIANT`` env var (None = unset).

    Resolved at the CLI layer (so ``repro run``/``repro figures`` honour the
    environment) rather than inside :func:`run_suite`, which keeps sweeps
    that mix variants deliberately -- the scenario matrix -- composable.  An
    unregistered name raises :class:`EnvVarError` with the registered list.
    """
    raw = os.environ.get("REPRO_VARIANT", "").strip()
    if not raw:
        return None
    names = variant_names()
    if raw not in names:
        raise EnvVarError("REPRO_VARIANT", raw,
                          "a registered machine variant "
                          f"({', '.join(names)})")
    return raw


def validate_variant(variant: str) -> str:
    """Return ``variant`` if registered, else abort with a one-line error.

    Validation happens eagerly so a typo fails before any simulation (or
    pool spawn) happens, in the same one-line style as :class:`EnvVarError`.
    """
    get_builder(variant)   # raises UnknownVariantError on a bad name
    return variant


def apply_variant(configs: Mapping[str, MachineConfig],
                  variant: Optional[str]) -> Mapping[str, MachineConfig]:
    """Re-target every configuration at ``variant`` (None = leave as-is)."""
    if variant is None:
        return configs
    validate_variant(variant)
    return {name: config.with_variant(variant)
            for name, config in configs.items()}


def default_memcache_entries() -> int:
    """LRU capacity of the in-process result memo (``REPRO_MEMCACHE_MAX``).

    Counts entries, not bytes; ``0`` or a negative value disables the bound.
    """
    return _env_int("REPRO_MEMCACHE_MAX", "4096",
                    "an entry count (0 = unbounded)")


class _LruMemo:
    """A small LRU mapping of cache key -> :class:`SimStats`.

    Bounds the in-process memo so a long-lived process sweeping many
    (benchmark, scale, config) points does not grow memory without limit.
    The capacity is re-read from the environment on insertion, so tests
    (and operators) can tighten it at runtime; evictions are surfaced in
    :data:`telemetry`.
    """

    def __init__(self) -> None:
        self._entries: "OrderedDict[str, SimStats]" = OrderedDict()

    def get(self, key: str) -> Optional[SimStats]:
        stats = self._entries.get(key)
        if stats is not None:
            self._entries.move_to_end(key)
        return stats

    def __setitem__(self, key: str, stats: SimStats) -> None:
        self._entries[key] = stats
        self._entries.move_to_end(key)
        limit = default_memcache_entries()
        if limit > 0:
            while len(self._entries) > limit:
                self._entries.popitem(last=False)
                telemetry.memory_evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()


_MEMORY_CACHE = _LruMemo()


def _disk_cache() -> Optional[ResultCache]:
    """The process-wide disk cache (None when disabled)."""
    global _DISK_CACHE
    if not disk_cache_enabled():
        return None
    if _DISK_CACHE is None:
        _DISK_CACHE = ResultCache()
    return _DISK_CACHE


def clear_cache(disk: bool = False) -> int:
    """Drop the in-process memos (and optionally the on-disk cache)."""
    global _DISK_CACHE
    _MEMORY_CACHE.clear()
    sharding.clear_plan_memo()
    removed = 0
    if disk:
        cache = _disk_cache()
        if cache is not None:
            removed = cache.clear()
    _DISK_CACHE = None
    return removed


def _simulate(benchmark: str, config: MachineConfig, scale: float) -> SimStats:
    program = build_workload(benchmark, scale=scale)
    telemetry.simulations += 1
    return _record_cycles(simulate(program, config, name=benchmark))


def _record_cycles(stats: SimStats) -> SimStats:
    """Fold one simulation's cycle counts into the run telemetry.

    ``cycles_elided`` tracks how much of the simulated time the
    event-horizon driver jumped rather than stepped -- the ``--verbose``
    summary reports the fraction so a perf investigation can see at a
    glance whether elision engaged.
    """
    telemetry.cycles_simulated += stats.cycles
    telemetry.cycles_elided += stats.cycles_elided
    return stats


def _cache_lookup(key: str) -> Optional[SimStats]:
    """Memory first, then disk; disk hits are promoted to memory."""
    stats = _MEMORY_CACHE.get(key)
    if stats is not None:
        telemetry.memory_hits += 1
        return stats
    disk = _disk_cache()
    if disk is not None:
        stats = disk.load(key)
        if isinstance(stats, SimStats):
            telemetry.disk_hits += 1
            _MEMORY_CACHE[key] = stats
            return stats
    return None


def _cache_store(key: str, stats: SimStats, to_disk: bool = True) -> None:
    _MEMORY_CACHE[key] = stats
    if to_disk:
        disk = _disk_cache()
        if disk is not None and not disk.store(key, stats):
            # Graceful degradation: the result lives on in the in-memory
            # LRU for this process; only re-runs lose the disk hit.
            telemetry.cache_degraded += 1
            print(f"repro: warning: disk cache write failed for "
                  f"{key[:16]}; result kept in memory only",
                  file=sys.stderr)


def run_benchmark(benchmark: str, config: MachineConfig,
                  scale: Optional[float] = None,
                  use_cache: bool = True,
                  shards: Optional[int] = None,
                  variant: Optional[str] = None,
                  backend: Optional[object] = None) -> SimStats:
    """Simulate one benchmark under one machine configuration.

    ``shards > 1`` runs the checkpointed-slice engine serially (the
    parallel slice scheduling lives in :func:`run_suite`); ``shards=1``
    is the plain, bit-exact whole-program simulation.  ``variant``
    re-targets the configuration at a registered machine variant
    (equivalent to ``config.with_variant(variant)``).  ``backend`` routes
    the job through a named or instantiated
    :class:`~repro.distrib.backend.ExecutionBackend` -- e.g.
    ``"distributed"`` publishes it to the shared work queue.
    """
    scale = default_scale() if scale is None else scale
    shards = default_shards(shards)
    if variant is not None:
        config = config.with_variant(validate_variant(variant))
    if shards > 1 or backend is not None:
        results = run_suite([benchmark], {"_": config}, scale=scale,
                            jobs=1, use_cache=use_cache, shards=shards,
                            backend=backend)
        return results["_"][benchmark]
    if not use_cache:
        return _simulate(benchmark, config, scale)
    key = result_key(benchmark, scale, config)
    stats = _cache_lookup(key)
    if stats is not None:
        return stats
    stats = _simulate(benchmark, config, scale)
    _cache_store(key, stats)
    return stats


# ----------------------------------------------------------------------
# the parallel suite engine
# ----------------------------------------------------------------------
#: One schedulable pool job.  ``slice_spec``/``checkpoint`` are None for a
#: whole-program job; ``est_work`` orders jobs longest-first.
_Job = Tuple[str, str, MachineConfig, float, bool, object, object]


def _pool_worker(job: _Job) -> Tuple[str, bool, SimStats]:
    """Run one simulation job (whole program or one slice) in a worker.

    Re-checks the disk cache in the child (cheap insurance against jobs
    cached by a concurrent process) and persists the result before handing
    it back, so a crashed parent loses nothing.
    """
    key, benchmark, config, scale, use_cache, slice_spec, checkpoint = job
    disk = _disk_cache() if use_cache else None
    if disk is not None:
        stats = disk.load(key)
        if isinstance(stats, SimStats):
            return key, False, stats
    program = build_workload(benchmark, scale=scale)
    if slice_spec is None:
        stats = simulate(program, config, name=benchmark)
    else:
        stats = sharding.simulate_slice(program, config, slice_spec,
                                        checkpoint, name=benchmark)
    if disk is not None:
        disk.store(key, stats)
    return key, True, stats


def _pool_context():
    """Prefer fork (cheap, inherits sys.path) where available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


@dataclass
class SuitePlan:
    """One suite's worth of planned work, before any job executes.

    Produced by :func:`plan_suite` and consumed by :func:`finish_suite`;
    in between, ``jobs_list`` goes to whichever
    :class:`~repro.distrib.backend.ExecutionBackend` the caller selected.
    Splitting planning from execution is what lets ``repro submit``
    publish a sweep's jobs to the distributed queue *without* waiting for
    the results: the plan's cache probes have already filtered out
    everything a previous (or concurrent) run resolved.
    """

    scale: float
    shards: int
    use_cache: bool
    #: Pre-filled from cache: results[config_name][benchmark] -> SimStats.
    results: Dict[str, Dict[str, SimStats]]
    #: content key -> every (config name, benchmark) cell it resolves.
    placements: Dict[str, List[Tuple[str, str]]]
    #: (key, benchmark, config) still needing work (merged key if sharded).
    pending: List[Tuple[str, str, MachineConfig]]
    #: (estimated work, job) pairs for the backend, one per simulation.
    jobs_list: List[Tuple[int, _Job]]
    #: sharded only: slice cache key -> (merged key, slice index).
    slice_of: Dict[str, Tuple[str, int]]
    #: sharded only: merged key -> {slice index: stats} already cached.
    gathered: Dict[str, Dict[int, SimStats]]

    @property
    def job_count(self) -> int:
        return len(self.jobs_list)


def plan_suite(benchmarks: Iterable[str],
               configs: Mapping[str, MachineConfig],
               scale: float,
               shards: int,
               warmup_fraction: float,
               use_cache: bool) -> SuitePlan:
    """Plan a suite: dedupe cells, probe the caches, expand slices.

    Every argument is already resolved (no env fallbacks here).  The
    returned plan's ``jobs_list`` contains exactly the simulations no
    cache could answer, with sharded benchmarks expanded into per-slice
    jobs parameterised by their checkpoint.
    """
    benchmarks = list(benchmarks)
    results: Dict[str, Dict[str, SimStats]] = {name: {} for name in configs}
    # One simulation per unique content key, however many names point at it.
    placements: Dict[str, List[Tuple[str, str]]] = {}
    job_specs: Dict[str, Tuple[str, MachineConfig]] = {}
    for config_name, config in configs.items():
        for benchmark in benchmarks:
            if shards > 1:
                key = sharding.merged_key(benchmark, scale, config,
                                          shards, warmup_fraction)
            else:
                key = result_key(benchmark, scale, config)
            placements.setdefault(key, []).append((config_name, benchmark))
            job_specs.setdefault(key, (benchmark, config))

    pending: List[Tuple[str, str, MachineConfig]] = []
    for key, (benchmark, config) in job_specs.items():
        stats = _cache_lookup(key) if use_cache else None
        if stats is None:
            pending.append((key, benchmark, config))
        else:
            for config_name, bench in placements[key]:
                results[config_name][bench] = stats

    plan = SuitePlan(scale=scale, shards=shards, use_cache=use_cache,
                     results=results, placements=placements,
                     pending=pending, jobs_list=[], slice_of={},
                     gathered={})
    if not pending:
        return plan

    if shards <= 1:
        plan.jobs_list = [
            (estimate_dynamic_insts(benchmark, scale),
             (key, benchmark, config, scale, use_cache, None, None))
            for key, benchmark, config in pending]
        return plan

    # ------------------------------------------------------------------
    # sharded path: expand each pending benchmark x config into slices
    # ------------------------------------------------------------------
    disk = _disk_cache() if use_cache else None
    shard_plans: Dict[str, sharding.ShardPlan] = {}
    for _, benchmark, _ in pending:
        if benchmark not in shard_plans:
            shard_plans[benchmark] = sharding.build_plan(
                benchmark, scale, shards, warmup_fraction, cache=disk)

    plan.gathered = {key: {} for key, _, _ in pending}
    for key, benchmark, config in pending:
        shard_plan = shard_plans[benchmark]
        for spec in shard_plan.slices:
            skey = sharding.slice_key(benchmark, scale, config, shards,
                                      warmup_fraction, spec.index)
            plan.slice_of[skey] = (key, spec.index)
            stats = _cache_lookup(skey) if use_cache else None
            if stats is None:
                plan.jobs_list.append(
                    (spec.work,
                     (skey, benchmark, config, scale, use_cache, spec,
                      shard_plan.checkpoint_for(spec))))
            else:
                plan.gathered[key][spec.index] = stats
    return plan


def finish_suite(plan: SuitePlan,
                 outcomes: Mapping[str, SimStats]) -> Dict[str, Dict[str, SimStats]]:
    """Assemble a plan plus its backend outcomes into suite results.

    For sharded plans this is where slices merge (and the merged result is
    cached under its shard-aware key) -- workers only ever compute slices,
    so the submit side owns the merge whichever backend ran the jobs.
    """
    if not plan.pending:
        return plan.results
    if plan.shards <= 1:
        for key, _, _ in plan.pending:
            stats = outcomes[key]
            for config_name, bench in plan.placements[key]:
                plan.results[config_name][bench] = stats
        return plan.results

    for skey, stats in outcomes.items():
        key, index = plan.slice_of[skey]
        plan.gathered[key][index] = stats
    for key, benchmark, config in plan.pending:
        parts = [stats for _, stats in sorted(plan.gathered[key].items())]
        merged = sharding.merge_slices(parts)
        if plan.use_cache:
            _cache_store(key, merged)
        for config_name, bench in plan.placements[key]:
            plan.results[config_name][bench] = merged
    return plan.results


def run_suite(benchmarks: Iterable[str],
              configs: Mapping[str, MachineConfig],
              scale: Optional[float] = None,
              jobs: Optional[int] = None,
              use_cache: bool = True,
              shards: Optional[int] = None,
              warmup_fraction: Optional[float] = None,
              variant: Optional[str] = None,
              backend: Optional[object] = None,
              ) -> Dict[str, Dict[str, SimStats]]:
    """Run every benchmark under every named configuration.

    Returns ``results[config_name][benchmark] -> SimStats``.  Every
    uncached job is routed through an execution backend (see
    :mod:`repro.distrib.backend`): ``backend`` may be an instance or one
    of the names ``serial``/``pool``/``distributed``, ``None`` falls back
    to ``REPRO_BACKEND`` and finally to the classic choice implied by
    ``jobs`` -- a process pool when ``jobs > 1``, else in-process serial
    execution.  Results are bit-identical across backends because
    simulation is deterministic; the distributed backend publishes jobs to
    the shared filesystem queue where any fleet of ``repro worker``
    processes (sharing ``REPRO_CACHE_DIR``) drains them.  Identical
    configurations registered under different names are deduplicated and
    simulated once.

    ``shards > 1`` splits every benchmark into that many checkpointed
    slices which are scheduled as independent jobs (see
    :mod:`repro.experiments.sharding`): per-slice results are cached under
    content keys of their own, checkpoints are built once per benchmark and
    shared across every config, and the merged stats are cached under a
    shard-aware key so they can never shadow an unsharded result.

    ``variant`` re-targets every configuration at one registered machine
    variant (a convenience over calling ``with_variant`` on each); ``None``
    leaves the per-config ``variant`` fields -- which may deliberately
    differ, as in the scenario matrix -- untouched.  Either way the variant
    rides inside the config, so worker jobs, slice keys and the result
    cache distinguish variants with no further plumbing: the variant
    participates in ``MachineConfig.fingerprint()``.  Checkpoint plans stay
    variant-independent (the architectural stream is shared by every
    variant) and are reused across the whole matrix.
    """
    from repro.distrib.backend import resolve_backend

    configs = apply_variant(configs, variant)
    # Validate every config's variant up front: an unregistered name must
    # abort here with the one-line error, not kill a pool worker later.
    for config in configs.values():
        validate_variant(config.variant)
    scale = default_scale() if scale is None else scale
    jobs = default_jobs(jobs)
    shards = default_shards(shards)
    if warmup_fraction is None:
        warmup_fraction = default_warmup_fraction()

    plan = plan_suite(benchmarks, configs, scale, shards, warmup_fraction,
                      use_cache)
    outcomes: Mapping[str, SimStats] = {}
    if plan.jobs_list:
        exec_backend = resolve_backend(backend, jobs)
        simulated_before = telemetry.simulations
        outcomes = exec_backend.execute(plan.jobs_list, use_cache)
        if shards > 1:
            telemetry.slices_simulated += (telemetry.simulations
                                           - simulated_before)
    return finish_suite(plan, outcomes)
