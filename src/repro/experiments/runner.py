"""Shared experiment machinery: the parallel, disk-cached run engine.

All experiments run synthetic benchmarks through :func:`repro.core.simulate`.
Every simulation is deterministic, so one (benchmark, scale, config) triple
maps to exactly one :class:`~repro.core.stats.SimStats`; results are cached
at two levels:

* an in-process memo (so e.g. the no-integration baseline is shared between
  Figure 4 and Figure 7 within one run), and
* the content-addressed on-disk :class:`~repro.experiments.cache.ResultCache`
  keyed by benchmark x scale x config fingerprint x code version (so a warm
  repeat of a whole figure sweep performs zero simulations).

:func:`run_suite` is the fan-out point: it deduplicates the (benchmark,
config) job matrix against both caches and executes the remaining jobs on a
``multiprocessing`` pool when ``jobs > 1``.  Because simulation is
deterministic, the parallel path returns bit-identical stats to the serial
path.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core import MachineConfig, SimStats, simulate
from repro.experiments.cache import ResultCache, disk_cache_enabled, result_key
from repro.workloads import build_workload, workload_names

#: The full benchmark list (paper Figure 4 order).
DEFAULT_BENCHMARKS: Tuple[str, ...] = tuple(workload_names())

#: "Every other benchmark", as the paper uses for Figure 5/6 in the interest
#: of space; also the default for the pytest benchmark harness.
FAST_BENCHMARKS: Tuple[str, ...] = (
    "crafty", "eon.k", "gap", "gzip", "parser", "perl.s", "vortex", "vpr.r",
)

#: An even smaller subset for smoke tests.
SMOKE_BENCHMARKS: Tuple[str, ...] = ("gzip", "crafty", "mcf")

_MEMORY_CACHE: Dict[str, SimStats] = {}
_DISK_CACHE: Optional[ResultCache] = None


@dataclass
class RunTelemetry:
    """In-process counters describing where results came from."""

    simulations: int = 0
    memory_hits: int = 0
    disk_hits: int = 0

    def reset(self) -> None:
        self.simulations = 0
        self.memory_hits = 0
        self.disk_hits = 0


telemetry = RunTelemetry()


class EnvVarError(SystemExit):
    """A malformed ``REPRO_*`` environment variable.

    Subclasses :class:`SystemExit` so a bad value aborts CLI runs with a
    one-line message instead of a ``ValueError`` traceback out of
    ``float()``/``int()``, while still being catchable in library use.
    """

    def __init__(self, name: str, value: str, expected: str):
        self.name = name
        self.value = value
        super().__init__(
            f"invalid {name}={value!r}: expected {expected} "
            f"(unset it or fix the value)")


def env_float(name: str, default: str) -> float:
    """Read a positive, finite float from the environment (or ``default``)."""
    raw = os.environ.get(name, default).strip() or default
    try:
        value = float(raw)
    except ValueError:
        raise EnvVarError(name, raw, "a number (e.g. 0.5)") from None
    if not math.isfinite(value) or value <= 0:
        raise EnvVarError(name, raw, "a positive finite number (e.g. 0.5)")
    return value


def _env_int(name: str, default: str) -> int:
    raw = os.environ.get(name, default).strip() or default
    try:
        return int(raw)
    except ValueError:
        raise EnvVarError(name, raw, "an integer (0 = one worker per CPU)"
                          ) from None


def default_scale() -> float:
    """Workload scale factor, overridable with the ``REPRO_SCALE`` env var.

    1.0 reproduces the sizes listed in DESIGN.md (10k-60k dynamic
    instructions per benchmark); smaller values shorten every experiment
    proportionally.  A malformed value raises :class:`EnvVarError` with a
    clear message instead of a bare ``ValueError`` traceback.
    """
    return env_float("REPRO_SCALE", "0.5")


def default_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit > ``REPRO_JOBS`` > serial.

    ``0`` (or any non-positive value) means "one worker per CPU".  A
    malformed ``REPRO_JOBS`` raises :class:`EnvVarError` with a clear
    message instead of a bare ``ValueError`` traceback.
    """
    if jobs is None:
        jobs = _env_int("REPRO_JOBS", "1")
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


def _disk_cache() -> Optional[ResultCache]:
    """The process-wide disk cache (None when disabled)."""
    global _DISK_CACHE
    if not disk_cache_enabled():
        return None
    if _DISK_CACHE is None:
        _DISK_CACHE = ResultCache()
    return _DISK_CACHE


def clear_cache(disk: bool = False) -> int:
    """Drop the in-process memo (and optionally the on-disk cache)."""
    global _DISK_CACHE
    _MEMORY_CACHE.clear()
    removed = 0
    if disk:
        cache = _disk_cache()
        if cache is not None:
            removed = cache.clear()
    _DISK_CACHE = None
    return removed


def _simulate(benchmark: str, config: MachineConfig, scale: float) -> SimStats:
    program = build_workload(benchmark, scale=scale)
    telemetry.simulations += 1
    return simulate(program, config, name=benchmark)


def _cache_lookup(key: str) -> Optional[SimStats]:
    """Memory first, then disk; disk hits are promoted to memory."""
    stats = _MEMORY_CACHE.get(key)
    if stats is not None:
        telemetry.memory_hits += 1
        return stats
    disk = _disk_cache()
    if disk is not None:
        stats = disk.load(key)
        if isinstance(stats, SimStats):
            telemetry.disk_hits += 1
            _MEMORY_CACHE[key] = stats
            return stats
    return None


def _cache_store(key: str, stats: SimStats, to_disk: bool = True) -> None:
    _MEMORY_CACHE[key] = stats
    if to_disk:
        disk = _disk_cache()
        if disk is not None:
            disk.store(key, stats)


def run_benchmark(benchmark: str, config: MachineConfig,
                  scale: Optional[float] = None,
                  use_cache: bool = True) -> SimStats:
    """Simulate one benchmark under one machine configuration."""
    scale = default_scale() if scale is None else scale
    if not use_cache:
        return _simulate(benchmark, config, scale)
    key = result_key(benchmark, scale, config)
    stats = _cache_lookup(key)
    if stats is not None:
        return stats
    stats = _simulate(benchmark, config, scale)
    _cache_store(key, stats)
    return stats


# ----------------------------------------------------------------------
# the parallel suite engine
# ----------------------------------------------------------------------
def _pool_worker(job: Tuple[str, str, MachineConfig, float, bool]
                 ) -> Tuple[str, bool, SimStats]:
    """Run one simulation job in a worker process.

    Re-checks the disk cache in the child (cheap insurance against jobs
    cached by a concurrent process) and persists the result before handing
    it back, so a crashed parent loses nothing.
    """
    key, benchmark, config, scale, use_cache = job
    disk = _disk_cache() if use_cache else None
    if disk is not None:
        stats = disk.load(key)
        if isinstance(stats, SimStats):
            return key, False, stats
    program = build_workload(benchmark, scale=scale)
    stats = simulate(program, config, name=benchmark)
    if disk is not None:
        disk.store(key, stats)
    return key, True, stats


def _pool_context():
    """Prefer fork (cheap, inherits sys.path) where available."""
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_suite(benchmarks: Iterable[str],
              configs: Mapping[str, MachineConfig],
              scale: Optional[float] = None,
              jobs: Optional[int] = None,
              use_cache: bool = True,
              ) -> Dict[str, Dict[str, SimStats]]:
    """Run every benchmark under every named configuration.

    Returns ``results[config_name][benchmark] -> SimStats``.  With
    ``jobs > 1`` the uncached jobs run on a process pool; results are
    bit-identical to the serial path because simulation is deterministic.
    Identical configurations registered under different names are
    deduplicated and simulated once.
    """
    benchmarks = list(benchmarks)
    scale = default_scale() if scale is None else scale
    jobs = default_jobs(jobs)

    results: Dict[str, Dict[str, SimStats]] = {name: {} for name in configs}
    # One simulation per unique content key, however many names point at it.
    placements: Dict[str, List[Tuple[str, str]]] = {}
    job_specs: Dict[str, Tuple[str, MachineConfig]] = {}
    for config_name, config in configs.items():
        for benchmark in benchmarks:
            key = result_key(benchmark, scale, config)
            placements.setdefault(key, []).append((config_name, benchmark))
            job_specs.setdefault(key, (benchmark, config))

    pending: List[Tuple[str, str, MachineConfig]] = []
    for key, (benchmark, config) in job_specs.items():
        stats = _cache_lookup(key) if use_cache else None
        if stats is None:
            pending.append((key, benchmark, config))
        else:
            for config_name, bench in placements[key]:
                results[config_name][bench] = stats

    if pending:
        if jobs > 1 and len(pending) > 1:
            ctx = _pool_context()
            payload = [(key, benchmark, config, scale, use_cache)
                       for key, benchmark, config in pending]
            with ctx.Pool(processes=min(jobs, len(pending))) as pool:
                outcomes = pool.map(_pool_worker, payload)
            for key, simulated, stats in outcomes:
                if simulated:
                    telemetry.simulations += 1
                else:
                    telemetry.disk_hits += 1
                if use_cache:
                    # The worker already persisted to disk.
                    _cache_store(key, stats, to_disk=False)
                for config_name, bench in placements[key]:
                    results[config_name][bench] = stats
        else:
            for key, benchmark, config in pending:
                stats = _simulate(benchmark, config, scale)
                if use_cache:
                    _cache_store(key, stats)
                for config_name, bench in placements[key]:
                    results[config_name][bench] = stats
    return results
