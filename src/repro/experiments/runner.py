"""Shared experiment machinery.

All experiments run synthetic benchmarks through :func:`repro.core.simulate`.
Because every run is deterministic, results for a (benchmark, configuration,
scale) triple are cached in-process so that, for example, the baseline run is
shared between Figure 4 and Figure 7.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core import MachineConfig, SimStats, simulate
from repro.workloads import build_workload, workload_names

#: The full benchmark list (paper Figure 4 order).
DEFAULT_BENCHMARKS: Tuple[str, ...] = tuple(workload_names())

#: "Every other benchmark", as the paper uses for Figure 5/6 in the interest
#: of space; also the default for the pytest benchmark harness.
FAST_BENCHMARKS: Tuple[str, ...] = (
    "crafty", "eon.k", "gap", "gzip", "parser", "perl.s", "vortex", "vpr.r",
)

#: An even smaller subset for smoke tests.
SMOKE_BENCHMARKS: Tuple[str, ...] = ("gzip", "crafty", "mcf")

_CACHE: Dict[Tuple, SimStats] = {}


def default_scale() -> float:
    """Workload scale factor, overridable with the ``REPRO_SCALE`` env var.

    1.0 reproduces the sizes listed in DESIGN.md (10k-60k dynamic
    instructions per benchmark); smaller values shorten every experiment
    proportionally.
    """
    return float(os.environ.get("REPRO_SCALE", "0.5"))


def _config_key(config: MachineConfig) -> Tuple:
    icfg = config.integration
    return (
        config.rs_entries, config.ports, config.rob_size, config.lsq_size,
        icfg.enabled, icfg.general_reuse, icfg.index_scheme, icfg.reverse,
        icfg.it_entries, icfg.it_assoc, icfg.lisp_mode, icfg.generation_bits,
        icfg.refcount_bits, icfg.num_physical_regs, config.combined_ldst_port,
    )


def run_benchmark(benchmark: str, config: MachineConfig,
                  scale: Optional[float] = None,
                  use_cache: bool = True) -> SimStats:
    """Simulate one benchmark under one machine configuration."""
    scale = default_scale() if scale is None else scale
    key = (benchmark, scale, _config_key(config))
    if use_cache and key in _CACHE:
        return _CACHE[key]
    program = build_workload(benchmark, scale=scale)
    stats = simulate(program, config, name=benchmark)
    if use_cache:
        _CACHE[key] = stats
    return stats


def run_suite(benchmarks: Iterable[str],
              configs: Mapping[str, MachineConfig],
              scale: Optional[float] = None
              ) -> Dict[str, Dict[str, SimStats]]:
    """Run every benchmark under every named configuration.

    Returns ``results[config_name][benchmark] -> SimStats``.
    """
    results: Dict[str, Dict[str, SimStats]] = {}
    for config_name, config in configs.items():
        results[config_name] = {}
        for benchmark in benchmarks:
            results[config_name][benchmark] = run_benchmark(
                benchmark, config, scale=scale)
    return results


def clear_cache() -> None:
    _CACHE.clear()
