"""Figure 4: impact of general reuse, opcode indexing and speculative memory
bypassing.

Eight experiments per benchmark: the four extension configurations
(``squash``, ``+general``, ``+opcode``, ``+reverse``) each run with a
realistic LISP and with (approximate) oracle mis-integration suppression,
compared against a no-integration baseline.  The top half of the paper's
figure is the speedup over that baseline; the bottom half is the integration
rate with mis-integrations per million retired instructions printed above
each bar.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.analysis.metrics import (
    arithmetic_mean,
    format_table,
    geometric_mean,
    speedup,
)
from repro.core import MachineConfig, SimStats
from repro.experiments.runner import DEFAULT_BENCHMARKS, run_suite
from repro.integration.config import IntegrationConfig, LispMode

#: The four extension configurations, in the paper's bar order.
EXTENSION_CONFIGS = ("squash", "+general", "+opcode", "+reverse")


def integration_config_for(extension: str,
                           lisp: LispMode = LispMode.REALISTIC
                           ) -> IntegrationConfig:
    """Map a Figure 4 bar name to its :class:`IntegrationConfig`."""
    builders = {
        "squash": IntegrationConfig.squash,
        "+general": IntegrationConfig.general,
        "+opcode": IntegrationConfig.opcode,
        "+reverse": IntegrationConfig.full,
    }
    try:
        return builders[extension]().with_lisp(lisp)
    except KeyError:
        raise ValueError(f"unknown extension configuration {extension!r}") from None


@dataclass
class Figure4Result:
    """All runs behind Figure 4."""

    benchmarks: List[str]
    baseline: Dict[str, SimStats]
    # results[extension][lisp_mode][benchmark]
    results: Dict[str, Dict[str, Dict[str, SimStats]]]

    def speedups(self, extension: str,
                 lisp: str = "realistic") -> Dict[str, float]:
        runs = self.results[extension][lisp]
        table = {name: speedup(self.baseline[name], runs[name])
                 for name in self.benchmarks}
        table["GMean"] = geometric_mean(table[n] for n in self.benchmarks)
        return table

    def integration_rates(self, extension: str,
                          lisp: str = "realistic") -> Dict[str, float]:
        runs = self.results[extension][lisp]
        table = {name: runs[name].integration_rate for name in self.benchmarks}
        table["AMean"] = arithmetic_mean(table[n] for n in self.benchmarks)
        return table

    def mean_speedup(self, extension: str, lisp: str = "realistic") -> float:
        return self.speedups(extension, lisp)["GMean"]

    def mean_integration_rate(self, extension: str,
                              lisp: str = "realistic") -> float:
        return self.integration_rates(extension, lisp)["AMean"]

    def mean_reverse_rate(self, extension: str = "+reverse",
                          lisp: str = "realistic") -> float:
        runs = self.results[extension][lisp]
        return arithmetic_mean(runs[n].reverse_integration_rate
                               for n in self.benchmarks)

    def mis_integrations_per_million(self, extension: str,
                                     lisp: str = "realistic"
                                     ) -> Dict[str, float]:
        runs = self.results[extension][lisp]
        return {name: runs[name].mis_integrations_per_million
                for name in self.benchmarks}


def run(benchmarks: Optional[Iterable[str]] = None,
        scale: Optional[float] = None,
        machine: Optional[MachineConfig] = None,
        lisp_modes: Iterable[LispMode] = (LispMode.REALISTIC, LispMode.ORACLE),
        jobs: Optional[int] = None,
        variant: Optional[str] = None,
        ) -> Figure4Result:
    """Run the Figure 4 experiment matrix (one job per benchmark/config)."""
    benchmarks = list(benchmarks or DEFAULT_BENCHMARKS)
    lisp_modes = tuple(lisp_modes)
    machine = machine or MachineConfig()

    suite_configs = {
        "baseline": machine.with_integration(IntegrationConfig.disabled()),
    }
    for extension in EXTENSION_CONFIGS:
        for lisp in lisp_modes:
            suite_configs[f"{extension}/{lisp.value}"] = machine.with_integration(
                integration_config_for(extension, lisp))
    suite = run_suite(benchmarks, suite_configs, scale=scale, jobs=jobs,
                      variant=variant)

    results: Dict[str, Dict[str, Dict[str, SimStats]]] = {
        extension: {lisp.value: suite[f"{extension}/{lisp.value}"]
                    for lisp in lisp_modes}
        for extension in EXTENSION_CONFIGS}
    return Figure4Result(benchmarks=benchmarks, baseline=suite["baseline"],
                         results=results)


def report(result: Figure4Result, lisp: str = "realistic") -> str:
    """Paper-style text rendering of Figure 4."""
    rows = []
    for name in result.benchmarks + ["MEAN"]:
        row = {"benchmark": name}
        for extension in EXTENSION_CONFIGS:
            if extension not in result.results:
                continue
            speedups = result.speedups(extension, lisp)
            rates = result.integration_rates(extension, lisp)
            if name == "MEAN":
                row[f"{extension} spd"] = speedups["GMean"]
                row[f"{extension} rate"] = rates["AMean"]
            else:
                row[f"{extension} spd"] = speedups[name]
                row[f"{extension} rate"] = rates[name]
        rows.append(row)
    columns = ["benchmark"]
    for extension in EXTENSION_CONFIGS:
        columns += [f"{extension} spd", f"{extension} rate"]
    return format_table(
        rows, columns,
        title=f"Figure 4 -- speedup over no-integration baseline and "
              f"integration rate ({lisp} LISP)")
