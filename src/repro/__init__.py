"""Reproduction of register integration (Petric, Bracy & Roth, MICRO 2002).

Subpackages:

* :mod:`repro.isa`          -- the toy 64-bit RISC ISA and assembler
* :mod:`repro.functional`   -- the architectural (functional) emulator
* :mod:`repro.core`         -- the cycle-level out-of-order timing model
* :mod:`repro.integration`  -- the integration table and logic
* :mod:`repro.memsys`       -- the cache/TLB timing hierarchy
* :mod:`repro.frontend`     -- branch prediction
* :mod:`repro.workloads`    -- synthetic SPEC-like benchmarks
* :mod:`repro.experiments`  -- the parallel, disk-cached experiment engine
* :mod:`repro.analysis`     -- metrics and report formatting

This module stays import-light on purpose: it is imported by every
configuration module and by the ``python -m repro`` CLI entry point.
"""

__version__ = "0.2.0"
