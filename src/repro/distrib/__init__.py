"""Distributed execution: a worker-fleet job queue over the shared cache.

The experiment engine's unit of work -- one (benchmark, config-fingerprint,
variant, slice) simulation -- is deterministic and content-addressed, which
makes a fleet of cooperating workers almost trivial: any number of
processes, on one machine or many sharing a cache directory over a network
filesystem, can drain a durable job queue and publish results straight into
the existing :class:`~repro.experiments.cache.ResultCache` namespaces.
Re-execution is always safe (identical bits under the same key), so the
queue only has to guarantee *liveness*: no job is lost when a worker dies,
and no job is claimed twice while a claim is live.

* :mod:`repro.distrib.queue`   -- the durable filesystem job queue: atomic-
  rename claiming, lease files with heartbeats, expiry-based reclamation of
  crashed workers' jobs, bounded retry with a dead-letter state.
* :mod:`repro.distrib.backend` -- the :class:`ExecutionBackend` protocol and
  its three implementations (``serial``, ``pool``, ``distributed``), which
  :func:`repro.experiments.runner.run_suite` routes every job through.
* :mod:`repro.distrib.worker`  -- the worker loop behind ``repro worker``
  plus the job payload (de)serialization shared with the backend.

CLI entry points: ``repro submit`` enqueues a sweep (and can block until
the merged stats are resolvable from cache), ``repro worker`` runs one
drain loop, ``repro status`` snapshots queue depth, lease ages and
per-worker throughput.
"""

from repro.distrib.backend import (
    DistributedBackend,
    ExecutionBackend,
    PoolBackend,
    SerialBackend,
    default_backend,
    resolve_backend,
)
from repro.distrib.queue import (
    DEFAULT_LEASE_TTL,
    DeadJob,
    JobQueue,
    LeaseLostError,
    QueueStatus,
    default_queue_dir,
)
from repro.distrib.worker import WorkerSummary, execute_payload, run_worker

__all__ = [
    "DEFAULT_LEASE_TTL",
    "DeadJob",
    "DistributedBackend",
    "ExecutionBackend",
    "JobQueue",
    "LeaseLostError",
    "PoolBackend",
    "QueueStatus",
    "SerialBackend",
    "WorkerSummary",
    "default_backend",
    "default_queue_dir",
    "execute_payload",
    "resolve_backend",
    "run_worker",
]
