"""The worker loop behind ``repro worker``, and the job payload format.

A *job payload* is a self-contained JSON description of one simulation:
benchmark name, workload scale, the full canonical
:class:`~repro.core.MachineConfig` dict (which carries the variant), and --
for sharded work units -- the slice geometry plus the architectural
checkpoint to resume from.  Self-containment is the point: a worker needs
nothing but the payload and the shared cache directory; it never re-plans
checkpoints or talks to the submitter.

Execution is idempotent by construction.  The payload carries the result's
content address (the same ``result_key``/``slice_key`` the in-process
engine uses), the worker probes the shared
:class:`~repro.experiments.cache.ResultCache` under that key before
simulating, and publishes its result there before marking the job done --
so duplicated execution (a reclaimed-then-finished job, a resubmitted
sweep) costs at most wasted CPU, never wrong or double-counted results.

The loop heartbeats its lease from a daemon thread while the (long,
synchronous) simulation call runs, reclaims expired leases of crashed
peers on every idle poll, and publishes throughput counters for
``repro status``.

Fencing: the heartbeat thread tracks its own health (consecutive write
failures, a lease observed to belong to someone else), and a worker whose
lease has been silent for half the TTL re-verifies ownership before
publishing.  A worker that lost its lease treats the job as *fenced* --
no publish, no done-rename -- so a reclaimed job can never be
double-finished by its original, slept-through-the-TTL owner.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.core import MachineConfig, SimStats, simulate
from repro.distrib.queue import (
    ClaimedJob,
    JobQueue,
    LeaseLostError,
    worker_identity,
)
from repro.experiments.cache import ResultCache
from repro.experiments.sharding import SliceSpec, simulate_slice
from repro.functional.emulator import Checkpoint
from repro.obs import metrics
from repro.reliability.faults import SimulatedCrash, crashpoint
from repro.workloads import build_workload

#: Fraction of the lease TTL between heartbeats while a job runs.
HEARTBEAT_FRACTION = 0.25


# ----------------------------------------------------------------------
# job payloads
# ----------------------------------------------------------------------
def make_payload(key: str, benchmark: str, config: MachineConfig,
                 scale: float, slice_spec: Optional[SliceSpec] = None,
                 checkpoint: Optional[Checkpoint] = None) -> Dict[str, Any]:
    """Serialize one work unit into a self-contained JSON payload."""
    payload: Dict[str, Any] = {
        "key": key,
        "benchmark": benchmark,
        "scale": float(scale),
        "config": config.to_dict(),
    }
    if slice_spec is not None:
        payload["slice"] = slice_spec.to_dict()
        payload["slice"]["checkpoint"] = (checkpoint.to_dict()
                                          if checkpoint else None)
    return payload


def execute_payload(payload: Dict[str, Any]) -> SimStats:
    """Run the simulation a payload describes (no cache interaction)."""
    from repro.experiments import runner

    benchmark = payload["benchmark"]
    scale = float(payload["scale"])
    config = MachineConfig.from_dict(payload["config"])
    program = build_workload(benchmark, scale=scale)
    runner.telemetry.simulations += 1
    sliced = payload.get("slice")
    if not sliced:
        return simulate(program, config, name=benchmark)
    spec = SliceSpec.from_dict(sliced)
    checkpoint = (Checkpoint.from_dict(sliced["checkpoint"])
                  if sliced.get("checkpoint") else None)
    return simulate_slice(program, config, spec, checkpoint, name=benchmark)


# ----------------------------------------------------------------------
# the worker loop
# ----------------------------------------------------------------------
@dataclass
class WorkerSummary:
    """What one :func:`run_worker` invocation did."""

    worker: str = ""
    executed: int = 0        # jobs simulated by this worker
    cache_hits: int = 0      # jobs resolved from the shared cache instead
    failed: int = 0          # failed attempts recorded (retried or dead)
    reclaimed: int = 0       # expired leases this worker reclaimed
    lost: int = 0            # completions that lost the done-rename race
    fenced: int = 0          # jobs abandoned after losing the lease
    io_errors: int = 0       # queue IO errors survived by the drain loop
    started_at: float = field(default_factory=time.time)

    @property
    def jobs_done(self) -> int:
        return self.executed + self.cache_hits

    def to_dict(self) -> Dict[str, Any]:
        return {
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failed": self.failed,
            "reclaimed": self.reclaimed,
            "lost": self.lost,
            "fenced": self.fenced,
            "io_errors": self.io_errors,
            "started_at": self.started_at,
        }


class _HeartbeatThread:
    """Daemon thread refreshing one job's lease while it executes.

    Tracks its own health instead of swallowing errors forever:

    * a transient ``OSError`` bumps ``failures`` and retries next beat;
    * :class:`LeaseLostError` (the lease now names another worker) sets
      ``lost`` and stops beating -- the job is no longer ours;
    * :attr:`suspect` turns true once the lease has gone unrefreshed for
      half the TTL, telling the worker to re-verify ownership with
      :meth:`JobQueue.owns` before it publishes anything.
    """

    def __init__(self, queue: JobQueue, job: ClaimedJob,
                 clock: Callable[[], float] = time.monotonic):
        self._queue = queue
        self._job = job
        self._stop = threading.Event()
        self._clock = clock
        self._last_ok = clock()
        self.failures = 0          # consecutive failed beats
        self.lost = False          # lease observed to belong to someone else
        interval = max(0.05, queue.lease_ttl * HEARTBEAT_FRACTION)
        self._thread = threading.Thread(
            target=self._run, args=(interval,), daemon=True)

    @property
    def suspect(self) -> bool:
        """The lease may have expired under us; re-verify before publish."""
        if self.lost:
            return True
        return (self._clock() - self._last_ok) >= self._queue.lease_ttl / 2.0

    def _run(self, interval: float) -> None:
        while not self._stop.wait(interval):
            try:
                crashpoint("mid-heartbeat")
                self._queue.heartbeat(self._job)
            except LeaseLostError:
                self.lost = True
                return
            except OSError:
                self.failures += 1
                continue
            except SimulatedCrash:
                # An injected crash in the beater cannot unwind the main
                # thread; going permanently silent has the same observable
                # effect -- the lease stops refreshing and expires.
                return
            self.failures = 0
            self._last_ok = self._clock()

    def __enter__(self) -> "_HeartbeatThread":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def process_one(queue: JobQueue, cache: ResultCache, job: ClaimedJob,
                summary: WorkerSummary) -> None:
    """Execute one claimed job end to end (shared with the inline drain).

    Publishes the result to the shared cache *before* the ``done``
    transition; a failure (simulation error, unreadable payload) is
    recorded via :meth:`JobQueue.fail`, which retries or dead-letters.

    Fencing: if the heartbeat lost the lease -- or went silent long
    enough that it *might* have -- ownership is re-verified before the
    publish, and a fenced worker walks away without touching the cache
    entry, the claimed file or the lease.  A publish that still fails
    after retries is recorded as a failed attempt rather than marked
    done: a done marker whose result never reached the cache would hang
    the blocking submitter forever.
    """
    fenced = False
    with _HeartbeatThread(queue, job) as beater:
        try:
            stats = cache.load(job.key) if job.key else None
            if stats is not None:
                summary.cache_hits += 1
            else:
                stats = execute_payload(job.payload)
                summary.executed += 1
                if beater.lost or (beater.suspect and not queue.owns(job)):
                    fenced = True
                else:
                    crashpoint("before-publish")
                    if job.key and not cache.store(job.key, stats):
                        summary.failed += 1
                        queue.fail(job, "cache publish failed after retries")
                        return
                    crashpoint("after-publish-before-done")
        except SimulatedCrash:
            raise
        except Exception:
            summary.failed += 1
            queue.fail(job, traceback.format_exc(limit=8))
            return
    if fenced:
        summary.fenced += 1
        from repro.experiments import runner

        runner.telemetry.fenced += 1
        return
    if not queue.complete(job):
        summary.lost += 1


def run_worker(queue: Optional[JobQueue] = None,
               cache: Optional[ResultCache] = None,
               worker_id: Optional[str] = None,
               max_jobs: Optional[int] = None,
               idle_timeout: Optional[float] = None,
               poll_interval: float = 0.2,
               log: Optional[Callable[[str], None]] = None,
               stop: Optional[threading.Event] = None) -> WorkerSummary:
    """Drain jobs from ``queue`` until told (or timed) out.

    ``max_jobs`` bounds how many jobs this worker takes (None = no bound);
    ``idle_timeout`` exits after that many seconds without claimable work
    (None = wait forever, the long-lived fleet mode); ``stop`` requests a
    graceful drain between jobs (the ``repro fleet`` SIGTERM path).
    Expired peers' leases are reclaimed on every idle poll, and transient
    queue IO errors back the loop off instead of killing the worker.
    Returns the summary that is also published to ``workers/<id>.json``
    for ``repro status``.
    """
    queue = queue if queue is not None else JobQueue()
    cache = cache if cache is not None else ResultCache()
    summary = WorkerSummary(worker=worker_id or worker_identity())
    idle_since: Optional[float] = None
    emit = log or (lambda message: None)
    registry = metrics.REGISTRY
    snapshot_interval = metrics.default_metrics_interval()
    last_snapshot = time.time()

    def mirror() -> None:
        """Mirror the summary into ``worker.*`` registry counters (the
        source the shared exit-line formatter renders from)."""
        for name, value in summary.to_dict().items():
            if name == "started_at":
                registry.set_gauge("worker.started_at", value)
            else:
                registry.set_counter(f"worker.{name}", int(value))
        registry.set_counter("worker.jobs_done", summary.jobs_done)

    def maybe_snapshot(force: bool = False) -> None:
        """Append a metrics snapshot for the status dashboard's
        sliding-window rates (advisory: IO errors are swallowed)."""
        nonlocal last_snapshot
        now = time.time()
        if not force and now - last_snapshot < snapshot_interval:
            return
        last_snapshot = now
        try:
            queue.record_worker_metrics(summary.worker, {
                "t": now,
                "jobs_done": summary.jobs_done,
                "executed": summary.executed,
                "cache_hits": summary.cache_hits,
                "failed": summary.failed,
            })
        except OSError:
            pass

    mirror()
    emit(f"worker {summary.worker} draining {queue.root}")
    try:
        while max_jobs is None or summary.jobs_done < max_jobs:
            if stop is not None and stop.is_set():
                emit(f"worker {summary.worker} stop requested; draining out")
                break
            maybe_snapshot()
            try:
                summary.reclaimed += queue.reclaim_expired()
                job = queue.claim(summary.worker)
            except OSError as exc:
                summary.io_errors += 1
                emit(f"  queue IO error ({exc}); backing off")
                time.sleep(poll_interval)
                continue
            if job is None:
                now = time.time()
                if idle_since is None:
                    idle_since = now
                if (idle_timeout is not None
                        and now - idle_since >= idle_timeout):
                    break
                time.sleep(poll_interval)
                continue
            idle_since = None
            emit(f"  job {job.key[:16]} "
                 f"({job.payload.get('benchmark', '?')})")
            process_one(queue, cache, job, summary)
            mirror()
            try:
                queue.record_worker(summary.worker, summary.to_dict())
            except OSError:
                pass                    # stats are advisory, never fatal
    except KeyboardInterrupt:
        emit(f"worker {summary.worker} interrupted")
    mirror()
    maybe_snapshot(force=True)
    try:
        queue.record_worker(summary.worker, summary.to_dict())
    except OSError:
        pass
    emit(metrics.format_worker_exit(summary.worker))
    return summary
