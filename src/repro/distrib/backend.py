"""Execution backends: where the experiment engine's jobs actually run.

:func:`repro.experiments.runner.run_suite` plans a list of (estimated-work,
job) pairs -- each job one deterministic, content-addressed simulation --
and hands the whole list to an :class:`ExecutionBackend`.  Three
implementations cover one process, one machine and one fleet:

* :class:`SerialBackend` -- run every job in-process, sharing one
  :class:`Program` instance per benchmark across slice jobs.
* :class:`PoolBackend` -- the ``multiprocessing`` pool: ``imap_unordered``
  over the longest-first job list so short jobs backfill stragglers.  This
  is the historical ``jobs > 1`` path, behavior-preserving.
* :class:`DistributedBackend` -- publish every job into the durable
  filesystem :class:`~repro.distrib.queue.JobQueue` and block until every
  result is resolvable from the shared
  :class:`~repro.experiments.cache.ResultCache`; any fleet of
  ``repro worker`` processes sharing the cache directory drains the queue.
  With ``drain=True`` (the default) the submitting process also works the
  queue between cache polls, so a distributed run completes even with no
  external workers -- they just make it faster.

Selection: ``run_suite(backend=...)`` accepts a backend instance or a name;
``None`` falls back to ``REPRO_BACKEND`` and finally to the classic
pool-or-serial choice implied by ``jobs``.

All backends return the same ``{cache key: SimStats}`` mapping and, because
simulation is deterministic, identical bits -- the backend-equivalence
tests pin that.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Protocol, Tuple, Union

from repro.core import SimStats
from repro.distrib.queue import JobQueue, job_id_for, worker_identity

BACKEND_NAMES = ("serial", "pool", "distributed")
ENV_BACKEND = "REPRO_BACKEND"

#: Ceiling for the distributed wait-loop's adaptive poll interval: idle
#: polls back off exponentially from ``poll_interval`` up to this, and
#: any progress (a claim, a resolved key) resets the backoff.
POLL_INTERVAL_CAP = 5.0

#: One plannable job, as built by ``run_suite``:
#: (key, benchmark, config, scale, use_cache, slice_spec, checkpoint).
Job = Tuple[str, str, object, float, bool, object, object]
#: (estimated work, job) -- the estimate orders execution longest-first.
SizedJob = Tuple[int, Job]


class BackendError(SystemExit):
    """A backend mis-configuration, reported as a one-line CLI error."""


class ExecutionBackend(Protocol):
    """Anything that can run a planned job list to completion."""

    name: str

    def execute(self, jobs_list: List[SizedJob],
                use_cache: bool) -> Dict[str, SimStats]:
        """Run every job and return ``{key: stats}`` for all of them."""
        ...


def _ordered(jobs_list: List[SizedJob]) -> List[Job]:
    return [job for _, job in
            sorted(jobs_list, key=lambda item: item[0], reverse=True)]


class SerialBackend:
    """Everything in this process, one job at a time."""

    name = "serial"

    def execute(self, jobs_list: List[SizedJob],
                use_cache: bool) -> Dict[str, SimStats]:
        from repro.experiments import runner, sharding
        from repro.workloads import build_workload

        outcomes: Dict[str, SimStats] = {}
        # One Program instance per benchmark: slice jobs of the same
        # benchmark (across every config) share it instead of regenerating.
        programs: Dict[Tuple[str, float], object] = {}
        for job in _ordered(jobs_list):
            key, benchmark, config, scale, _, slice_spec, checkpoint = job
            if slice_spec is None:
                stats = runner._simulate(benchmark, config, scale)
            else:
                program = programs.get((benchmark, scale))
                if program is None:
                    program = build_workload(benchmark, scale=scale)
                    programs[(benchmark, scale)] = program
                runner.telemetry.simulations += 1
                stats = runner._record_cycles(
                    sharding.simulate_slice(program, config, slice_spec,
                                            checkpoint, name=benchmark))
            if use_cache:
                runner._cache_store(key, stats)
            outcomes[key] = stats
        return outcomes


class PoolBackend:
    """A local ``multiprocessing`` pool of ``jobs`` worker processes."""

    name = "pool"

    def __init__(self, jobs: int):
        self.jobs = max(1, int(jobs))

    def execute(self, jobs_list: List[SizedJob],
                use_cache: bool) -> Dict[str, SimStats]:
        from repro.experiments import runner

        ordered = _ordered(jobs_list)
        if self.jobs <= 1 or len(ordered) <= 1:
            return SerialBackend().execute(jobs_list, use_cache)
        outcomes: Dict[str, SimStats] = {}
        ctx = runner._pool_context()
        with ctx.Pool(processes=min(self.jobs, len(ordered))) as pool:
            for key, simulated, stats in pool.imap_unordered(
                    runner._pool_worker, ordered):
                if simulated:
                    runner.telemetry.simulations += 1
                    runner._record_cycles(stats)
                else:
                    runner.telemetry.disk_hits += 1
                if use_cache:
                    # The worker already persisted to disk.
                    runner._cache_store(key, stats, to_disk=False)
                outcomes[key] = stats
        return outcomes


class DistributedBackend:
    """Publish jobs to the shared queue; gather results from the cache.

    The queue and the result namespaces both live under the (shared) cache
    root, so a fleet needs exactly one knob -- ``REPRO_CACHE_DIR`` -- to
    cooperate.  ``drain=True`` (default) makes the submitter work the
    queue too; ``drain=False`` is pure submit-and-wait, the mode behind
    ``repro submit`` when a dedicated fleet does the work.  ``timeout``
    bounds the wait (None = forever); dead-lettered jobs abort the wait
    with their failure history rather than hanging it.

    Degradation: when the queue root is unusable (submission itself fails
    with an ``OSError`` that survives the retries), the run falls back to
    an in-process :class:`PoolBackend` of ``fallback_jobs`` workers with a
    one-line warning instead of dying -- the sweep completes, it just
    stops being distributed.
    """

    name = "distributed"

    def __init__(self, queue_dir: Optional[Path] = None,
                 lease_ttl: Optional[float] = None,
                 poll_interval: float = 0.5,
                 drain: bool = True,
                 timeout: Optional[float] = None,
                 fallback_jobs: int = 1):
        self.queue_dir = queue_dir
        self.lease_ttl = lease_ttl
        self.poll_interval = poll_interval
        self.drain = drain
        self.timeout = timeout
        self.fallback_jobs = max(1, int(fallback_jobs))

    def queue(self) -> JobQueue:
        return JobQueue(root=self.queue_dir, lease_ttl=self.lease_ttl)

    # ------------------------------------------------------------------
    def submit(self, jobs_list: List[SizedJob],
               use_cache: bool) -> Dict[str, Job]:
        """Enqueue every job (deduplicating); returns ``{key: job}``."""
        from repro.distrib.worker import make_payload
        from repro.experiments.cache import disk_cache_enabled

        if not use_cache or not disk_cache_enabled():
            raise BackendError(
                "the distributed backend requires the shared disk cache "
                "(it is the result plane); do not combine it with "
                "--no-cache / REPRO_DISK_CACHE=0")
        queue = self.queue()
        submitted: Dict[str, Job] = {}
        for est_work, job in sorted(jobs_list, key=lambda item: item[0],
                                    reverse=True):
            key, benchmark, config, scale, _, slice_spec, checkpoint = job
            queue.submit(
                make_payload(key, benchmark, config, scale,
                             slice_spec=slice_spec, checkpoint=checkpoint),
                est_work=est_work)
            submitted[key] = job
        return submitted

    def execute(self, jobs_list: List[SizedJob],
                use_cache: bool) -> Dict[str, SimStats]:
        from repro.distrib.worker import WorkerSummary, make_payload, process_one
        from repro.experiments import runner
        from repro.experiments.cache import ResultCache

        if not jobs_list:
            return {}
        try:
            pending = self.submit(jobs_list, use_cache)
        except OSError as exc:
            # Queue root unusable (permissions, dead mount, full disk):
            # degrade to an in-process pool rather than losing the sweep.
            print(f"repro: warning: queue root unusable ({exc}); "
                  f"falling back to the pool backend "
                  f"({self.fallback_jobs} jobs)", file=sys.stderr)
            return PoolBackend(self.fallback_jobs).execute(
                jobs_list, use_cache)
        job_ids = {key: job_id_for(key, est)
                   for est, (key, *_rest) in jobs_list}
        est_work = {key: est for est, (key, *_rest) in jobs_list}
        queue = self.queue()
        cache = ResultCache()
        summary = WorkerSummary(worker=worker_identity())
        outcomes: Dict[str, SimStats] = {}
        local_keys = set()
        last_progress = time.time()
        current_poll = self.poll_interval
        while pending:
            progressed = False
            if self.drain:
                try:
                    job = queue.claim(summary.worker)
                except OSError:
                    summary.io_errors += 1
                    job = None
                if job is not None:
                    executed_before = summary.executed
                    process_one(queue, cache, job, summary)
                    if summary.executed > executed_before:
                        local_keys.add(job.key)
                    progressed = True
            try:
                reclaimed = queue.reclaim_expired()
            except OSError:
                summary.io_errors += 1
                reclaimed = 0
            if reclaimed:
                runner.telemetry.leases_reclaimed += reclaimed
                summary.reclaimed += reclaimed
            for key in list(pending):
                stats = cache.load(key)
                if stats is not None:
                    if key not in local_keys:
                        runner.telemetry.remote_jobs += 1
                    runner._cache_store(key, stats, to_disk=False)
                    outcomes[key] = stats
                    del pending[key]
                    progressed = True
            if pending and not progressed:
                # A done marker whose result does not load means the entry
                # was lost *after* the publish-before-done step: a torn
                # write caught (and quarantined) by the integrity check,
                # or a `cache gc` eviction racing the wait.  Resubmitting
                # is the recovery: submit() treats the done marker as
                # stale, unlinks it and re-enqueues the job.
                for key in list(pending):
                    marker = (queue.state_dir("done")
                              / f"{job_ids[key]}.json")
                    if not marker.exists():
                        continue
                    job = pending[key]
                    _key, benchmark, config, scale, _uc, spec, ckpt = job
                    try:
                        if queue.submit(
                                make_payload(key, benchmark, config, scale,
                                             slice_spec=spec,
                                             checkpoint=ckpt),
                                est_work=est_work[key]):
                            progressed = True
                    except OSError:
                        summary.io_errors += 1
            if pending:
                # Watch only this run's own job ids (one existence probe
                # each), not the whole dead/ directory -- a long-lived
                # queue may carry dead letters from unrelated sweeps.
                dead = [d for d in (queue.find_dead(job_ids[key])
                                    for key in pending) if d is not None]
                if dead:
                    lines = []
                    for d in dead:
                        tail = (d.errors or ["unknown"])[-1].strip()
                        last = tail.splitlines()[-1] if tail else "unknown"
                        lines.append(f"  {d.key[:16]} after {d.attempts} "
                                     f"attempts: {last}")
                    raise RuntimeError(
                        f"{len(dead)} job(s) dead-lettered in {queue.root}"
                        + "\n" + "\n".join(lines))
            now = time.time()
            if progressed:
                last_progress = now
                current_poll = self.poll_interval
            elif pending:
                # The timeout is progress-based, not absolute: a healthy
                # fleet mid-way through long jobs keeps resetting it.
                if (self.timeout is not None
                        and now - last_progress > self.timeout):
                    raise TimeoutError(
                        f"distributed run made no progress for "
                        f"{self.timeout:g}s with {len(pending)} job(s) "
                        f"unresolved in {queue.root} (no live workers?)")
                # Adaptive idle poll: exponential backoff up to the cap,
                # reset on any progress, so a submit-and-wait against a
                # busy fleet does not spin at 2 Hz for hours.
                time.sleep(current_poll)
                current_poll = min(
                    current_poll * 2.0,
                    max(POLL_INTERVAL_CAP, self.poll_interval))
        if summary.jobs_done or summary.reclaimed or summary.failed:
            # Only drains that actually did something publish worker
            # stats; a pure submit-and-wait leaves no per-run debris.
            try:
                queue.record_worker(summary.worker, summary.to_dict())
            except OSError:
                pass
        return outcomes


def default_backend() -> Optional[str]:
    """Backend name from ``REPRO_BACKEND`` (None = unset)."""
    from repro.experiments.runner import EnvVarError

    raw = os.environ.get(ENV_BACKEND, "").strip().lower()
    if not raw:
        return None
    if raw not in BACKEND_NAMES:
        raise EnvVarError(ENV_BACKEND, raw,
                          f"one of {', '.join(BACKEND_NAMES)}")
    return raw


def resolve_backend(backend: Union[str, ExecutionBackend, None],
                    jobs: int) -> ExecutionBackend:
    """Turn a backend spec into an instance.

    Precedence: an explicit instance or name wins; ``None`` falls back to
    ``REPRO_BACKEND``; with neither set, the classic behavior-preserving
    choice applies -- a pool when ``jobs > 1``, else serial.
    """
    if backend is None:
        backend = default_backend()
    if backend is None:
        return PoolBackend(jobs) if jobs > 1 else SerialBackend()
    if isinstance(backend, str):
        name = backend.strip().lower()
        if name == "serial":
            return SerialBackend()
        if name == "pool":
            return PoolBackend(jobs)
        if name == "distributed":
            return DistributedBackend(fallback_jobs=jobs)
        raise BackendError(
            f"unknown backend {backend!r} "
            f"(available: {', '.join(BACKEND_NAMES)})")
    return backend
