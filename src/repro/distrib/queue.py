"""A durable, filesystem-backed job queue for cooperating worker fleets.

The queue is a directory tree (by default ``<cache root>/queue``, i.e. next
to the content-addressed result cache the workers publish into) that any
number of worker processes may share -- on one machine or across machines
over a network filesystem.  Every transition is a single atomic
``os.rename`` on one JSON file, so the protocol needs no locks, no server
and no database:

.. code-block:: text

    <queue root>/
        pending/<job-id>.json    submitted, unclaimed work
        claimed/<job-id>.json    work owned by exactly one live worker
        leases/<job-id>.json     the owner's lease: worker id + heartbeat
        done/<job-id>.json       terminal: result published to the cache
        dead/<job-id>.json       terminal: failed max_attempts times
        workers/<worker>.json    per-worker throughput stats (status only)

*Claiming* is ``rename(pending/X, claimed/X)``: the filesystem guarantees
exactly one of N concurrent claimers wins (the rest see ``FileNotFoundError``
and move on), which is the whole mutual-exclusion story.  The winner then
writes a *lease* recording its identity and heartbeat time, and re-writes it
periodically while it works.

*Reclamation* makes the queue crash-safe: any worker (or the submitter) may
scan ``claimed/`` for jobs whose lease is missing or whose heartbeat is
older than the lease TTL, and atomically steal them back via a rename
through a privately-named temp file.  A reclaim counts as a failed attempt,
so a poison job that keeps killing workers ends up in ``dead/`` (the
dead-letter state, with its failure history) instead of looping forever.

Because results are published to the content-addressed cache *before* the
``claimed -> done`` transition, the queue never needs to move data: losing
the done-rename race (the job was reclaimed and finished elsewhere) is
harmless -- both executions produced identical bits under the same key.

Job IDs embed a zero-padded descending-work prefix so a sorted directory
listing yields jobs longest-first, preserving the pool backend's
backfill-the-stragglers scheduling across the fleet.

Clocks: lease expiry compares worker wall clocks through file contents, so
fleets spanning machines need clocks synchronised to well within the lease
TTL (the 60 s default tolerates ordinary NTP drift).
"""

from __future__ import annotations

import errno
import json
import os
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.experiments.cache import cache_dir
from repro.reliability import fs
from repro.reliability.faults import crashpoint
from repro.reliability.retry import with_retries

ENV_QUEUE_DIR = "REPRO_QUEUE_DIR"
ENV_LEASE_TTL = "REPRO_LEASE_TTL"

#: Seconds a claimed job may go without a heartbeat before any other
#: process may reclaim it.  Heartbeats run at a fraction of this, so only a
#: genuinely dead (or badly wedged) worker ever loses a lease.
DEFAULT_LEASE_TTL = 60.0

#: Attempts (initial execution + retries, including crash reclaims) before
#: a job is dead-lettered.
DEFAULT_MAX_ATTEMPTS = 3

_STATES = ("pending", "claimed", "done", "dead")


class LeaseLostError(Exception):
    """This worker's lease on a job now belongs to someone else.

    Raised by :meth:`JobQueue.heartbeat` when the lease file names a
    different worker: the job was reclaimed (lease expiry) and re-claimed
    while this worker ran it.  The fencing contract is that the original
    worker must treat the job as lost -- no publish, no done-rename, no
    lease writes -- and let the new owner finish it.
    """


def default_queue_dir() -> Path:
    """Queue root: ``REPRO_QUEUE_DIR`` or ``<cache root>/queue``.

    Living under the cache root is deliberate: pointing a fleet at one
    ``REPRO_CACHE_DIR`` gives the workers both the queue and the result
    namespaces with a single knob.
    """
    env = os.environ.get(ENV_QUEUE_DIR)
    if env:
        return Path(env).expanduser()
    return cache_dir() / "queue"


def default_lease_ttl() -> float:
    """Lease TTL in seconds, overridable with ``REPRO_LEASE_TTL``."""
    from repro.experiments.runner import env_float

    return env_float(ENV_LEASE_TTL, str(DEFAULT_LEASE_TTL))


def worker_identity() -> str:
    """A fleet-unique worker id: host, pid and a random suffix."""
    host = socket.gethostname().split(".")[0] or "host"
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def _as_float(value: object, default: float) -> float:
    """Defensive float parse: corrupt lease/job fields degrade, not crash."""
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return default


def _as_int(value: object, default: int) -> int:
    """Defensive int parse (see :func:`_as_float`)."""
    try:
        return int(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return default


def job_id_for(key: str, est_work: int) -> str:
    """Derive the job's filename stem from its cache key and size.

    The id starts with a zero-padded *descending* work prefix so that the
    sorted ``pending/`` listing enumerates jobs longest-first, and ends
    with the (unique) content-address so resubmitting a sweep while jobs
    are still in flight deduplicates instead of duplicating work.
    """
    inverse = max(0, 10 ** 12 - 1 - int(est_work))
    return f"{inverse:012d}-{key}"


def key_of_job_id(job_id: str) -> str:
    """Recover the cache key from a job id (inverse of :func:`job_id_for`).

    Needed when the job *file* is unreadable (corruption) but the identity
    must survive into the dead-letter record so blocking submitters can
    still match it against their pending keys.
    """
    _, _, key = job_id.partition("-")
    return key


@dataclass
class ClaimedJob:
    """A job this process owns: the payload plus lease bookkeeping."""

    job_id: str
    payload: Dict[str, Any]
    worker: str
    path: Path                     # claimed/<job-id>.json
    lease_path: Path

    @property
    def key(self) -> str:
        return self.payload.get("key", "")


@dataclass
class DeadJob:
    """One dead-lettered job, for status output and submit-side errors."""

    job_id: str
    key: str
    attempts: int
    errors: List[str] = field(default_factory=list)


@dataclass
class QueueStatus:
    """A point-in-time snapshot for ``repro status``."""

    root: str
    pending: int
    claimed: int
    done: int
    dead: int
    #: (worker id, lease age in seconds, job id) per live claim.
    leases: List[Tuple[str, float, str]] = field(default_factory=list)
    #: worker id -> stats dict from ``workers/<id>.json``.
    workers: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """Jobs not yet in a terminal state."""
        return self.pending + self.claimed


class JobQueue:
    """One queue directory; every method is safe under fleet concurrency."""

    def __init__(self, root: Optional[Path] = None,
                 lease_ttl: Optional[float] = None,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS) -> None:
        self.root = Path(root) if root is not None else default_queue_dir()
        self.lease_ttl = (default_lease_ttl() if lease_ttl is None
                          else float(lease_ttl))
        self.max_attempts = max(1, int(max_attempts))

    # ------------------------------------------------------------------
    # layout helpers
    # ------------------------------------------------------------------
    def state_dir(self, state: str) -> Path:
        return self.root / state

    def _lease_path(self, job_id: str) -> Path:
        return self.root / "leases" / f"{job_id}.json"

    def _ensure_layout(self) -> None:
        for state in _STATES + ("leases", "workers", "tmp"):
            (self.root / state).mkdir(parents=True, exist_ok=True)

    def _list(self, state: str) -> List[Path]:
        try:
            names = sorted(os.listdir(self.state_dir(state)))
        except OSError:
            return []
        return [self.state_dir(state) / name for name in names
                if name.endswith(".json")]

    @staticmethod
    def _read_json(path: Path) -> Optional[Dict[str, Any]]:
        try:
            data = json.loads(path.read_bytes().decode("utf-8"))
        except (OSError, ValueError):
            return None
        return data if isinstance(data, dict) else None

    def _write_json(self, path: Path, payload: Dict[str, Any],
                    category: str = "queue") -> None:
        """Atomic write via a privately-named temp file in ``tmp/``.

        Routed through the fault-injection layer under ``category`` and
        retried (bounded, deterministic jitter) on transient errnos; a
        fault that survives the retries propagates as ``OSError``.
        """
        tmp = self.root / "tmp" / f"{uuid.uuid4().hex}.tmp"
        data = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        durable = category == "queue"
        try:
            with_retries(
                lambda: fs.write_bytes(tmp, data, category, durable=durable),
                op=f"queue-write:{path.name}")
            with_retries(lambda: fs.replace(tmp, path, category),
                         op=f"queue-publish:{path.name}")
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # submit
    # ------------------------------------------------------------------
    def submit(self, payload: Dict[str, Any], est_work: int = 0) -> bool:
        """Enqueue one job; returns False if it is already in flight.

        ``payload`` must carry the content-address under ``"key"``; the
        job id is derived from it, so resubmitting the same sweep while an
        earlier submission is still draining (pending/claimed) or after it
        poisoned the queue (dead) is a no-op per job.  A *done* marker,
        however, does not block: submitters only emit a job after probing
        the result cache, so reaching submit() with a done marker present
        means the cached result has since been evicted (``cache gc``) --
        the marker is stale and the job must run again.
        """
        self._ensure_layout()
        job_id = job_id_for(payload["key"], est_work)
        for state in ("pending", "claimed", "dead"):
            if (self.state_dir(state) / f"{job_id}.json").exists():
                return False
        done_marker = self.state_dir("done") / f"{job_id}.json"
        if done_marker.exists():
            try:
                os.unlink(done_marker)
            except OSError:
                pass
        body = dict(payload)
        body.setdefault("attempts", 0)
        body.setdefault("max_attempts", self.max_attempts)
        body.setdefault("submitted_at", time.time())
        body.setdefault("errors", [])
        self._write_json(self.state_dir("pending") / f"{job_id}.json", body)
        return True

    # ------------------------------------------------------------------
    # claim / lease / heartbeat
    # ------------------------------------------------------------------
    def claim(self, worker: str) -> Optional[ClaimedJob]:
        """Atomically take one pending job (longest first), or None.

        The rename *is* the lock: of N concurrent claimers of one file,
        the filesystem lets exactly one rename succeed.  The lease is
        written immediately after, so there is a tiny window in which a
        claimed job has no lease yet; :meth:`reclaim_expired` therefore
        treats lease-less claims as expired only once they are older than
        the TTL (by claimed-file mtime), never instantly.
        """
        self._ensure_layout()
        for path in self._list("pending"):
            job_id = path.stem
            dest = self.state_dir("claimed") / path.name
            try:
                fs.rename(path, dest, "queue")
            except OSError as exc:
                if exc.errno in (errno.ENOENT, errno.EPERM, errno.EACCES):
                    continue           # another claimer won this file
                raise
            # The worst-case crash window: the claim rename has landed but
            # no lease exists yet, so only the claimed file's mtime
            # protects the job until reclamation kicks in after a TTL.
            crashpoint("after-claim")
            payload = self._read_json(dest)
            if payload is None:
                # Corrupt job file: dead-letter it rather than crash-loop.
                # The key is recovered from the filename so a blocking
                # submitter's dead-letter check still matches it.
                self._write_json(self.state_dir("dead") / path.name,
                                 {"key": key_of_job_id(job_id),
                                  "attempts": 0,
                                  "errors": ["unreadable job file"]})
                try:
                    os.unlink(dest)
                except OSError:
                    pass
                continue
            claimed = ClaimedJob(job_id=job_id, payload=payload,
                                 worker=worker, path=dest,
                                 lease_path=self._lease_path(job_id))
            try:
                self.heartbeat(claimed, force=True)
            except OSError:
                # Transient FS error writing the lease: the claim itself
                # already succeeded (we own claimed/<id>.json), and until a
                # heartbeat lands the claimed file's mtime protects the job
                # from reclamation for a full TTL.
                pass
            return claimed
        return None

    def heartbeat(self, job: ClaimedJob, force: bool = False) -> None:
        """Refresh the lease; called periodically while the job runs.

        Unless ``force`` (the initial write right after the claim rename,
        when ownership is unambiguous), the current lease is read first
        and a lease naming a *different* worker raises
        :class:`LeaseLostError` instead of being overwritten: a worker
        that slept through its TTL must never steal the lease back from
        whoever legitimately reclaimed and re-claimed the job.
        """
        if not force:
            lease = self._read_json(job.lease_path)
            if lease is not None and str(lease.get("worker", "")) != job.worker:
                raise LeaseLostError(
                    f"lease for {job.job_id} now held by "
                    f"{lease.get('worker')!r} (was {job.worker!r})")
            if lease is None and not job.path.exists():
                # Reclaimed and not yet re-claimed: the claimed file moved
                # away and the lease is gone.  Writing a fresh lease here
                # would fence *the next* legitimate claimer out.
                raise LeaseLostError(
                    f"job {job.job_id} no longer claimed by anyone")
        self._write_json(job.lease_path, {
            "worker": job.worker,
            "job_id": job.job_id,
            "heartbeat_at": time.time(),
            "ttl": self.lease_ttl,
        }, category="lease")

    def owns(self, job: ClaimedJob) -> bool:
        """Re-verify ownership without touching anything (fencing probe)."""
        lease = self._read_json(job.lease_path)
        if lease is not None:
            return str(lease.get("worker", "")) == job.worker
        # No lease: owner iff the claimed file is still in place (the
        # claim->lease window, or a lost lease write).
        return job.path.exists()

    def _drop_lease(self, job_id: str) -> None:
        try:
            fs.unlink(self._lease_path(job_id), "lease", missing_ok=True)
        except OSError:
            pass

    def _drop_lease_if_owned(self, job: ClaimedJob) -> None:
        """Drop the lease only if it is still ours: after losing a rename
        race the lease file may already belong to the new claimant, and
        unlinking it would expose *their* claim to instant reclamation."""
        lease = self._read_json(job.lease_path)
        if lease is None or str(lease.get("worker", "")) == job.worker:
            self._drop_lease(job.job_id)

    # ------------------------------------------------------------------
    # completion / failure / reclamation
    # ------------------------------------------------------------------
    def complete(self, job: ClaimedJob) -> bool:
        """Transition ``claimed -> done``.

        Returns False when the job was reclaimed while this worker ran it.
        That is not an error: the result was already published to the
        content-addressed cache, and whichever process re-ran the job
        produced identical bits under the same key.

        Fenced: the lease is re-read first, and a lease held by another
        worker means this worker lost the job -- it must not rename the
        claimed file (which, after a reclaim *and* re-claim, is the new
        owner's file under the same name) and must not touch the lease.
        """
        lease = self._read_json(job.lease_path)
        if lease is not None and str(lease.get("worker", "")) != job.worker:
            return False
        done = self.state_dir("done") / job.path.name
        try:
            fs.rename(job.path, done, "queue")
        except OSError:
            self._drop_lease_if_owned(job)
            return False
        self._drop_lease(job.job_id)
        return True

    def fail(self, job: ClaimedJob, error: str) -> str:
        """Record a failed attempt; returns the new state.

        Below the attempt bound the job is re-queued (``"pending"``);
        at the bound it is dead-lettered (``"dead"``) with its error
        history, where ``repro status`` and the blocking submitter can see
        it.  If the job was reclaimed while running, the owner lost the
        file and the failure is moot (``"lost"``) -- fenced exactly like
        :meth:`complete`.
        """
        lease = self._read_json(job.lease_path)
        if lease is not None and str(lease.get("worker", "")) != job.worker:
            return "lost"
        return self._retire(job.path, job.payload, error,
                            job_id=job.job_id)

    def _retire(self, owned_path: Path, payload: Dict[str, Any],
                error: str, job_id: str) -> str:
        """Move an exclusively-owned job file to pending or dead."""
        body = dict(payload)
        body["attempts"] = _as_int(body.get("attempts", 0), 0) + 1
        errors = list(body.get("errors", []))
        errors.append(error[:500])
        body["errors"] = errors[-10:]
        state = ("dead" if body["attempts"] >=
                 _as_int(body.get("max_attempts", self.max_attempts),
                         self.max_attempts)
                 else "pending")
        tmp = self.root / "tmp" / f"{uuid.uuid4().hex}.retire.tmp"
        try:
            fs.rename(owned_path, tmp, "queue")
        except OSError:
            self._drop_lease(job_id)
            return "lost"
        try:
            self._write_json(self.state_dir(state) / owned_path.name, body)
        except OSError:
            # The requeue write failed even after retries.  Undo the
            # rename (raw os.rename: the recovery path must not route
            # back through fault injection) so the job survives as
            # claimed -- a later reclaim pass will retry the retire --
            # rather than vanishing into tmp/.
            try:
                os.rename(tmp, owned_path)
            except OSError:
                pass
            raise
        try:
            os.unlink(tmp)
        except OSError:
            pass
        self._drop_lease(job_id)
        return state

    def reclaim_expired(self, now: Optional[float] = None) -> int:
        """Steal back claimed jobs whose lease expired; returns the count.

        Any process may call this (workers do on every idle poll, the
        blocking submitter between cache polls).  The exclusive step is
        again a rename -- ``claimed/X -> tmp/<private>`` -- so N concurrent
        reclaimers of one expired job cannot double-requeue it.  Each
        reclaim counts as a failed attempt, which is what bounds a
        worker-killing poison job.
        """
        self._ensure_layout()
        now = time.time() if now is None else now
        reclaimed = 0
        for path in self._list("claimed"):
            job_id = path.stem
            lease = self._read_json(self._lease_path(job_id))
            if lease is not None:
                age = now - _as_float(lease.get("heartbeat_at", 0.0), 0.0)
                if age <= _as_float(lease.get("ttl", self.lease_ttl),
                                    self.lease_ttl):
                    continue
                holder = str(lease.get("worker", "unknown"))
            else:
                # No lease: either the claimer died in the claim->lease
                # window or the lease file was lost.  Use the claimed
                # file's age so a freshly claimed job is never stolen.
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    continue
                if age <= self.lease_ttl:
                    continue
                holder = "unknown"
            payload = self._read_json(path)
            if payload is None:
                continue
            state = self._retire(
                path, payload,
                f"lease expired after {age:.1f}s (held by {holder})",
                job_id=job_id)
            if state in ("pending", "dead"):
                reclaimed += 1
        return reclaimed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def iter_jobs(self, state: str) -> Iterator[Dict[str, Any]]:
        for path in self._list(state):
            payload = self._read_json(path)
            if payload is not None:
                payload = dict(payload)
                payload["job_id"] = path.stem
                yield payload

    def dead_jobs(self) -> List[DeadJob]:
        return [DeadJob(job_id=job["job_id"], key=job.get("key", ""),
                        attempts=_as_int(job.get("attempts", 0), 0),
                        errors=list(job.get("errors", [])))
                for job in self.iter_jobs("dead")]

    def find_dead(self, job_id: str) -> Optional[DeadJob]:
        """One dead letter by id -- a cheap existence probe plus one read,
        so waiters can watch their own jobs without re-parsing the whole
        ``dead/`` directory (which may carry history from other sweeps)."""
        path = self.state_dir("dead") / f"{job_id}.json"
        payload = self._read_json(path)
        if payload is None:
            return None
        return DeadJob(job_id=job_id,
                       key=payload.get("key", "") or key_of_job_id(job_id),
                       attempts=_as_int(payload.get("attempts", 0), 0),
                       errors=list(payload.get("errors", [])))

    def prune_terminal(self, max_age_seconds: float = 0.0,
                       now: Optional[float] = None) -> int:
        """Remove terminal records (done/dead markers, worker stats, stale
        queue temp files) older than ``max_age_seconds``.

        The safe long-lived-queue cleanup: live ``pending``/``claimed``
        work is never touched, so any submitter or operator may run it at
        any time (``repro status --prune``).  Returns how many files were
        removed.
        """
        now = time.time() if now is None else now
        removed = 0
        dirs = [self.state_dir("done"), self.state_dir("dead"),
                self.root / "workers", self.root / "tmp"]
        for directory in dirs:
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                path = directory / name
                try:
                    if now - path.stat().st_mtime < max_age_seconds:
                        continue
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        return removed

    def record_worker(self, worker: str, stats: Dict[str, Any]) -> None:
        """Publish one worker's throughput counters for ``repro status``."""
        self._ensure_layout()
        body = dict(stats)
        body["worker"] = worker
        body["updated_at"] = time.time()
        self._write_json(self.root / "workers" / f"{worker}.json", body,
                         category="workers")

    def record_worker_metrics(self, worker: str,
                              snapshot: Dict[str, Any]) -> None:
        """Append one metrics snapshot next to the worker's stats file.

        ``workers/<id>.metrics.jsonl`` feeds the ``repro status --watch``
        sliding-window rates.  The owning worker is the only writer of
        its own file, so a plain append is safe; readers tolerate a torn
        tail line.  Cleaned up with the stats files by
        :meth:`prune_terminal` and :meth:`purge`.
        """
        self._ensure_layout()
        body = dict(snapshot)
        body["worker"] = worker
        body.setdefault("t", time.time())
        path = self.root / "workers" / f"{worker}.metrics.jsonl"
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(body, sort_keys=True) + "\n")

    def read_worker_metrics(self, worker: str,
                            last: int = 32) -> List[Dict[str, Any]]:
        """The last ``last`` metric snapshots a worker appended (oldest
        first; empty when the worker never snapshotted)."""
        path = self.root / "workers" / f"{worker}.metrics.jsonl"
        try:
            with open(path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except OSError:
            return []
        snapshots: List[Dict[str, Any]] = []
        for line in lines[-max(0, last):]:
            try:
                body = json.loads(line)
            except ValueError:
                continue                    # torn tail line mid-append
            if isinstance(body, dict):
                snapshots.append(body)
        return snapshots

    def status(self, now: Optional[float] = None) -> QueueStatus:
        now = time.time() if now is None else now
        counts = {state: len(self._list(state)) for state in _STATES}
        leases: List[Tuple[str, float, str]] = []
        for path in self._list("claimed"):
            lease = self._read_json(self._lease_path(path.stem))
            if lease is None:
                try:
                    age = now - path.stat().st_mtime
                except OSError:
                    age = 0.0
                leases.append(("(no lease)", age, path.stem))
            else:
                leases.append((str(lease.get("worker", "unknown")),
                               now - _as_float(lease.get("heartbeat_at",
                                                         now), now),
                               path.stem))
        workers: Dict[str, Dict[str, Any]] = {}
        try:
            names = sorted(os.listdir(self.root / "workers"))
        except OSError:
            names = []
        for name in names:
            if not name.endswith(".json"):
                continue
            stats = self._read_json(self.root / "workers" / name)
            if stats is not None:
                workers[stats.get("worker", name[:-5])] = stats
        return QueueStatus(root=str(self.root), pending=counts["pending"],
                           claimed=counts["claimed"], done=counts["done"],
                           dead=counts["dead"], leases=leases,
                           workers=workers)

    def purge(self, states: Tuple[str, ...] = _STATES) -> int:
        """Delete job files in the given states (``repro status --purge``).

        Also clears leases and worker stats when every state is purged.
        Returns how many job files were removed.
        """
        removed = 0
        for state in states:
            for path in self._list(state):
                try:
                    os.unlink(path)
                    removed += 1
                except OSError:
                    pass
        if set(states) >= set(_STATES):
            for extra in ("leases", "workers", "tmp"):
                try:
                    names = os.listdir(self.root / extra)
                except OSError:
                    continue
                for name in names:
                    try:
                        os.unlink(self.root / extra / name)
                    except OSError:
                        pass
        return removed
