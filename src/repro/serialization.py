"""Canonical serialization and fingerprinting of configuration dataclasses.

Every configuration object in the simulator is a frozen dataclass built from
ints, floats, bools, strings, enums and nested configuration dataclasses.
This module provides one canonical mapping of such objects to plain dicts
(:func:`to_dict`), the inverse (:func:`from_dict`), and a stable
content-addressed hash (:func:`fingerprint`) suitable for cache keys.

The fingerprint is computed over the canonical JSON rendering of the full
field tree, so *every* field of *every* nested config participates --
unlike the hand-maintained ``_config_key`` tuple it replaces, which silently
ignored the memory-system and branch-predictor configurations and let
configs differing only in those fields collide in the result cache.

:class:`SerializableConfig` is a mixin that exposes the three operations as
methods; the concrete config classes
(:class:`~repro.core.config.MachineConfig`,
:class:`~repro.integration.config.IntegrationConfig`,
:class:`~repro.memsys.hierarchy.MemSysConfig`,
:class:`~repro.frontend.branch_predictor.BranchPredictorConfig`, ...)
inherit it.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import typing
from typing import Any, Dict, Type, TypeVar

T = TypeVar("T")


def to_dict(config: Any) -> Any:
    """Recursively convert a configuration dataclass to plain JSON types.

    Enums serialize to their ``value``; nested dataclasses to nested dicts.
    Fields named in the class's ``_ELIDE_DEFAULT`` set are *omitted* while
    they hold their default value: such fields extend a configuration class
    without perturbing the canonical JSON -- and therefore the fingerprint
    and every cache key -- of configurations that do not use them (the
    ``variant`` field relies on this so pre-variant cache entries keep
    resolving for the baseline machine).
    """
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        elide = getattr(type(config), "_ELIDE_DEFAULT", ())
        out = {}
        for f in dataclasses.fields(config):
            value = getattr(config, f.name)
            if (f.name in elide and f.default is not dataclasses.MISSING
                    and value == f.default):
                continue
            out[f.name] = to_dict(value)
        return out
    if isinstance(config, enum.Enum):
        return config.value
    if isinstance(config, (list, tuple)):
        return [to_dict(item) for item in config]
    if config is None or isinstance(config, (bool, int, float, str)):
        return config
    raise TypeError(
        f"cannot serialize {type(config).__name__} ({config!r}) -- "
        f"configuration fields must be JSON scalars, enums or dataclasses")


def from_dict(cls: Type[T], data: Dict[str, Any]) -> T:
    """Rebuild a configuration dataclass from :func:`to_dict` output.

    Unknown keys are rejected (they indicate a version mismatch); missing
    keys fall back to the dataclass defaults.
    """
    if not dataclasses.is_dataclass(cls):
        raise TypeError(f"{cls!r} is not a dataclass")
    hints = typing.get_type_hints(cls)
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - field_names
    if unknown:
        raise ValueError(
            f"unknown {cls.__name__} fields: {sorted(unknown)}")
    kwargs = {name: _coerce(hints[name], value)
              for name, value in data.items()}
    return cls(**kwargs)


def _coerce(annotation: Any, value: Any) -> Any:
    """Convert one JSON value back to its annotated field type."""
    origin = typing.get_origin(annotation)
    if origin is typing.Union:
        args = [a for a in typing.get_args(annotation) if a is not type(None)]
        if value is None:
            return None
        annotation = args[0]
    if isinstance(annotation, type):
        if dataclasses.is_dataclass(annotation):
            return from_dict(annotation, value)
        if issubclass(annotation, enum.Enum):
            return annotation(value)
    if origin in (list, tuple):
        item_types = typing.get_args(annotation)
        item = item_types[0] if item_types else Any
        converted = [_coerce(item, v) for v in value]
        return tuple(converted) if origin is tuple else converted
    return value


def canonical_json(config: Any) -> str:
    """Deterministic JSON rendering used for fingerprinting."""
    payload = {"__config__": type(config).__name__, "fields": to_dict(config)}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def fingerprint(config: Any) -> str:
    """Stable 16-hex-digit content hash of a configuration object."""
    digest = hashlib.sha256(canonical_json(config).encode("utf-8"))
    return digest.hexdigest()[:16]


class SerializableConfig:
    """Mixin giving a config dataclass canonical serde + fingerprinting."""

    def to_dict(self) -> Dict[str, Any]:
        return to_dict(self)

    @classmethod
    def from_dict(cls: Type[T], data: Dict[str, Any]) -> T:
        return from_dict(cls, data)

    def fingerprint(self) -> str:
        return fingerprint(self)
