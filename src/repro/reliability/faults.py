"""Deterministic, seeded fault injection for the cache/queue/worker stack.

Every filesystem operation the distributed stack performs (rename, write,
read, unlink, fsync -- see :mod:`repro.reliability.fs`) and every named
protocol step (see :data:`CRASH_POINTS`) consults the process-wide
:class:`FaultPlan` before executing.  A plan is a list of :class:`FaultRule`
entries parsed from a compact spec string, normally supplied through the
``REPRO_FAULTS`` environment variable so worker subprocesses inherit it::

    REPRO_FAULTS="rename:queue/claimed:nth=3:crash;write:@cache:nth=1:torn"

Grammar (rules separated by ``;``, fields by ``:``)::

    rule     := op ":" match ":" selector ":" action
    op       := rename | write | read | unlink | fsync | point | any
    match    := "*"            (any operation of this kind)
              | "@" category   (the operation's file class: cache, queue,
                                lease, workers; crash points use "point")
              | substring      (matched against the operation's path; for
                                renames, against "SRC::DST")
    selector := "always" | "nth=N" | "after=N" | "every=N"
    action   := crash | eio | enospc | torn | "delay=SECONDS"

Selectors count *matching* calls per rule, in-process, so a schedule is
fully deterministic: the same program run with the same spec fails at the
same operation every time (the seed is the spec itself -- there is no
randomness anywhere in the layer).  ``torn`` only applies to writes (the
data is silently truncated to half, modelling a crash between ``write``
and ``fsync``); ``crash`` raises :class:`SimulatedCrash`, which subclasses
``BaseException`` precisely so the stack's ``except Exception`` failure
handlers cannot swallow it -- a simulated crash takes the worker down the
way ``kill -9`` would, leaving the protocol state (claimed file, stale
lease, orphaned tmp) for recovery to deal with.

The layer is zero-overhead when disabled: with ``REPRO_FAULTS`` unset the
active plan is ``None`` and every hook is a single global-load-and-compare.
"""

from __future__ import annotations

import errno
import os
import time
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

ENV_FAULTS = "REPRO_FAULTS"

#: Named protocol steps at which :func:`crashpoint` is called by the real
#: code.  The chaos test matrix iterates this registry, so a new crash
#: point is covered the moment it is added here and called in the code.
CRASH_POINTS: Tuple[str, ...] = (
    "after-claim",
    "before-publish",
    "after-publish-before-done",
    "mid-heartbeat",
)

#: The wrapped filesystem operations (:mod:`repro.reliability.fs`).
FS_OPS: Tuple[str, ...] = ("rename", "write", "read", "unlink", "fsync")

_OPS = FS_OPS + ("point", "any")
_SELECTORS = ("always", "nth", "after", "every")
_ACTIONS = ("crash", "eio", "enospc", "torn", "delay")


class SimulatedCrash(BaseException):
    """An injected process crash (``action=crash``).

    Subclasses ``BaseException`` so the worker stack's ``except Exception``
    failure handling cannot turn a simulated crash into a recorded failed
    attempt: the process must die mid-protocol, exactly like ``kill -9``,
    and recovery must happen through lease expiry and reclamation.
    """


class FaultSpecError(ValueError):
    """A malformed fault spec string (see the module grammar)."""


@dataclass
class FaultRule:
    """One parsed rule plus its per-process match counter."""

    op: str
    match: str
    selector: str
    sel_n: int
    action: str
    delay: float = 0.0
    #: matching operations seen so far (the deterministic "schedule clock")
    hits: int = 0
    #: how many times this rule actually fired
    fired: int = 0

    def matches(self, op: str, path: str, category: str) -> bool:
        if self.op != "any" and self.op != op:
            return False
        if self.match in ("", "*"):
            return True
        if self.match.startswith("@"):
            return category == self.match[1:]
        return self.match in path

    def select(self) -> bool:
        """Count one matching call; return whether the rule fires on it."""
        self.hits += 1
        if self.selector == "always":
            fire = True
        elif self.selector == "nth":
            fire = self.hits == self.sel_n
        elif self.selector == "after":
            fire = self.hits > self.sel_n
        else:  # every
            fire = self.hits % self.sel_n == 0
        if fire:
            self.fired += 1
        return fire

    def describe(self) -> str:
        sel = (self.selector if self.selector == "always"
               else f"{self.selector}={self.sel_n}")
        act = f"delay={self.delay:g}" if self.action == "delay" else self.action
        return f"{self.op}:{self.match or '*'}:{sel}:{act}"


def _parse_rule(text: str) -> FaultRule:
    parts = text.split(":")
    if len(parts) != 4:
        raise FaultSpecError(
            f"fault rule {text!r} must have 4 ':'-separated fields "
            f"(op:match:selector:action)")
    op, match, selector, action = (p.strip() for p in parts)
    if op not in _OPS:
        raise FaultSpecError(
            f"unknown fault op {op!r} (one of {', '.join(_OPS)})")
    sel_kind, _, sel_arg = selector.partition("=")
    if sel_kind not in _SELECTORS:
        raise FaultSpecError(
            f"unknown selector {selector!r} (always, nth=N, after=N, "
            f"every=N)")
    sel_n = 1
    if sel_kind != "always":
        try:
            sel_n = int(sel_arg)
        except ValueError:
            raise FaultSpecError(
                f"selector {selector!r} needs an integer argument") from None
        if sel_n < 1:
            raise FaultSpecError(f"selector {selector!r} must be >= 1")
    act_kind, _, act_arg = action.partition("=")
    if act_kind not in _ACTIONS:
        raise FaultSpecError(
            f"unknown action {action!r} (one of {', '.join(_ACTIONS)})")
    delay = 0.0
    if act_kind == "delay":
        try:
            delay = float(act_arg)
        except ValueError:
            raise FaultSpecError(
                f"action {action!r} needs a seconds argument") from None
        if delay < 0:
            raise FaultSpecError(f"action {action!r} must be >= 0")
    if act_kind == "torn" and op not in ("write", "any"):
        raise FaultSpecError(
            f"action 'torn' only applies to write operations (rule {text!r})")
    return FaultRule(op=op, match=match, selector=sel_kind, sel_n=sel_n,
                     action=act_kind, delay=delay)


@dataclass
class FaultPlan:
    """A parsed fault schedule; first matching-and-firing rule wins."""

    rules: List[FaultRule] = field(default_factory=list)

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        rules = [_parse_rule(chunk) for chunk in spec.split(";")
                 if chunk.strip()]
        if not rules:
            raise FaultSpecError("empty fault spec")
        return cls(rules=rules)

    def check(self, op: str, path: str, category: str) -> Optional[FaultRule]:
        """Record one operation; return the rule that fires on it (if any).

        Every *matching* rule's counter advances (so two rules can watch
        the same operation independently), but only the first rule that
        fires is returned.
        """
        fired: Optional[FaultRule] = None
        for rule in self.rules:
            if rule.matches(op, path, category) and rule.select():
                if fired is None:
                    fired = rule
        return fired

    def total_fired(self) -> int:
        return sum(rule.fired for rule in self.rules)


def fire(rule: FaultRule, op: str, path: str) -> None:
    """Apply a fired rule's action (``torn`` is handled by the write
    wrapper, which truncates the data instead of raising)."""
    where = f"{op} {path} [{rule.describe()}]"
    if rule.action == "crash":
        raise SimulatedCrash(f"injected crash: {where}")
    if rule.action == "eio":
        raise OSError(errno.EIO, f"injected EIO: {where}", path)
    if rule.action == "enospc":
        raise OSError(errno.ENOSPC, f"injected ENOSPC: {where}", path)
    if rule.action == "delay":
        time.sleep(rule.delay)


# ----------------------------------------------------------------------
# the process-wide active plan
# ----------------------------------------------------------------------
_active: Optional[FaultPlan] = None
_resolved = False


def faults_spec() -> str:
    """The raw ``REPRO_FAULTS`` spec from the environment ('' = disabled)."""
    return os.environ.get(ENV_FAULTS, "").strip()


def plan_from_env() -> Optional[FaultPlan]:
    """Parse ``REPRO_FAULTS`` (None when unset/empty).

    A malformed spec aborts with the project's one-line ``EnvVarError``
    style rather than a parse traceback deep inside a worker.
    """
    spec = faults_spec()
    if not spec:
        return None
    try:
        return FaultPlan.parse(spec)
    except FaultSpecError as exc:
        from repro.experiments.runner import EnvVarError

        raise EnvVarError(
            ENV_FAULTS, spec,
            f"a fault spec like 'rename:queue/claimed:nth=3:crash' "
            f"({exc})") from None


def active_plan() -> Optional[FaultPlan]:
    """The process-wide plan, resolved from the environment exactly once."""
    global _active, _resolved
    if not _resolved:
        _active = plan_from_env()
        _resolved = True
    return _active


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or, with None, disable) the active plan -- the test hook."""
    global _active, _resolved
    _active = plan
    _resolved = True


def reset_plan() -> None:
    """Forget the active plan; the next hook re-reads ``REPRO_FAULTS``."""
    global _active, _resolved
    _active = None
    _resolved = False


def crashpoint(name: str) -> None:
    """Declare a named protocol step; fires any matching ``point`` rule.

    Call sites live in the worker/queue protocol code (claim, publish,
    done-rename, heartbeat).  With no plan installed this is a single
    global check -- the zero-overhead-when-disabled contract.
    """
    plan = active_plan()
    if plan is None:
        return
    if name not in CRASH_POINTS:
        raise AssertionError(
            f"unregistered crash point {name!r}; add it to "
            f"repro.reliability.faults.CRASH_POINTS")
    rule = plan.check("point", name, "point")
    if rule is not None:
        fire(rule, "crash-point", name)
