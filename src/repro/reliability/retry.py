"""Bounded exponential retry with deterministic jitter for transient IO.

The queue and cache treat a small set of errnos as *transient* -- worth a
bounded number of retries with exponential backoff -- and everything else
(notably ENOENT, which is a protocol signal meaning "someone else won the
rename race") as immediately fatal to the operation.

The jitter is deterministic: instead of ``random()``, the backoff for
attempt *k* of operation *op* is scaled by a factor in [0.5, 1.0] derived
from ``sha256(f"{op}:{k}")``.  Two workers retrying *different* operations
desynchronise (the point of jitter) while the same program run twice
retries on the identical schedule (the point of this repo).
"""

from __future__ import annotations

import errno
import hashlib
import time
from typing import Callable, TypeVar

ENV_RETRY_MAX = "REPRO_RETRY_MAX"
ENV_RETRY_BASE = "REPRO_RETRY_BASE"

_DEFAULT_RETRY_MAX = 3
_DEFAULT_RETRY_BASE = 0.05

#: Errnos retried as transient.  ENOENT is deliberately absent: in the
#: queue protocol a vanished file means another worker won the rename
#: race, and retrying would just re-lose it.
TRANSIENT_ERRNOS = frozenset({
    errno.EIO,
    errno.ENOSPC,
    errno.EAGAIN,
    errno.EINTR,
    errno.EBUSY,
    errno.ESTALE,
})

T = TypeVar("T")


def default_retry_max() -> int:
    """Retries after the first attempt (``REPRO_RETRY_MAX``, default 3)."""
    from repro.experiments.runner import EnvVarError, _env_int

    value = _env_int(ENV_RETRY_MAX, str(_DEFAULT_RETRY_MAX),
                     "a non-negative integer (0 = no retries)")
    if value < 0:
        raise EnvVarError(ENV_RETRY_MAX, str(value),
                          "a non-negative integer (0 = no retries)")
    return value


def default_retry_base() -> float:
    """Base backoff in seconds (``REPRO_RETRY_BASE``, default 0.05)."""
    from repro.experiments.runner import env_float

    return env_float(ENV_RETRY_BASE, str(_DEFAULT_RETRY_BASE))


def backoff_delay(op: str, attempt: int, base: float) -> float:
    """Deterministic-jitter exponential backoff for ``attempt`` (0-based)."""
    digest = hashlib.sha256(f"{op}:{attempt}".encode()).digest()
    jitter = 0.5 + 0.5 * digest[0] / 255.0
    return base * (2 ** attempt) * jitter


def is_transient(exc: OSError) -> bool:
    return exc.errno in TRANSIENT_ERRNOS


def with_retries(fn: Callable[[], T], *, op: str,
                 retry_max: int | None = None,
                 retry_base: float | None = None,
                 sleep: Callable[[float], None] = time.sleep) -> T:
    """Run ``fn``, retrying transient OSErrors with bounded backoff.

    Non-transient OSErrors (and everything else, including
    ``SimulatedCrash``) propagate immediately.  After ``retry_max``
    retries the last transient error propagates.  Each retry increments
    ``RunTelemetry.io_retries``.
    """
    if retry_max is None:
        retry_max = default_retry_max()
    if retry_base is None:
        retry_base = default_retry_base()
    attempt = 0
    while True:
        try:
            return fn()
        except OSError as exc:
            if not is_transient(exc) or attempt >= retry_max:
                raise
            from repro.experiments.runner import telemetry

            telemetry.io_retries += 1
            sleep(backoff_delay(op, attempt, retry_base))
            attempt += 1
