"""Filesystem wrappers that route through the active fault plan.

The cache/queue/worker stack performs all of its filesystem mutations
through these functions instead of calling ``os``/``pathlib`` directly.
Each wrapper consults :func:`repro.reliability.faults.active_plan` first;
with no plan installed (the production default) that is one global load
and a ``None`` check, after which the real operation runs untouched --
the zero-overhead-when-disabled contract.

Every call site passes a ``category`` naming the file class the path
belongs to (``cache``, ``queue``, ``lease``, ``workers``) so fault specs
can target a class (``write:@cache:nth=1:torn``) without depending on
where a test happens to root its tmp directories.

The ``torn`` action is implemented here rather than in ``fire()``: a torn
write *succeeds* from the caller's point of view but persists only the
first half of the payload, modelling a crash between ``write(2)`` and
``fsync(2)``.  The corruption is only observable later, at read time --
which is exactly what the sha256 integrity trailer on cache entries is
for.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

from repro.reliability.faults import FaultRule, active_plan, fire

PathLike = Union[str, Path]


def _check(op: str, path: str, category: str) -> Optional[FaultRule]:
    plan = active_plan()
    if plan is None:
        return None
    return plan.check(op, path, category)


def rename(src: PathLike, dst: PathLike, category: str) -> None:
    """``os.rename`` with fault routing (spec matches ``SRC::DST``)."""
    rule = _check("rename", f"{src}::{dst}", category)
    if rule is not None:
        fire(rule, "rename", f"{src} -> {dst}")
    os.rename(src, dst)


def replace(src: PathLike, dst: PathLike, category: str) -> None:
    """``os.replace`` with fault routing (spec matches ``SRC::DST``)."""
    rule = _check("rename", f"{src}::{dst}", category)
    if rule is not None:
        fire(rule, "replace", f"{src} -> {dst}")
    os.replace(src, dst)


def write_bytes(path: PathLike, data: bytes, category: str,
                durable: bool = False) -> None:
    """Write ``data`` to ``path`` (creating it), with fault routing.

    A fired ``torn`` rule truncates the payload to its first half and
    then *succeeds silently*.  ``durable=True`` fsyncs the file after
    writing, which routes through the ``fsync`` op as its own faultable
    step.
    """
    spath = str(path)
    rule = _check("write", spath, category)
    if rule is not None:
        if rule.action == "torn":
            data = data[: len(data) // 2]
        else:
            fire(rule, "write", spath)
    fd = os.open(spath, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, data)
        if durable:
            fsync_fd(fd, spath, category)
    finally:
        os.close(fd)


def read_bytes(path: PathLike, category: str) -> bytes:
    """``Path.read_bytes`` with fault routing."""
    spath = str(path)
    rule = _check("read", spath, category)
    if rule is not None:
        fire(rule, "read", spath)
    with open(spath, "rb") as fh:
        return fh.read()


def unlink(path: PathLike, category: str,
           missing_ok: bool = False) -> None:
    """``os.unlink`` with fault routing."""
    spath = str(path)
    rule = _check("unlink", spath, category)
    if rule is not None:
        fire(rule, "unlink", spath)
    try:
        os.unlink(spath)
    except FileNotFoundError:
        if not missing_ok:
            raise


def fsync_fd(fd: int, path: str, category: str) -> None:
    """``os.fsync`` on an open descriptor, with fault routing."""
    rule = _check("fsync", path, category)
    if rule is not None:
        fire(rule, "fsync", path)
    os.fsync(fd)
