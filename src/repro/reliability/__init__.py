"""Deterministic fault injection and hardened failure semantics.

Three layers, bottom up:

* :mod:`repro.reliability.faults` -- the seeded :class:`FaultPlan`
  parsed from ``REPRO_FAULTS``, :class:`SimulatedCrash`, and the named
  :data:`CRASH_POINTS` the worker protocol declares.
* :mod:`repro.reliability.fs` -- filesystem wrappers (rename, write,
  read, unlink, fsync) the cache/queue/worker stack routes through,
  zero-overhead when no plan is installed.
* :mod:`repro.reliability.retry` -- bounded exponential retry with
  deterministic jitter for transient IO, and
  :mod:`repro.reliability.supervisor` -- the ``repro fleet``
  restart-on-crash supervisor.
"""

from repro.reliability.faults import (
    CRASH_POINTS,
    ENV_FAULTS,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    SimulatedCrash,
    active_plan,
    crashpoint,
    install_plan,
    plan_from_env,
    reset_plan,
)
from repro.reliability.retry import (
    ENV_RETRY_BASE,
    ENV_RETRY_MAX,
    TRANSIENT_ERRNOS,
    backoff_delay,
    default_retry_base,
    default_retry_max,
    with_retries,
)
from repro.reliability.supervisor import (
    FleetSummary,
    FleetSupervisor,
    WorkerHandle,
)

__all__ = [
    "CRASH_POINTS",
    "ENV_FAULTS",
    "ENV_RETRY_BASE",
    "ENV_RETRY_MAX",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "FleetSummary",
    "FleetSupervisor",
    "SimulatedCrash",
    "TRANSIENT_ERRNOS",
    "WorkerHandle",
    "active_plan",
    "backoff_delay",
    "crashpoint",
    "default_retry_base",
    "default_retry_max",
    "install_plan",
    "plan_from_env",
    "reset_plan",
    "with_retries",
]
