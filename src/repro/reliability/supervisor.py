"""The ``repro fleet`` supervisor: N workers, restart-on-crash, drain.

The supervisor owns a fleet of worker child processes and implements the
restart policy the queue protocol assumes but a bare ``repro worker &``
loop does not provide:

* a child that exits **0** has drained the queue (idle timeout) -- it is
  done and is not restarted;
* a child that dies any other way (crash, signal, ``SimulatedCrash``)
  is restarted after an exponential backoff, up to ``max_restarts``
  times per slot; a slot that exhausts its restarts is marked failed;
* SIGTERM to the supervisor forwards a graceful stop to every child and
  waits ``grace`` seconds before escalating to SIGKILL.

Restarted children are spawned with ``REPRO_FAULTS`` stripped from their
environment: an injected one-shot crash schedule should take a worker
down *once* and then let recovery proceed, not re-fire on every restart
forever.  (Callers that really want persistent faults can pass a custom
``spawn``.)

The child-process interface is injectable (``spawn(index, clean)`` must
return an object with ``poll() -> Optional[int]``, ``terminate()`` and
``kill()``) so the restart policy is unit-testable with fake handles;
production use passes a ``subprocess.Popen`` factory (see
``repro.__main__``).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol


class WorkerHandle(Protocol):
    """What the supervisor needs from a child process."""

    def poll(self) -> Optional[int]: ...

    def terminate(self) -> None: ...

    def kill(self) -> None: ...


SpawnFn = Callable[[int, bool], WorkerHandle]
LogFn = Callable[[str], None]


@dataclass
class _Slot:
    index: int
    handle: Optional[WorkerHandle] = None
    restarts: int = 0
    #: monotonic time before which the slot must not respawn
    not_before: float = 0.0
    drained: bool = False
    failed: bool = False


@dataclass
class FleetSummary:
    """Terminal state of a supervised fleet."""

    drained: int = 0
    failed: int = 0
    restarts: int = 0
    stopped: bool = False

    @property
    def ok(self) -> bool:
        return self.failed == 0

    def describe(self) -> str:
        bits = [f"{self.drained} drained", f"{self.restarts} restarts"]
        if self.failed:
            bits.append(f"{self.failed} failed")
        if self.stopped:
            bits.append("stopped")
        return ", ".join(bits)


@dataclass
class FleetSupervisor:
    """Run ``count`` workers until all drain, fail, or a stop arrives."""

    count: int
    spawn: SpawnFn
    max_restarts: int = 5
    backoff_base: float = 0.5
    backoff_cap: float = 10.0
    poll_interval: float = 0.2
    grace: float = 5.0
    log: Optional[LogFn] = None
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic
    stop_event: threading.Event = field(default_factory=threading.Event)

    def _say(self, msg: str) -> None:
        if self.log is not None:
            self.log(msg)

    def stop(self) -> None:
        """Request a graceful drain (safe to call from a signal handler)."""
        self.stop_event.set()

    def run(self) -> FleetSummary:
        slots = [_Slot(index=i) for i in range(self.count)]
        summary = FleetSummary()
        for slot in slots:
            slot.handle = self.spawn(slot.index, False)
        try:
            while True:
                live = 0
                now = self.clock()
                for slot in slots:
                    if slot.drained or slot.failed:
                        continue
                    if slot.handle is None:
                        # waiting out a restart backoff
                        if self.stop_event.is_set():
                            slot.failed = True
                            continue
                        if now >= slot.not_before:
                            slot.handle = self.spawn(slot.index, True)
                            self._say(f"fleet: worker {slot.index} "
                                      f"restarted (attempt "
                                      f"{slot.restarts}/{self.max_restarts})")
                        live += 1
                        continue
                    code = slot.handle.poll()
                    if code is None:
                        live += 1
                        continue
                    slot.handle = None
                    if code == 0:
                        slot.drained = True
                        self._say(f"fleet: worker {slot.index} drained")
                    elif self.stop_event.is_set():
                        slot.failed = True
                    elif slot.restarts >= self.max_restarts:
                        slot.failed = True
                        self._say(f"fleet: worker {slot.index} exceeded "
                                  f"{self.max_restarts} restarts "
                                  f"(last exit {code}); giving up")
                    else:
                        delay = min(self.backoff_cap,
                                    self.backoff_base * (2 ** slot.restarts))
                        slot.restarts += 1
                        summary.restarts += 1
                        slot.not_before = now + delay
                        self._say(f"fleet: worker {slot.index} exited "
                                  f"{code}; restarting in {delay:.1f}s")
                        live += 1
                if live == 0:
                    break
                if self.stop_event.is_set():
                    self._drain(slots)
                    summary.stopped = True
                    break
                self.sleep(self.poll_interval)
        except KeyboardInterrupt:
            self.stop_event.set()
            self._drain(slots)
            summary.stopped = True
        summary.drained = sum(1 for s in slots if s.drained)
        summary.failed = sum(1 for s in slots if s.failed)
        return summary

    def _drain(self, slots: List[_Slot]) -> None:
        """SIGTERM every live child, wait ``grace``, then SIGKILL."""
        live = [s for s in slots if s.handle is not None]
        for slot in live:
            assert slot.handle is not None
            slot.handle.terminate()
        deadline = self.clock() + self.grace
        while live and self.clock() < deadline:
            still = []
            for slot in live:
                assert slot.handle is not None
                code = slot.handle.poll()
                if code is None:
                    still.append(slot)
                elif code == 0:
                    slot.drained = True
                    slot.handle = None
                else:
                    slot.failed = True
                    slot.handle = None
            live = still
            if live:
                self.sleep(self.poll_interval)
        for slot in live:
            assert slot.handle is not None
            self._say(f"fleet: worker {slot.index} did not stop in "
                      f"{self.grace:.0f}s; killing")
            slot.handle.kill()
            slot.failed = True
            slot.handle = None
