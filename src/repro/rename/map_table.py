"""Speculative register map table (logical -> physical register, generation)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.isa.registers import NUM_LOGICAL_REGS


@dataclass(frozen=True)
class Mapping:
    """One logical-register mapping: physical register and its generation.

    The generation counter travels with the physical register number wherever
    the number is stored (map table, integration table) so stale integration
    entries can be recognised after the register has been reallocated
    (paper Section 2.2, "avoiding register mis-integrations using generation
    counters").
    """

    preg: int
    gen: int


class MapTable:
    """The speculative rename map.

    Recovery is performed by the :class:`~repro.rename.renamer.Renamer`
    walking squashed instructions youngest-first and calling
    :meth:`restore_entry`, mirroring the paper's serial ROB-walk recovery;
    :meth:`snapshot`/:meth:`restore` provide the monolithic checkpoint
    alternative used by tests.
    """

    def __init__(self, num_logical: int = NUM_LOGICAL_REGS):
        self.num_logical = num_logical
        self._pregs: List[int] = [0] * num_logical
        self._gens: List[int] = [0] * num_logical

    def get(self, logical: int) -> Mapping:
        return Mapping(self._pregs[logical], self._gens[logical])

    def get_raw(self, logical: int) -> Tuple[int, int]:
        """``(preg, gen)`` without the Mapping wrapper -- the rename stage
        reads the map several times per renamed instruction, and allocating
        a dataclass per read is measurable."""
        return self._pregs[logical], self._gens[logical]

    def set(self, logical: int, preg: int, gen: int) -> None:
        self._pregs[logical] = preg
        self._gens[logical] = gen

    def restore_entry(self, logical: int, mapping: Mapping) -> None:
        self._pregs[logical] = mapping.preg
        self._gens[logical] = mapping.gen

    def snapshot(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        return tuple(self._pregs), tuple(self._gens)

    def restore(self, snap: Tuple[Tuple[int, ...], Tuple[int, ...]]) -> None:
        self._pregs = list(snap[0])
        self._gens = list(snap[1])

    def mapped_pregs(self) -> List[int]:
        """All physical registers currently named by the map (for invariants)."""
        return list(self._pregs)
