"""Pointer-based register renaming with reference-counted physical registers.

This package implements the renaming discipline the paper builds on
(MIPS R10000 / Alpha 21264 style pointer renaming) plus the paper's
extension-1 machinery:

* :class:`MapTable` -- logical register -> (physical register, generation),
* :class:`PhysicalRegisterFile` -- the physical registers together with the
  *register state vector* generalised to true reference counts, the valid
  bit distinguishing the two zero-reference states (``0/F`` garbage vs
  ``0/T`` integration-eligible), per-register generation counters, and the
  circular (FIFO) free list,
* :class:`Renamer` -- the rename-stage operations used by the pipeline:
  source lookup, destination allocation, destination *integration* (mapping
  a logical register onto an existing physical register and bumping its
  reference count), retirement release of shadowed registers, and serial
  walk-back squash recovery.
"""

from repro.rename.map_table import MapTable, Mapping
from repro.rename.physical import PhysicalRegisterFile, PhysRegState, ZERO_PREG
from repro.rename.renamer import Renamer, RenameResult

__all__ = [
    "MapTable",
    "Mapping",
    "PhysicalRegisterFile",
    "PhysRegState",
    "ZERO_PREG",
    "Renamer",
    "RenameResult",
]
