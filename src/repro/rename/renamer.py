"""The rename-stage operations used by the pipeline.

The :class:`Renamer` binds the map table and the physical register file and
exposes exactly the operations the paper's integration-aware rename stage
needs:

* source lookup (physical register + generation for each logical source),
* destination *allocation* (conventional renaming: claim a free register),
* destination *integration* (extension 1: add a reference to an existing
  register instead of allocating),
* retirement (release the shadowed previous mapping),
* squash undo (serial walk-back recovery of the map table and the reference
  vector, youngest squashed instruction first).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.isa.instruction import DynInst
from repro.isa.registers import NUM_LOGICAL_REGS, is_zero_reg
from repro.rename.map_table import MapTable, Mapping
from repro.rename.physical import PhysicalRegisterFile, ZERO_PREG


@dataclass(slots=True)
class RenameResult:
    """Outcome of renaming one instruction's destination."""

    allocated: bool
    integrated: bool
    preg: Optional[int]
    gen: int


class Renamer:
    """Map-table + reference-vector manipulation for the rename stage."""

    def __init__(self, map_table: MapTable, prf: PhysicalRegisterFile):
        self.map_table = map_table
        self.prf = prf

    # ------------------------------------------------------------------
    # initialisation
    # ------------------------------------------------------------------
    def initialize_from_values(self, reg_values: Sequence) -> None:
        """Create the initial architectural mappings.

        Every logical register gets its own ready physical register holding
        the architectural initial value; the zero registers map to the
        hard-wired zero physical register.
        """
        for logical in range(NUM_LOGICAL_REGS):
            if is_zero_reg(logical):
                self.map_table.set(logical, ZERO_PREG, 0)
                continue
            preg = self.prf.allocate(ready=True, value=reg_values[logical])
            if preg is None:
                raise RuntimeError("physical register file too small for "
                                   "initial architectural mappings")
            self.map_table.set(logical, preg, self.prf.gen[preg])

    # ------------------------------------------------------------------
    # rename-stage operations
    # ------------------------------------------------------------------
    def lookup_sources(self, dyn: DynInst) -> Tuple[List[int], List[int]]:
        """Fill in (and return) the physical registers and generations of the
        instruction's logical sources."""
        pregs: List[int] = []
        gens: List[int] = []
        get_raw = self.map_table.get_raw
        for logical in dyn.inst.srcs:
            if is_zero_reg(logical):
                pregs.append(ZERO_PREG)
                gens.append(0)
            else:
                preg, gen = get_raw(logical)
                pregs.append(preg)
                gens.append(gen)
        dyn.src_pregs = pregs
        dyn.src_gens = gens
        return pregs, gens

    def _record_old_mapping(self, dyn: DynInst, logical: int) -> None:
        dyn.old_dest_preg, dyn.old_dest_gen = self.map_table.get_raw(logical)

    def rename_dest(self, dyn: DynInst) -> int:
        """Conventionally rename the destination (claim a new register).

        Returns ``-1`` when no physical register is free (rename must
        stall), ``0`` for instructions without a register destination
        (stores, branches, writes to the zero register), ``1`` when a
        register was allocated.  The allocation-free int code is what the
        per-instruction rename loop branches on.
        """
        dest = dyn.inst.dest
        if dest is None or is_zero_reg(dest):
            dyn.dest_preg = None
            return 0
        prf = self.prf
        preg = prf.allocate()
        if preg is None:
            return -1
        map_table = self.map_table
        dyn.old_dest_preg, dyn.old_dest_gen = map_table.get_raw(dest)
        gen = prf.gen[preg]
        dyn.dest_preg = preg
        dyn.dest_gen = gen
        map_table.set(dest, preg, gen)
        return 1

    def allocate_dest(self, dyn: DynInst) -> Optional[RenameResult]:
        """:meth:`rename_dest` wrapped in the richer result record.

        Returns ``None`` when no physical register is free (rename must
        stall); a :class:`RenameResult` otherwise.
        """
        code = self.rename_dest(dyn)
        if code < 0:
            return None
        if code == 0:
            return RenameResult(allocated=False, integrated=False, preg=None,
                                gen=0)
        return RenameResult(allocated=True, integrated=False,
                            preg=dyn.dest_preg, gen=dyn.dest_gen)

    def integrate_dest(self, dyn: DynInst, preg: int, gen: int) -> bool:
        """Integrate: point the destination at an existing physical register.

        Returns False if the reference counter is saturated, in which case
        the caller falls back to :meth:`allocate_dest`.
        """
        dest = dyn.inst.dest
        if dest is None or is_zero_reg(dest):
            # Integration of a branch (no register output): nothing to map.
            dyn.dest_preg = None
            return True
        if not self.prf.add_ref(preg):
            return False
        self._record_old_mapping(dyn, dest)
        dyn.dest_preg = preg
        dyn.dest_gen = gen
        self.map_table.set(dest, preg, gen)
        return True

    # ------------------------------------------------------------------
    # retirement and recovery
    # ------------------------------------------------------------------
    def commit(self, dyn: DynInst) -> None:
        """Retire ``dyn``: the previous (shadowed) mapping of its destination
        logical register ceases to be visible and drops one reference.  The
        instruction's own output keeps its reference (it is now the retired
        architectural mapping)."""
        dest = dyn.inst.dest
        if dest is None or is_zero_reg(dest) or dyn.dest_preg is None:
            return
        if dyn.old_dest_preg is not None:
            self.prf.release(dyn.old_dest_preg, via_squash=False)

    def squash(self, dyn: DynInst) -> None:
        """Undo the rename effects of a squashed instruction.

        Must be called youngest-first over the squashed instructions, which
        restores the map table and reference vector exactly as the paper's
        serial ROB-walk recovery does.
        """
        dest = dyn.inst.dest
        if dest is None or is_zero_reg(dest) or dyn.dest_preg is None:
            return
        self.prf.release(dyn.dest_preg, via_squash=True)
        self.map_table.restore_entry(
            dest, Mapping(dyn.old_dest_preg, dyn.old_dest_gen))

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------
    def live_map_references(self) -> int:
        """Number of references attributable to current map-table entries
        (used with in-flight shadowed mappings to check for register leaks)."""
        return sum(1 for preg in self.map_table.mapped_pregs()
                   if preg != ZERO_PREG)
