"""Physical register file with the generalised register state vector.

The paper's extension 1 replaces the three-state (free / active / squashed)
vector of squash reuse with true reference counts plus a valid bit that
distinguishes the two zero-reference states:

* ``0/F`` -- unmapped and the value is garbage (the producing instruction was
  squashed before executing); *not* integration-eligible, because integrating
  such a register would deadlock the consumer (it holds no reservation
  station and nobody will ever produce the value).
* ``0/T`` -- unmapped but the register holds a useful value; integration
  eligible.

Each physical register also carries a short wrap-around *generation counter*
that is incremented on every reallocation; integration succeeds only when
both the register number and its generation match the integration-table
entry, which suppresses register mis-integrations (Section 2.2).

Free registers are reclaimed in circular (FIFO) order, which combined with
LRU replacement in the integration table approximates the joint IT/state
management of the original squash-reuse design.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, List, Optional

ZERO_PREG = 0


class PhysRegState(enum.Enum):
    """Summary state of a physical register (diagnostic view of the vector)."""

    FREE = "free"          # refcount == 0, invalid (0/F)
    ELIGIBLE = "eligible"  # refcount == 0, valid   (0/T)
    ACTIVE = "active"      # refcount > 0


class PhysicalRegisterFile:
    """Physical registers: values, readiness, reference counts, generations.

    Register 0 (:data:`ZERO_PREG`) is the hard-wired zero register: always
    ready, always value 0, never allocated and never freed.
    """

    def __init__(self, num_pregs: int = 1024, gen_bits: int = 4,
                 refcount_bits: int = 4):
        if num_pregs < 66:
            raise ValueError("need at least 66 physical registers")
        self.num_pregs = num_pregs
        self.gen_bits = gen_bits
        self.gen_mask = (1 << gen_bits) - 1 if gen_bits > 0 else 0
        self.max_refcount = (1 << refcount_bits) - 1
        self.values: List = [0] * num_pregs
        self.ready: List[bool] = [False] * num_pregs
        self.refcount: List[int] = [0] * num_pregs
        self.valid: List[bool] = [False] * num_pregs
        self.gen: List[int] = [0] * num_pregs
        self.zero_via_squash: List[bool] = [False] * num_pregs
        self._in_free_queue: List[bool] = [False] * num_pregs
        self._free_queue: Deque[int] = deque()
        #: Optional not-ready -> ready transition hook; the pipeline wires
        #: this to the scheduler's wakeup so operand readiness is tracked by
        #: events instead of per-cycle scans.
        self.on_ready: Optional[Callable[[int], None]] = None
        # Statistics.
        self.allocations = 0
        self.integrations = 0
        self.refcount_saturations = 0
        self.allocation_failures = 0

        # Zero register.
        self.ready[ZERO_PREG] = True
        self.valid[ZERO_PREG] = True
        self.refcount[ZERO_PREG] = 1
        for preg in range(1, num_pregs):
            self._push_free(preg)

    # ------------------------------------------------------------------
    # free-list management
    # ------------------------------------------------------------------
    def _push_free(self, preg: int) -> None:
        if not self._in_free_queue[preg]:
            self._free_queue.append(preg)
            self._in_free_queue[preg] = True

    def free_count(self) -> int:
        """Number of registers currently allocatable (reference count zero)."""
        return sum(1 for preg in self._free_queue if self.refcount[preg] == 0)

    def has_free(self) -> bool:
        return any(self.refcount[preg] == 0 for preg in self._free_queue)

    # ------------------------------------------------------------------
    # mapping operations
    # ------------------------------------------------------------------
    def allocate(self, ready: bool = False, value=0) -> Optional[int]:
        """Claim a zero-reference register for a newly renamed instruction.

        Returns the physical register number, or ``None`` if every register
        is still referenced (the pipeline must stall rename).  Allocation
        increments the generation counter, which invalidates any stale
        integration-table entries naming the register.
        """
        while self._free_queue:
            preg = self._free_queue.popleft()
            self._in_free_queue[preg] = False
            if self.refcount[preg] != 0:
                # The register was re-referenced (integrated) while it sat on
                # the free queue; it is no longer allocatable.
                continue
            self.allocations += 1
            self.gen[preg] = (self.gen[preg] + 1) & self.gen_mask
            self.refcount[preg] = 1
            self.valid[preg] = True
            self.ready[preg] = ready
            self.values[preg] = value
            self.zero_via_squash[preg] = False
            return preg
        self.allocation_failures += 1
        return None

    def add_ref(self, preg: int) -> bool:
        """Add a mapping to ``preg`` (an integration).

        Fails (returns False) when the reference counter is saturated, in
        which case the instruction must allocate a fresh register instead
        (paper Section 3.3, Refcount discussion).
        """
        if preg == ZERO_PREG:
            return True
        if self.refcount[preg] >= self.max_refcount:
            self.refcount_saturations += 1
            return False
        self.refcount[preg] += 1
        self.integrations += 1
        return True

    def release(self, preg: int, via_squash: bool = False) -> None:
        """Drop one mapping to ``preg`` (retirement overwrite or squash undo).

        When the count reaches zero the register enters ``0/T`` if its value
        was produced (integration-eligible) or ``0/F`` if the producing
        instruction never executed, and it joins the FIFO free queue.
        """
        if preg == ZERO_PREG:
            return
        if self.refcount[preg] <= 0:
            raise RuntimeError(f"reference underflow on p{preg}")
        self.refcount[preg] -= 1
        if self.refcount[preg] == 0:
            self.valid[preg] = self.ready[preg]
            self.zero_via_squash[preg] = via_squash and self.valid[preg]
            self._push_free(preg)

    # ------------------------------------------------------------------
    # values
    # ------------------------------------------------------------------
    def set_value(self, preg: int, value) -> None:
        if preg == ZERO_PREG:
            return
        self.values[preg] = value
        if not self.ready[preg]:
            self.ready[preg] = True
            if self.on_ready is not None:
                self.on_ready(preg)

    def value(self, preg: int):
        return self.values[preg]

    def is_ready(self, preg: int) -> bool:
        return self.ready[preg]

    # ------------------------------------------------------------------
    # integration support
    # ------------------------------------------------------------------
    def state_of(self, preg: int) -> PhysRegState:
        if self.refcount[preg] > 0:
            return PhysRegState.ACTIVE
        return PhysRegState.ELIGIBLE if self.valid[preg] else PhysRegState.FREE

    def integration_eligible(self, preg: int, gen: int,
                             squash_only: bool = False) -> bool:
        """Can an instruction integrate ``preg`` created at generation ``gen``?

        * generation must match (stale entries are rejected);
        * in general reuse, any referenced register or a ``0/T`` register is
          eligible;
        * in squash-reuse-only mode the register must have reached zero
          references via a squash (the original three-state discipline).
        """
        if preg == ZERO_PREG:
            return False
        if (gen & self.gen_mask) != self.gen[preg]:
            return False
        if squash_only:
            return (self.refcount[preg] == 0 and self.valid[preg]
                    and self.zero_via_squash[preg])
        return self.refcount[preg] > 0 or self.valid[preg]

    # ------------------------------------------------------------------
    # invariants (used by tests)
    # ------------------------------------------------------------------
    def total_references(self) -> int:
        return sum(self.refcount[1:])

    def check_no_leak(self, live_references: int) -> bool:
        """True when the number of references equals the expected number of
        live mappings -- i.e. no physical register has been leaked."""
        return self.total_references() == live_references
