"""Front-end substrates: branch direction/target prediction and the return
address stack.

The paper's front end uses an 8K-entry hybrid gshare/bimodal direction
predictor with a 4K-entry BTB.  The return-address stack both predicts return
targets and supplies the *call depth* that extension 2 (opcode indexing)
mixes into the integration-table index.
"""

from repro.frontend.branch_predictor import (
    BimodalPredictor,
    GSharePredictor,
    HybridPredictor,
    BranchTargetBuffer,
    ReturnAddressStack,
    BranchPredictor,
    BranchPredictorConfig,
    BranchPrediction,
)

__all__ = [
    "BimodalPredictor",
    "GSharePredictor",
    "HybridPredictor",
    "BranchTargetBuffer",
    "ReturnAddressStack",
    "BranchPredictor",
    "BranchPredictorConfig",
    "BranchPrediction",
]
