"""Branch direction and target prediction.

Components:

* :class:`BimodalPredictor` -- PC-indexed 2-bit saturating counters.
* :class:`GSharePredictor` -- global-history XOR PC indexed 2-bit counters.
* :class:`HybridPredictor` -- bimodal/gshare with a chooser table (the
  paper's "hybrid gshare/bimodal" predictor).
* :class:`BranchTargetBuffer` -- direct-mapped tagged target cache.
* :class:`ReturnAddressStack` -- return-target prediction; its top-of-stack
  index is the *call depth* consumed by the integration-table index
  function.
* :class:`BranchPredictor` -- the front-end unit gluing these together, with
  checkpoint/restore support for mis-speculation recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.serialization import SerializableConfig

from repro.isa.instruction import StaticInst
from repro.isa.opcodes import OpClass
from repro.isa.program import INST_SIZE


def _saturate(value: int, delta: int, lo: int = 0, hi: int = 3) -> int:
    return max(lo, min(hi, value + delta))


@dataclass(frozen=True)
class BranchPredictorConfig(SerializableConfig):
    """Sizes of the front-end prediction structures (paper defaults)."""

    bimodal_entries: int = 8192
    gshare_entries: int = 8192
    chooser_entries: int = 8192
    history_bits: int = 13
    btb_entries: int = 4096
    ras_entries: int = 64


class BimodalPredictor:
    """PC-indexed table of 2-bit saturating counters."""

    def __init__(self, entries: int):
        self.entries = entries
        self.table = [2] * entries  # weakly taken

    def _index(self, pc: int) -> int:
        return (pc // INST_SIZE) % self.entries

    def predict(self, pc: int) -> bool:
        return self.table[self._index(pc)] >= 2

    def update(self, pc: int, taken: bool) -> None:
        idx = self._index(pc)
        self.table[idx] = _saturate(self.table[idx], 1 if taken else -1)


class GSharePredictor:
    """Global-history-XOR-PC indexed table of 2-bit saturating counters."""

    def __init__(self, entries: int, history_bits: int):
        self.entries = entries
        self.history_bits = history_bits
        self.history_mask = (1 << history_bits) - 1
        self.table = [2] * entries

    def index(self, pc: int, history: int) -> int:
        return ((pc // INST_SIZE) ^ (history & self.history_mask)) % self.entries

    def predict(self, pc: int, history: int) -> bool:
        return self.table[self.index(pc, history)] >= 2

    def update(self, pc: int, history: int, taken: bool) -> None:
        idx = self.index(pc, history)
        self.table[idx] = _saturate(self.table[idx], 1 if taken else -1)


class HybridPredictor:
    """Chooser-based combination of bimodal and gshare."""

    def __init__(self, config: BranchPredictorConfig):
        self.config = config
        self.bimodal = BimodalPredictor(config.bimodal_entries)
        self.gshare = GSharePredictor(config.gshare_entries, config.history_bits)
        self.chooser = [2] * config.chooser_entries  # >=2 selects gshare

    def _chooser_index(self, pc: int) -> int:
        return (pc // INST_SIZE) % self.config.chooser_entries

    def predict(self, pc: int, history: int) -> bool:
        if self.chooser[self._chooser_index(pc)] >= 2:
            return self.gshare.predict(pc, history)
        return self.bimodal.predict(pc)

    def update(self, pc: int, history: int, taken: bool) -> None:
        bim_correct = self.bimodal.predict(pc) == taken
        gsh_correct = self.gshare.predict(pc, history) == taken
        idx = self._chooser_index(pc)
        if gsh_correct and not bim_correct:
            self.chooser[idx] = _saturate(self.chooser[idx], 1)
        elif bim_correct and not gsh_correct:
            self.chooser[idx] = _saturate(self.chooser[idx], -1)
        self.bimodal.update(pc, taken)
        self.gshare.update(pc, history, taken)


class BranchTargetBuffer:
    """Direct-mapped, tagged branch target buffer."""

    def __init__(self, entries: int):
        self.entries = entries
        self.tags: List[Optional[int]] = [None] * entries
        self.targets: List[int] = [0] * entries

    def _index(self, pc: int) -> int:
        return (pc // INST_SIZE) % self.entries

    def lookup(self, pc: int) -> Optional[int]:
        idx = self._index(pc)
        if self.tags[idx] == pc:
            return self.targets[idx]
        return None

    def update(self, pc: int, target: int) -> None:
        idx = self._index(pc)
        self.tags[idx] = pc
        self.targets[idx] = target


class ReturnAddressStack:
    """Circular return-address stack.

    ``depth`` (the top-of-stack index) is exported as the dynamic call depth
    used by opcode indexing (paper Section 2.3).

    The stack is kept as an immutable tuple so that checkpointing it -- which
    the front end does for every fetched instruction -- is a reference copy
    instead of an O(depth) list copy; pushes and pops (calls and returns,
    which are far rarer than fetches) pay the copy instead.
    """

    def __init__(self, entries: int):
        self.entries = entries
        self.stack: Tuple[int, ...] = ()

    @property
    def depth(self) -> int:
        return len(self.stack)

    def push(self, return_pc: int) -> None:
        stack = self.stack
        if len(stack) >= self.entries:
            stack = stack[1:]
        self.stack = stack + (return_pc,)

    def pop(self) -> Optional[int]:
        stack = self.stack
        if stack:
            self.stack = stack[:-1]
            return stack[-1]
        return None

    def snapshot(self) -> Tuple[int, ...]:
        return self.stack

    def restore(self, snap: Tuple[int, ...]) -> None:
        self.stack = tuple(snap)


@dataclass(slots=True)
class BranchPrediction:
    """One front-end prediction, kept with the dynamic instruction so the
    predictor can be updated and recovered precisely."""

    pc: int
    taken: bool
    target: int
    history: int
    is_cond: bool
    checkpoint: Optional[tuple] = None


@dataclass
class BranchPredictorStats:
    cond_predictions: int = 0
    cond_mispredictions: int = 0
    target_mispredictions: int = 0

    @property
    def cond_accuracy(self) -> float:
        if not self.cond_predictions:
            return 1.0
        return 1.0 - self.cond_mispredictions / self.cond_predictions


class BranchPredictor:
    """Front-end prediction unit: direction, target, and return prediction."""

    def __init__(self, config: Optional[BranchPredictorConfig] = None):
        self.config = config or BranchPredictorConfig()
        self.hybrid = HybridPredictor(self.config)
        self.btb = BranchTargetBuffer(self.config.btb_entries)
        self.ras = ReturnAddressStack(self.config.ras_entries)
        self.history = 0
        self.stats = BranchPredictorStats()

    # ------------------------------------------------------------------
    @property
    def call_depth(self) -> int:
        """Current speculative call depth (RAS top-of-stack index)."""
        return self.ras.depth

    def snapshot(self) -> tuple:
        """Checkpoint the speculative front-end state (history + RAS)."""
        return self.history, self.ras.snapshot()

    def restore(self, snap: tuple) -> None:
        self.history, ras_snap = snap[0], snap[1]
        self.ras.restore(ras_snap)

    # ------------------------------------------------------------------
    def predict(self, inst: StaticInst) -> BranchPrediction:
        """Predict the next PC for a control-flow instruction at fetch."""
        cls = inst.info.cls
        pc = inst.pc
        fallthrough = pc + INST_SIZE
        checkpoint = self.snapshot()
        if cls is OpClass.COND_BRANCH:
            self.stats.cond_predictions += 1
            taken = self.hybrid.predict(pc, self.history)
            target = inst.target if taken else fallthrough
            pred = BranchPrediction(pc, taken, target, self.history, True,
                                    checkpoint)
            self._push_history(taken)
            return pred
        if cls in (OpClass.DIRECT_JUMP,):
            return BranchPrediction(pc, True, inst.target, self.history, False,
                                    checkpoint)
        if cls is OpClass.CALL_DIRECT:
            self.ras.push(fallthrough)
            return BranchPrediction(pc, True, inst.target, self.history, False,
                                    checkpoint)
        if cls is OpClass.CALL_INDIRECT:
            self.ras.push(fallthrough)
            target = self.btb.lookup(pc)
            return BranchPrediction(pc, True,
                                    target if target is not None else fallthrough,
                                    self.history, False, checkpoint)
        if cls is OpClass.INDIRECT_JUMP:
            target = self.btb.lookup(pc)
            return BranchPrediction(pc, True,
                                    target if target is not None else fallthrough,
                                    self.history, False, checkpoint)
        if cls is OpClass.RETURN:
            target = self.ras.pop()
            if target is None:
                target = self.btb.lookup(pc)
            return BranchPrediction(pc, True,
                                    target if target is not None else fallthrough,
                                    self.history, False, checkpoint)
        # Not a control-flow instruction: fall through.
        return BranchPrediction(pc, False, fallthrough, self.history, False,
                                checkpoint)

    def _push_history(self, taken: bool) -> None:
        mask = (1 << self.config.history_bits) - 1
        self.history = ((self.history << 1) | (1 if taken else 0)) & mask

    # ------------------------------------------------------------------
    def resolve(self, inst: StaticInst, prediction: BranchPrediction,
                taken: bool, target: int) -> bool:
        """Update predictor state at branch resolution.

        Returns True if the prediction was wrong (direction or target).
        """
        mispredicted = False
        if prediction.is_cond:
            if taken != prediction.taken:
                mispredicted = True
                self.stats.cond_mispredictions += 1
            self.hybrid.update(inst.pc, prediction.history, taken)
        if taken and target != prediction.target:
            mispredicted = True
            if not prediction.is_cond:
                self.stats.target_mispredictions += 1
        if taken and inst.info.cls in (OpClass.CALL_INDIRECT,
                                       OpClass.INDIRECT_JUMP,
                                       OpClass.RETURN):
            self.btb.update(inst.pc, target)
        return mispredicted
