"""The fleet dashboard behind ``repro status`` (and ``--watch``).

:func:`render_status` turns one :meth:`~repro.distrib.queue.JobQueue.
status` observation into the operator text: queue depth, lease ages,
per-worker throughput -- lifetime jobs/min *and* a sliding-window rate
over the worker's last few metric snapshots (see
:meth:`~repro.distrib.queue.JobQueue.record_worker_metrics`) -- the
fleet-wide cache hit rate, and the dead-letter tail.  ``repro status``
prints it once; ``repro status --watch`` redraws it every ``--interval``
seconds via :func:`watch`.

Rendering is read-only and defensive: a corrupt stats or snapshot file
degrades its line, never tracebacks the CLI.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional

from repro.obs.metrics import sliding_rate

#: Snapshots consulted for the sliding-window rate (each spaced
#: ``REPRO_METRICS_INTERVAL`` apart, so the default window covers the
#: last ~40 seconds of fleet activity).
RATE_WINDOW = 8

#: ANSI clear-screen + cursor-home, prefixed to every ``--watch`` redraw.
_CLEAR = "\x1b[2J\x1b[H"


def _num(value: object, cast, default):
    """Defensive numeric conversion for operator-facing output."""
    try:
        return cast(value)
    except (TypeError, ValueError):
        return default


def render_status(queue, now: Optional[float] = None,
                  window: int = RATE_WINDOW) -> str:
    """One observation of the queue as the operator dashboard text."""
    now = time.time() if now is None else now
    status = queue.status(now=now)
    lines: List[str] = [f"queue:    {status.root}"]
    if not queue.root.is_dir():
        lines.append("(queue directory does not exist yet: "
                     "nothing submitted)")
    lines.append(f"pending:  {status.pending}")
    lines.append(f"claimed:  {status.claimed}")
    lines.append(f"done:     {status.done}")
    lines.append(f"dead:     {status.dead}")

    executed = cache_hits = 0
    for stats in status.workers.values():
        executed += _num(stats.get("executed", 0), int, 0)
        cache_hits += _num(stats.get("cache_hits", 0), int, 0)
    if executed or cache_hits:
        rate = cache_hits / (executed + cache_hits)
        lines.append(f"cache:    {cache_hits}/{executed + cache_hits} "
                     f"worker job(s) from cache ({rate:.0%} hit rate)")

    if status.leases:
        lines.append("leases:")
        for worker, age, job_id in status.leases:
            lines.append(f"  {worker:<28} age {age:6.1f}s  {job_id[-16:]}")
    if status.workers:
        lines.append("workers:")
        for name, stats in sorted(status.workers.items()):
            done = (_num(stats.get("executed", 0), int, 0)
                    + _num(stats.get("cache_hits", 0), int, 0))
            started = _num(stats.get("started_at", now), float, now)
            lifetime = 60.0 * done / max(1e-9, now - started)
            windowed = sliding_rate(queue.read_worker_metrics(name),
                                    window=window)
            window_text = ("-" if windowed is None
                           else f"{windowed:.1f}/min now")
            lines.append(
                f"  {name:<28} {done:>5} job(s)  {lifetime:7.1f} jobs/min  "
                f"{window_text:>12}  "
                f"failed {_num(stats.get('failed', 0), int, 0)}  "
                f"reclaimed {_num(stats.get('reclaimed', 0), int, 0)}")
    if status.dead:
        lines.append("dead letters:")
        for dead in queue.dead_jobs():
            last = (dead.errors or ["unknown"])[-1].strip().splitlines()
            lines.append(f"  {dead.key[:16]} after {dead.attempts} "
                         f"attempt(s): {last[-1] if last else 'unknown'}")
    return "\n".join(lines)


def watch(queue, interval: float = 2.0,
          refreshes: Optional[int] = None,
          out: Callable[[str], None] = print,
          clear: bool = True,
          sleep: Callable[[float], None] = time.sleep) -> int:
    """Redraw :func:`render_status` every ``interval`` seconds.

    ``refreshes`` bounds the number of redraws (None = until Ctrl-C, the
    interactive mode; CI smoke passes 1).  Returns the number of redraws
    performed.  ``out``/``sleep`` are injectable for tests.
    """
    drawn = 0
    try:
        while refreshes is None or drawn < refreshes:
            stamp = time.strftime("%H:%M:%S")
            body = render_status(queue)
            prefix = _CLEAR if clear else ""
            out(f"{prefix}repro status --watch  (refreshed {stamp}, "
                f"every {interval:g}s; Ctrl-C to stop)\n{body}")
            drawn += 1
            if refreshes is not None and drawn >= refreshes:
                break
            sleep(interval)
    except KeyboardInterrupt:
        pass
    return drawn
