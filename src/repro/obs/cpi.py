"""CPI stall stacks: per-cycle top-of-ROB blame attribution.

Every simulated cycle is charged to exactly one bucket of
:data:`CPI_BUCKETS`, accumulated in ``SimStats.cpi_stack`` so stacks sum
to ``cycles``, merge losslessly across shards (plain Counter addition)
and stay bit-identical across the generic and fused drivers.

The attribution rule is *state-based*, evaluated at the end of a cycle
(after all five stage phases ran, before the clock advances):

* a cycle that retired at least one instruction is ``retired``;
* otherwise the head of the reorder buffer is blamed: an instruction
  waiting on a not-ready source/destination register is
  ``waiting_operands``; an issued, unfinished memory operation is
  ``memory``; a completed (or integrated-and-ready) head that still
  cannot leave -- the minimum rename-to-retire age, a rejected store
  port -- is ``rename_stall``;
* an empty reorder buffer is blamed on the recovery cause the commit
  path recorded in ``PipelineState.stall_cause`` (``squash_recovery``
  after a mis-speculation squash, ``integration_replay`` after a DIVA
  mis-integration fault) until the first innocent instruction retires,
  and on ``frontend_empty`` otherwise (fetch/decode latency, instruction
  cache misses, the initial pipeline fill).

Elided spans (the event-horizon driver) are attributed arithmetically:
the machine is provably quiescent across the span, so every elided cycle
classifies identically and the driver adds ``span x blame-of-quiescent-
state`` in one step -- exactly the ``rs_occupancy`` accumulation rule.
Every condition below is constant across a quiescent span: the span is
clamped to end before the head's minimum-age gate opens and before the
fetch-queue head decodes, and everything else only changes through stage
activity.

This module is imported by the core engine; it must not import any
``repro`` package.
"""

from __future__ import annotations

#: A cycle that retired at least one instruction.
CPI_RETIRED = "retired"
#: Empty ROB, no recovery in flight: fetch/decode has not delivered.
CPI_FRONTEND_EMPTY = "frontend_empty"
#: The ROB head finished executing but cannot pass retirement's
#: structural gates (minimum rename-to-retire age, store-port rejection).
CPI_RENAME_STALL = "rename_stall"
#: The ROB head waits on operand/result registers (unissued work, an
#: in-flight non-memory producer, an integrated-but-not-ready result).
CPI_WAITING_OPERANDS = "waiting_operands"
#: The ROB head is an issued, unfinished load or store.
CPI_MEMORY = "memory"
#: Empty ROB while refilling after a DIVA mis-integration fault.
CPI_INTEGRATION_REPLAY = "integration_replay"
#: Empty ROB while refilling after a mis-speculation squash.
CPI_SQUASH_RECOVERY = "squash_recovery"

#: Every blame bucket, in stack-plot order (retired at the bottom).
CPI_BUCKETS = (
    CPI_RETIRED,
    CPI_FRONTEND_EMPTY,
    CPI_RENAME_STALL,
    CPI_WAITING_OPERANDS,
    CPI_MEMORY,
    CPI_INTEGRATION_REPLAY,
    CPI_SQUASH_RECOVERY,
)


def classify_stall(state) -> str:
    """Blame one non-retiring cycle on a stall bucket.

    ``state`` is a :class:`~repro.core.stages.base.PipelineState` observed
    at the end of a cycle in which nothing retired.  Reads only engine
    state both drivers share, so the generic loop, the fused loop and the
    elided-span attribution all agree cycle for cycle.
    """
    rob_entries = state.rob._entries
    if not rob_entries:
        cause = state.stall_cause
        return cause if cause is not None else CPI_FRONTEND_EMPTY
    head = rob_entries[0]
    if head.integrated:
        dest = head.dest_preg
        if dest is not None and not state.prf.ready[dest]:
            return CPI_WAITING_OPERANDS
        return CPI_RENAME_STALL
    if head.completed:
        return CPI_RENAME_STALL
    if head.issued and head.info.is_mem:
        return CPI_MEMORY
    return CPI_WAITING_OPERANDS
