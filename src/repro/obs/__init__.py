"""Observability: pipeline tracing, CPI stall stacks and fleet metrics.

Three layers, documented in docs/ARCHITECTURE.md ("Observability"):

* :mod:`repro.obs.trace` -- per-instruction lifecycle event tracing
  (JSON-lines and Konata pipetrace output) behind ``repro trace``;
* :mod:`repro.obs.cpi` -- the per-cycle top-of-ROB blame taxonomy that
  fills ``SimStats.cpi_stack``;
* :mod:`repro.obs.metrics` / :mod:`repro.obs.dashboard` -- the
  counter/gauge/histogram registry behind ``RunTelemetry`` and the
  ``repro status --watch`` live fleet dashboard.

:mod:`repro.obs.cpi` is imported by the core engine and must stay
dependency-free; the other modules sit above the core and may import it.
"""

from repro.obs.cpi import CPI_BUCKETS, classify_stall
from repro.obs.trace import PipelineTracer

__all__ = ["CPI_BUCKETS", "classify_stall", "PipelineTracer"]
