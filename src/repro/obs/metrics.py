"""The fleet metrics layer: a counter/gauge/histogram registry.

One process-wide :data:`REGISTRY` is the single source of truth for
operational telemetry: the run engine's :data:`repro.experiments.runner.
telemetry` is a thin attribute proxy over ``run.*`` counters here, the
worker drain loop mirrors its :class:`~repro.distrib.worker.WorkerSummary`
into ``worker.*`` counters and appends periodic snapshots next to its
stats file (``workers/<id>.metrics.jsonl``, cadence
``REPRO_METRICS_INTERVAL``), and every ``--verbose`` summary the CLI
prints -- ``repro run``/``submit``/``figures`` and the worker's exit line
-- renders from the registry through the shared formatters below, so the
numbers can never drift between surfaces.

The registry is deliberately simple and dependency-free: plain dicts, no
locks (CPython attribute/dict updates are atomic enough for the
increment-only counters used here, and every consumer is single-process),
no background threads.  Histograms keep bounded summaries (count / total
/ min / max), not samples.
"""

from __future__ import annotations

import math
import os
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

#: Snapshot cadence fallback (seconds) when ``REPRO_METRICS_INTERVAL`` is
#: unset.
DEFAULT_METRICS_INTERVAL = 5.0


def default_metrics_interval() -> float:
    """Validated accessor for ``REPRO_METRICS_INTERVAL`` (the only place
    it is read): seconds between the periodic metric snapshots a worker
    appends for the ``repro status --watch`` dashboard (default 5)."""
    raw = os.environ.get("REPRO_METRICS_INTERVAL",
                         str(DEFAULT_METRICS_INTERVAL)).strip()
    if not raw:
        return DEFAULT_METRICS_INTERVAL
    from repro.experiments.runner import EnvVarError

    try:
        value = float(raw)
    except ValueError:
        raise EnvVarError("REPRO_METRICS_INTERVAL", raw,
                          "a number of seconds (e.g. 5)") from None
    if not math.isfinite(value) or value <= 0:
        raise EnvVarError("REPRO_METRICS_INTERVAL", raw,
                          "a positive finite number of seconds (e.g. 5)")
    return value


class MetricsRegistry:
    """Named counters, gauges and bounded histogram summaries.

    Names are dotted (``run.simulations``, ``worker.executed``); the
    ``counters(prefix)`` view strips the prefix so consumers can render a
    subsystem without knowing the full map.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        #: name -> [count, total, min, max]
        self._histograms: Dict[str, list] = {}

    # -- counters ------------------------------------------------------
    def inc(self, name: str, delta: int = 1) -> int:
        value = self._counters.get(name, 0) + delta
        self._counters[name] = value
        return value

    def set_counter(self, name: str, value: int) -> None:
        self._counters[name] = value

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Counters under ``prefix``, keyed by the stripped remainder."""
        n = len(prefix)
        return {name[n:]: value for name, value in self._counters.items()
                if name.startswith(prefix)}

    # -- gauges --------------------------------------------------------
    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    # -- histograms ----------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        entry = self._histograms.get(name)
        if entry is None:
            self._histograms[name] = [1, value, value, value]
        else:
            entry[0] += 1
            entry[1] += value
            if value < entry[2]:
                entry[2] = value
            if value > entry[3]:
                entry[3] = value

    def histogram(self, name: str) -> Optional[Dict[str, float]]:
        entry = self._histograms.get(name)
        if entry is None:
            return None
        count, total, lo, hi = entry
        return {"count": count, "total": total, "min": lo, "max": hi,
                "mean": total / count if count else 0.0}

    # -- lifecycle -----------------------------------------------------
    def reset(self, prefix: str = "") -> None:
        """Zero everything under ``prefix`` ("" resets the registry)."""
        for store in (self._counters, self._gauges, self._histograms):
            for name in [n for n in store if n.startswith(prefix)]:
                del store[name]

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-safe point-in-time dump of the whole registry."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "histograms": {name: self.histogram(name)
                           for name in self._histograms},
        }


#: The process-wide registry every subsystem shares.
REGISTRY = MetricsRegistry()


# ----------------------------------------------------------------------
# the shared --verbose formatters
# ----------------------------------------------------------------------
#: ``run.*`` counter -> label, in verbose-block print order (the field
#: list mirrors :class:`repro.experiments.runner.RunTelemetry`).
RUN_COUNTER_LABELS: Tuple[Tuple[str, str], ...] = (
    ("simulations", "local simulations"),
    ("cycles_simulated", "cycles simulated"),
    ("cycles_elided", "cycles elided"),
    ("slices_simulated", "slices simulated"),
    ("remote_jobs", "remote jobs"),
    ("leases_reclaimed", "leases reclaimed"),
    ("memory_hits", "memory hits"),
    ("disk_hits", "disk hits"),
    ("memory_evictions", "memory evictions"),
    ("io_retries", "io retries"),
    ("corrupt_quarantined", "corrupt quarantined"),
    ("cache_degraded", "cache degraded"),
    ("fenced", "fenced publishes"),
)

#: ``worker.*`` counter -> label for the worker exit line, in print order.
WORKER_COUNTER_LABELS: Tuple[Tuple[str, str], ...] = (
    ("executed", "executed"),
    ("cache_hits", "cache hits"),
    ("failed", "failed"),
    ("reclaimed", "leases reclaimed"),
)


def format_run_summary(verbose: bool = False,
                       registry: Optional[MetricsRegistry] = None) -> str:
    """The post-run provenance line(s) rendered from ``run.*`` counters.

    The one formatter behind every CLI surface that reports run
    telemetry (``repro run``/``submit``/``figures``): the headline names
    who computed what, and ``verbose`` appends the full aligned
    breakdown.
    """
    registry = registry if registry is not None else REGISTRY
    run = registry.counters("run.")

    def count(name: str) -> int:
        return int(run.get(name, 0))

    sliced = count("slices_simulated")
    line = (f"\n{count('simulations')} simulations"
            + (f" ({sliced} slices)" if sliced else "") + ", "
            f"{count('memory_hits')} memory hits, "
            f"{count('disk_hits')} disk hits")
    if count("remote_jobs"):
        line += f", {count('remote_jobs')} remote jobs"
    if count("leases_reclaimed"):
        line += f", {count('leases_reclaimed')} leases reclaimed"
    if count("corrupt_quarantined"):
        line += f", {count('corrupt_quarantined')} corrupt quarantined"
    if not verbose:
        return line
    lines = [line]
    for name, label in RUN_COUNTER_LABELS:
        value = f"{count(name)}"
        if name == "cycles_elided" and count("cycles_simulated"):
            fraction = count(name) / count("cycles_simulated")
            value += f" ({fraction:.1%} elided)"
        lines.append(f"  {label + ':':<21}{value}")
    return "\n".join(lines)


def format_worker_exit(worker: str,
                       registry: Optional[MetricsRegistry] = None) -> str:
    """The worker drain loop's exit line, from ``worker.*`` counters."""
    registry = registry if registry is not None else REGISTRY
    counts = registry.counters("worker.")
    parts = [f"{int(counts.get(name, 0))} {label}"
             for name, label in WORKER_COUNTER_LABELS]
    return f"worker {worker} exiting: " + ", ".join(parts)


def sliding_rate(snapshots: Iterable[Mapping[str, Any]],
                 value_key: str = "jobs_done",
                 time_key: str = "t",
                 window: int = 8) -> Optional[float]:
    """Per-minute rate over the last ``window`` snapshots (None when
    fewer than two usable snapshots exist or no time has passed).

    The sliding-window companion to the lifetime jobs/min rate: a worker
    that was fast an hour ago but is wedged now shows a sagging window
    rate long before the lifetime average notices.
    """
    usable = []
    for snap in snapshots:
        try:
            usable.append((float(snap[time_key]), float(snap[value_key])))
        except (KeyError, TypeError, ValueError):
            continue
    usable = usable[-window:]
    if len(usable) < 2:
        return None
    (t0, v0), (t1, v1) = usable[0], usable[-1]
    elapsed = t1 - t0
    if elapsed <= 0:
        return None
    return 60.0 * (v1 - v0) / elapsed
