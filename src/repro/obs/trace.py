"""Pipeline event tracing: per-instruction lifecycle streams.

A :class:`PipelineTracer` is handed to
:class:`~repro.core.pipeline.Processor` (``tracer=``) and receives one
hook call per lifecycle transition from the four stage components:
``fetch`` (front end), ``rename``/``dispatch`` (rename stage), ``issue``
and ``complete`` (execution engine), ``retire`` (commit) and ``squash``
(recovery controller and front-end flush).  Tracing is strictly opt-in:
every hook site is guarded by a single ``tracer is None`` check, so an
untraced run -- the default -- pays nothing, and the fused driver and
compiled kernel stay fully eligible.  An *active* tracer only forces
``REPRO_ELIDE``-off semantics (elided spans have no per-cycle events to
observe); results are bit-identical either way.

Two output formats, both optional:

* **JSON-lines** -- one event object per line, written as events happen:
  ``{"event": ..., "seq": ..., "cycle": ..., "pc": ..., "op": ...}``;
* **Konata pipetrace** -- a ``Kanata\\t0004`` file replayable in the
  Konata pipeline viewer, generated at :meth:`close` by replaying the
  buffered records in cycle order (``I``/``L``/``S``/``E``/``R``
  records; retired instructions emit an ``R``-type-0 record, squashed
  ones ``R``-type-1, so the retired-record count equals
  ``SimStats.retired`` exactly).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Tuple

#: Konata stage labels, in pipeline order.
_STAGE_FETCH = "F"
_STAGE_RENAME = "R"
_STAGE_EXECUTE = "X"
_STAGE_WAIT = "W"


def default_trace_prefix() -> str:
    """Validated accessor for ``REPRO_TRACE`` (the only place it is
    read): the output path prefix ``repro trace`` writes
    ``<prefix>.jsonl`` / ``<prefix>.kanata`` next to when ``--out`` is
    not given.  Any non-empty string is a valid prefix."""
    return os.environ.get("REPRO_TRACE", "").strip() or "trace"


class PipelineTracer:
    """Collects lifecycle events; optionally streams JSONL and writes a
    Konata pipetrace on :meth:`close`.

    ``collect=True`` additionally keeps every event as a dict in
    :attr:`events` (the test-suite mode).  The counters
    (:attr:`retires`, :attr:`squashes`, ...) are always maintained, so a
    memory-only tracer can cross-validate against :class:`SimStats`
    without any I/O.
    """

    def __init__(self, jsonl_path: Optional[str] = None,
                 konata_path: Optional[str] = None,
                 collect: bool = False) -> None:
        self._jsonl = open(jsonl_path, "w", encoding="utf-8") \
            if jsonl_path else None
        self._konata_path = konata_path
        self.collect = collect
        self.events: List[Dict[str, Any]] = []
        #: seq -> in-flight Konata record state (id, current stage).
        self._live: Dict[int, Tuple[int, str]] = {}
        #: (cycle, record id, line-order, text) tuples, replay-sorted.
        self._konata_events: List[Tuple[int, int, int, str]] = []
        self._next_id = 0
        self._next_retire_id = 1
        self._last_cycle = 0
        self.fetches = 0
        self.renames = 0
        self.dispatches = 0
        self.issues = 0
        self.completes = 0
        self.retires = 0
        self.squashes = 0
        self.closed = False

    # ------------------------------------------------------------------
    def _emit(self, event: str, dyn, cycle: int, **extra: Any) -> None:
        if cycle > self._last_cycle:
            self._last_cycle = cycle
        if self._jsonl is None and not self.collect:
            return
        record: Dict[str, Any] = {
            "event": event, "seq": dyn.seq, "cycle": cycle,
            "pc": dyn.pc, "op": dyn.op.value,
        }
        record.update(extra)
        if self._jsonl is not None:
            self._jsonl.write(json.dumps(record, sort_keys=True) + "\n")
        if self.collect:
            self.events.append(record)

    def _konata(self, cycle: int, rec_id: int, text: str) -> None:
        if self._konata_path is not None:
            self._konata_events.append(
                (cycle, rec_id, len(self._konata_events), text))

    def _stage_change(self, seq: int, cycle: int, stage: str) -> None:
        entry = self._live.get(seq)
        if entry is None:
            return
        rec_id, current = entry
        if current == stage:
            return
        self._konata(cycle, rec_id, f"E\t{rec_id}\t0\t{current}")
        self._konata(cycle, rec_id, f"S\t{rec_id}\t0\t{stage}")
        self._live[seq] = (rec_id, stage)

    def _finalize(self, dyn, cycle: int, flushed: bool) -> None:
        entry = self._live.pop(dyn.seq, None)
        if entry is None:
            return
        rec_id, current = entry
        self._konata(cycle, rec_id, f"E\t{rec_id}\t0\t{current}")
        retire_id = self._next_retire_id
        self._next_retire_id += 1
        self._konata(cycle, rec_id,
                     f"R\t{rec_id}\t{retire_id}\t{1 if flushed else 0}")

    # ------------------------------------------------------------------
    # the stage hooks
    # ------------------------------------------------------------------
    def on_fetch(self, dyn, cycle: int) -> None:
        self.fetches += 1
        self._emit("fetch", dyn, cycle)
        if self._konata_path is not None:
            rec_id = self._next_id
            self._next_id += 1
            self._live[dyn.seq] = (rec_id, _STAGE_FETCH)
            self._konata(cycle, rec_id, f"I\t{rec_id}\t{dyn.seq}\t0")
            self._konata(cycle, rec_id,
                         f"L\t{rec_id}\t0\t{dyn.seq}: "
                         f"{dyn.op.value} @0x{dyn.pc:x}")
            self._konata(cycle, rec_id, f"S\t{rec_id}\t0\t{_STAGE_FETCH}")
        elif self.collect:
            self._live[dyn.seq] = (dyn.seq, _STAGE_FETCH)

    def on_rename(self, dyn, cycle: int) -> None:
        self.renames += 1
        self._emit("rename", dyn, cycle, integrated=dyn.integrated)
        self._stage_change(dyn.seq, cycle, _STAGE_RENAME)
        if dyn.dispatch_cycle == cycle:
            self.dispatches += 1
            self._emit("dispatch", dyn, cycle)
        elif dyn.completed:
            # Integrated / rename-complete instructions finish here and
            # wait for retirement; they never issue.
            self.completes += 1
            self._emit("complete", dyn, cycle)
            self._stage_change(dyn.seq, cycle, _STAGE_WAIT)

    def on_issue(self, dyn, cycle: int) -> None:
        self.issues += 1
        self._emit("issue", dyn, cycle)
        self._stage_change(dyn.seq, cycle, _STAGE_EXECUTE)

    def on_complete(self, dyn, cycle: int) -> None:
        self.completes += 1
        self._emit("complete", dyn, cycle)
        self._stage_change(dyn.seq, cycle, _STAGE_WAIT)

    def on_retire(self, dyn, cycle: int) -> None:
        self.retires += 1
        self._emit("retire", dyn, cycle, integrated=dyn.integrated,
                   mis_integrated=dyn.mis_integrated)
        self._finalize(dyn, cycle, flushed=False)

    def on_squash(self, dyn, cycle: int) -> None:
        self.squashes += 1
        self._emit("squash", dyn, cycle)
        self._finalize(dyn, cycle, flushed=True)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and close outputs (idempotent).

        Instructions still in flight (the machine halted around them) are
        finalized as flushed at the last observed cycle, so the Konata
        replay is well-formed and its retired count stays exact.
        """
        if self.closed:
            return
        self.closed = True
        for seq in sorted(self._live):
            rec_id, current = self._live[seq]
            self._konata(self._last_cycle, rec_id,
                         f"E\t{rec_id}\t0\t{current}")
            self._konata(self._last_cycle, rec_id,
                         f"R\t{rec_id}\t{self._next_retire_id}\t1")
            self._next_retire_id += 1
        self._live.clear()
        if self._jsonl is not None:
            self._jsonl.close()
            self._jsonl = None
        if self._konata_path is not None:
            with open(self._konata_path, "w", encoding="utf-8") as out:
                out.write("Kanata\t0004\n")
                self._konata_events.sort(key=lambda e: (e[0], e[2]))
                cycle = self._konata_events[0][0] if self._konata_events else 0
                out.write(f"C=\t{cycle}\n")
                for event_cycle, _, _, text in self._konata_events:
                    if event_cycle > cycle:
                        out.write(f"C\t{event_cycle - cycle}\n")
                        cycle = event_cycle
                    out.write(text + "\n")
            self._konata_events = []

    def __enter__(self) -> "PipelineTracer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
