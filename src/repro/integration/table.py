"""The integration table (IT).

The IT stores operation descriptor tuples of recently renamed instructions::

    <operation (opcode/immediate or PC), in1 (+gen), in2 (+gen), out (+gen)>

Lookups hash the instruction's index fields to a set and compare a minimal
tag; the integration *logic* then performs the full operational-equivalence
test (input physical registers and generations) on the returned candidates.
Replacement within a set is LRU, which together with FIFO physical-register
reclamation approximates the joint IT/state-vector management of the
original squash-reuse design (paper Section 2.2, implementation issues).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.integration.config import IndexScheme
from repro.isa.opcodes import Opcode
from repro.isa.program import INST_SIZE


class ITEntry:
    """One integration-table entry."""

    __slots__ = ("pc", "opcode", "imm", "in1", "gen1", "in2", "gen2",
                 "out", "out_gen", "branch_outcome", "is_reverse",
                 "creator_seq", "call_depth", "lru")

    def __init__(self, pc: int, opcode: Opcode, imm: Optional[int],
                 in1: Optional[int], gen1: int,
                 in2: Optional[int], gen2: int,
                 out: Optional[int], out_gen: int,
                 is_reverse: bool = False, creator_seq: int = 0,
                 call_depth: int = 0):
        self.pc = pc
        self.opcode = opcode
        self.imm = imm
        self.in1 = in1
        self.gen1 = gen1
        self.in2 = in2
        self.gen2 = gen2
        self.out = out
        self.out_gen = out_gen
        self.branch_outcome: Optional[bool] = None
        self.is_reverse = is_reverse
        self.creator_seq = creator_seq
        self.call_depth = call_depth
        self.lru = 0

    def inputs_match(self, pregs: List[int], gens: List[int]) -> bool:
        """Operational-equivalence test on the input physical registers.

        Both the register numbers and their generation counters must match
        (the generation comparison is what suppresses register
        mis-integrations after a register has been reallocated).  Written
        allocation-free: the rename stage runs this for every candidate of
        every renamed instruction.
        """
        idx = 0
        n = len(pregs)
        if self.in1 is not None:
            if n == 0 or pregs[0] != self.in1 or gens[0] != self.gen1:
                return False
            idx = 1
        if self.in2 is not None:
            if idx >= n or pregs[idx] != self.in2 or gens[idx] != self.gen2:
                return False
            idx += 1
        return idx == n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "rev" if self.is_reverse else "dir"
        return (f"<ITEntry {kind} {self.opcode.value}/{self.imm} "
                f"in=({self.in1},{self.in2}) out={self.out}>")


@dataclass
class ITStats:
    lookups: int = 0
    tag_hits: int = 0
    insertions: int = 0
    reverse_insertions: int = 0
    evictions: int = 0


class IntegrationTable:
    """Set-associative, LRU-replaced integration table."""

    def __init__(self, entries: int = 1024, assoc: int = 4,
                 scheme: IndexScheme = IndexScheme.OPCODE_IMM_CALLDEPTH):
        if entries <= 0:
            raise ValueError("IT needs at least one entry")
        if assoc == 0 or assoc >= entries:
            assoc = entries          # fully associative
        if entries % assoc:
            raise ValueError("IT entry count must be a multiple of the "
                             "associativity")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        self.scheme = scheme
        # Scheme flags hoisted out of the per-lookup path.
        self._pc_scheme = scheme is IndexScheme.PC
        self._depth_in_index = scheme is IndexScheme.OPCODE_IMM_CALLDEPTH
        self._sets: List[List[ITEntry]] = [[] for _ in range(self.num_sets)]
        self._tick = 0
        self.stats = ITStats()

    # ------------------------------------------------------------------
    # index and tag functions (paper Section 2.3)
    # ------------------------------------------------------------------
    def index_of(self, pc: int, opcode: Opcode, imm: Optional[int],
                 call_depth: int) -> int:
        if self._pc_scheme:
            key = pc // INST_SIZE
        else:
            opcode_id = _OPCODE_IDS[opcode]
            key = opcode_id ^ ((imm or 0) & 0xFFFF)
            if self._depth_in_index:
                key ^= call_depth
        return key % self.num_sets

    # ------------------------------------------------------------------
    def lookup(self, pc: int, opcode: Opcode, imm: Optional[int],
               call_depth: int) -> List[ITEntry]:
        """Return the candidate entries whose tag matches, most recently
        used first.

        The tag is minimal: the full PC under PC indexing, otherwise
        opcode + immediate (the call depth only augments the index, so
        instructions from different depths can still match within a set).
        """
        self.stats.lookups += 1
        index = self.index_of(pc, opcode, imm, call_depth)
        cache_set = self._sets[index]
        if self._pc_scheme:
            matches = [entry for entry in cache_set if entry.pc == pc]
        else:
            matches = [entry for entry in cache_set
                       if entry.opcode is opcode and entry.imm == imm]
        if matches:
            self.stats.tag_hits += 1
            matches.sort(key=_lru_key, reverse=True)
        return matches

    def lookup_inst(self, inst, call_depth: int) -> List[ITEntry]:
        """``lookup`` using a static instruction's precomputed index key
        (``StaticInst.it_key``); identical results and statistics."""
        stats = self.stats
        stats.lookups += 1
        if self._pc_scheme:
            pc = inst.pc
            cache_set = self._sets[(pc // INST_SIZE) % self.num_sets]
            matches = [entry for entry in cache_set if entry.pc == pc]
        else:
            key = inst.it_key
            if self._depth_in_index:
                key ^= call_depth
            cache_set = self._sets[key % self.num_sets]
            opcode = inst.op
            imm = inst.imm
            matches = [entry for entry in cache_set
                       if entry.opcode is opcode and entry.imm == imm]
        if matches:
            stats.tag_hits += 1
            if len(matches) > 1:
                matches.sort(key=_lru_key, reverse=True)
        return matches

    def touch(self, entry: ITEntry) -> None:
        """Refresh an entry's LRU position (called on successful integration)."""
        self._tick += 1
        entry.lru = self._tick

    def insert(self, entry: ITEntry, call_depth: int) -> ITEntry:
        """Insert ``entry``, evicting the LRU entry of its set if full."""
        index = self.index_of(entry.pc, entry.opcode, entry.imm, call_depth)
        cache_set = self._sets[index]
        self._tick += 1
        entry.lru = self._tick
        self.stats.insertions += 1
        if entry.is_reverse:
            self.stats.reverse_insertions += 1
        if len(cache_set) >= self.assoc:
            victim = 0
            victim_lru = cache_set[0].lru
            for i in range(1, len(cache_set)):
                lru = cache_set[i].lru
                if lru < victim_lru:
                    victim, victim_lru = i, lru
            cache_set[victim] = entry
            self.stats.evictions += 1
        else:
            cache_set.append(entry)
        return entry

    def invalidate_output(self, preg: int) -> int:
        """Drop every entry whose output is ``preg``.

        The paper notes this 'complete solution' to register mis-integration
        is too expensive in hardware (associative search); it is provided
        here for tests and the generation-counter ablation.
        """
        removed = 0
        for cache_set in self._sets:
            keep = [entry for entry in cache_set if entry.out != preg]
            removed += len(cache_set) - len(keep)
            cache_set[:] = keep
        return removed

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def __iter__(self):
        for cache_set in self._sets:
            yield from cache_set


def _lru_key(entry: ITEntry) -> int:
    return entry.lru


_OPCODE_IDS = {op: i for i, op in enumerate(Opcode)}
