"""Rename-time integration logic.

For every instruction being renamed the logic performs the operational
equivalence test against the integration table: same operation (PC or
opcode/immediate depending on the index scheme) applied to the same physical
input registers at the same generations, with an integration-eligible output
register.  On success the instruction *integrates*: its destination logical
register is simply pointed at the existing physical register and the
instruction bypasses the out-of-order execution engine.  On failure the
instruction is renamed conventionally and new IT entries are created --
including *reverse* entries for stack stores and stack-pointer adjustments
(extension 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.integration.config import IntegrationConfig, IndexScheme, LispMode
from repro.integration.lisp import LoadIntegrationSuppressionPredictor
from repro.integration.table import IntegrationTable, ITEntry
from repro.isa.instruction import DynInst
from repro.isa.opcodes import Opcode, load_counterpart
from repro.isa.registers import REG_SP
from repro.rename.physical import PhysicalRegisterFile

# Callback used to approximate oracle load-mis-integration suppression: given
# the dynamic load and the candidate entry, return True to allow integration.
OracleCheck = Callable[[DynInst, ITEntry], bool]


@dataclass(slots=True)
class IntegrationDecision:
    """Result of the rename-time integration test for one instruction."""

    integrate: bool
    entry: Optional[ITEntry] = None
    suppressed_by_lisp: bool = False
    suppressed_by_oracle: bool = False
    tag_hit: bool = False

    @property
    def is_reverse(self) -> bool:
        return bool(self.entry is not None and self.entry.is_reverse)


NO_INTEGRATION = IntegrationDecision(integrate=False)


class IntegrationLogic:
    """The integration test plus IT entry creation."""

    def __init__(self, config: IntegrationConfig, prf: PhysicalRegisterFile,
                 table: Optional[IntegrationTable] = None,
                 lisp: Optional[LoadIntegrationSuppressionPredictor] = None):
        self.config = config
        self.prf = prf
        self.table = table or IntegrationTable(config.it_entries,
                                               config.it_assoc,
                                               config.index_scheme)
        if lisp is None and config.lisp_mode is LispMode.REALISTIC:
            lisp = LoadIntegrationSuppressionPredictor(config.lisp_entries,
                                                       config.lisp_assoc)
        self.lisp = lisp
        # Config-derived constants hoisted out of the per-rename path (the
        # config is immutable for the lifetime of the logic).
        self._enabled = config.enabled
        self._lisp_realistic = (config.lisp_mode is LispMode.REALISTIC
                                and lisp is not None)
        self._squash_only = not config.general_reuse
        self._oracle_loads = config.lisp_mode is LispMode.ORACLE

    # ------------------------------------------------------------------
    # the integration test
    # ------------------------------------------------------------------
    def consider(self, dyn: DynInst, call_depth: int,
                 oracle_allow: Optional[OracleCheck] = None
                 ) -> IntegrationDecision:
        """Decide whether ``dyn`` can integrate an existing result.

        ``dyn`` must already have its source physical registers looked up
        (``src_pregs``/``src_gens``).  ``oracle_allow`` implements oracle
        load-suppression when the configuration asks for it.
        """
        if not self._enabled:
            return NO_INTEGRATION
        info = dyn.info
        if not info.integrable:
            return NO_INTEGRATION
        inst = dyn.inst

        is_load_op = info.is_load
        if is_load_op and self._lisp_realistic:
            if self.lisp.suppresses(inst.pc):
                return IntegrationDecision(integrate=False,
                                           suppressed_by_lisp=True)

        candidates = self.table.lookup_inst(inst, call_depth)
        if not candidates:
            return NO_INTEGRATION

        squash_only = self._squash_only
        is_branch_op = info.is_cond_branch
        oracle_suppressed = False
        for entry in candidates:
            if not entry.inputs_match(dyn.src_pregs, dyn.src_gens):
                continue
            if is_branch_op:
                if entry.branch_outcome is None:
                    continue
            else:
                if entry.out is None:
                    continue
                if not self.prf.integration_eligible(entry.out, entry.out_gen,
                                                     squash_only=squash_only):
                    continue
            if (is_load_op and self._oracle_loads
                    and oracle_allow is not None
                    and not oracle_allow(dyn, entry)):
                oracle_suppressed = True
                continue
            self.table.touch(entry)
            return IntegrationDecision(integrate=True, entry=entry,
                                       tag_hit=True,
                                       suppressed_by_oracle=oracle_suppressed)
        return IntegrationDecision(integrate=False, tag_hit=True,
                                   suppressed_by_oracle=oracle_suppressed)

    # ------------------------------------------------------------------
    # entry creation (integration failed, or store reverse entries)
    # ------------------------------------------------------------------
    def create_entries(self, dyn: DynInst, call_depth: int) -> None:
        """Create IT entries for an instruction that did not integrate.

        Direct entries describe the instruction itself; reverse entries
        describe its inverse (extension 3): a store creates the
        complementary load entry, a stack-pointer ``lda`` creates the entry
        for the opposite adjustment.
        """
        config = self.config
        if not self._enabled:
            return
        inst = dyn.inst
        op = dyn.op
        info = dyn.info

        if info.is_store:
            self._maybe_create_store_reverse(dyn, call_depth)
            return
        if not info.integrable:
            return

        in1 = dyn.src_pregs[0] if len(dyn.src_pregs) > 0 else None
        gen1 = dyn.src_gens[0] if len(dyn.src_gens) > 0 else 0
        in2 = dyn.src_pregs[1] if len(dyn.src_pregs) > 1 else None
        gen2 = dyn.src_gens[1] if len(dyn.src_gens) > 1 else 0

        if info.is_cond_branch:
            entry = ITEntry(inst.pc, op, inst.imm, in1, gen1, in2, gen2,
                            out=None, out_gen=0, creator_seq=dyn.seq,
                            call_depth=call_depth)
            dyn.it_entry = self.table.insert(entry, call_depth)
            return

        if dyn.dest_preg is None:
            return
        entry = ITEntry(inst.pc, op, inst.imm, in1, gen1, in2, gen2,
                        out=dyn.dest_preg, out_gen=dyn.dest_gen,
                        creator_seq=dyn.seq, call_depth=call_depth)
        dyn.it_entry = self.table.insert(entry, call_depth)

        # Reverse entry for stack-pointer adjustments: lda sp, imm(sp)
        # creates <lda/-imm, new_sp, -, old_sp>.
        if (config.reverse and op is Opcode.LDA
                and inst.rd == REG_SP and inst.ra == REG_SP):
            rev = ITEntry(inst.pc, Opcode.LDA, -(inst.imm or 0),
                          in1=dyn.dest_preg, gen1=dyn.dest_gen,
                          in2=None, gen2=0,
                          out=in1, out_gen=gen1,
                          is_reverse=True, creator_seq=dyn.seq,
                          call_depth=call_depth)
            self.table.insert(rev, call_depth)

    def _maybe_create_store_reverse(self, dyn: DynInst,
                                    call_depth: int) -> None:
        """Create the complementary-load entry for a (stack) store."""
        config = self.config
        if not config.reverse:
            return
        inst = dyn.inst
        if config.reverse_sp_only and inst.rb != REG_SP:
            return
        # Store sources are [data, base]; the reverse load reads the base and
        # produces the data register.
        data_preg, base_preg = dyn.src_pregs[0], dyn.src_pregs[1]
        data_gen, base_gen = dyn.src_gens[0], dyn.src_gens[1]
        rev = ITEntry(inst.pc, load_counterpart(inst.op), inst.imm,
                      in1=base_preg, gen1=base_gen, in2=None, gen2=0,
                      out=data_preg, out_gen=data_gen,
                      is_reverse=True, creator_seq=dyn.seq,
                      call_depth=call_depth)
        self.table.insert(rev, call_depth)

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def record_branch_outcome(self, dyn: DynInst, taken: bool) -> None:
        """Fill in the resolved direction of a branch's IT entry so younger
        instances can integrate (bypass execution and resolve early)."""
        entry = dyn.it_entry
        if entry is not None and entry.out is None:
            entry.branch_outcome = taken

    def train_lisp(self, pc: int) -> None:
        """Record a load mis-integration detected by DIVA."""
        if self.lisp is not None:
            self.lisp.train(pc)
