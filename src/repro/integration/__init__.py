"""Register integration: the paper's primary contribution.

The integration machinery lives entirely around the rename stage:

* :class:`IntegrationTable` (IT) -- a set-associative table of
  ``<operation, input physical registers (+generations), output physical
  register (+generation)>`` tuples describing recently renamed operations.
  Three index schemes are provided: PC (the original squash-reuse scheme),
  opcode+immediate, and the paper's enhanced opcode+immediate+call-depth
  scheme (extension 2).
* :class:`IntegrationLogic` -- the rename-time operational-equivalence test
  and entry creation, including *reverse* entries for stack stores and
  stack-pointer adjustments (extension 3, speculative memory bypassing).
* :class:`LoadIntegrationSuppressionPredictor` (LISP) -- a PC-indexed tag
  cache that learns load mis-integrations detected by DIVA and suppresses
  the offending loads in the future.
* :class:`IntegrationConfig` -- one knob per extension plus the table
  geometries, with presets matching the paper's Figure 4 configurations.
"""

from repro.integration.config import IntegrationConfig, IndexScheme, LispMode
from repro.integration.table import IntegrationTable, ITEntry, ITStats
from repro.integration.lisp import LoadIntegrationSuppressionPredictor
from repro.integration.logic import IntegrationLogic, IntegrationDecision

__all__ = [
    "IntegrationConfig",
    "IndexScheme",
    "LispMode",
    "IntegrationTable",
    "ITEntry",
    "ITStats",
    "LoadIntegrationSuppressionPredictor",
    "IntegrationLogic",
    "IntegrationDecision",
]
