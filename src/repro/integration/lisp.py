"""Load Integration Suppression Predictor (LISP).

A PC-indexed, set-associative *tag cache*: a hit suppresses integration of
the load.  PCs are inserted when DIVA detects a load mis-integration, so the
predictor is deliberately over-biased toward suppression -- it prefers false
suppressions (lost integrations) over repeated mis-integrations, each of
which costs a full pipeline flush (paper Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.isa.program import INST_SIZE


@dataclass
class LispStats:
    queries: int = 0
    suppressions: int = 0
    insertions: int = 0


class LoadIntegrationSuppressionPredictor:
    """Set-associative tag cache of load PCs whose integration is suppressed."""

    def __init__(self, entries: int = 1024, assoc: int = 2):
        if entries <= 0:
            raise ValueError("LISP needs at least one entry")
        if assoc == 0 or assoc >= entries:
            assoc = entries
        if entries % assoc:
            raise ValueError("LISP entry count must be a multiple of the "
                             "associativity")
        self.entries = entries
        self.assoc = assoc
        self.num_sets = entries // assoc
        # each set maps pc -> last-touch tick (LRU)
        self._sets: List[Dict[int, int]] = [dict() for _ in range(self.num_sets)]
        self._tick = 0
        self.stats = LispStats()

    def _index(self, pc: int) -> int:
        return (pc // INST_SIZE) % self.num_sets

    def suppresses(self, pc: int) -> bool:
        """True if integration of the load at ``pc`` should be suppressed."""
        self.stats.queries += 1
        lisp_set = self._sets[self._index(pc)]
        if pc in lisp_set:
            self._tick += 1
            lisp_set[pc] = self._tick
            self.stats.suppressions += 1
            return True
        return False

    def train(self, pc: int) -> None:
        """Record a load mis-integration at ``pc``."""
        lisp_set = self._sets[self._index(pc)]
        self._tick += 1
        self.stats.insertions += 1
        if pc in lisp_set:
            lisp_set[pc] = self._tick
            return
        if len(lisp_set) >= self.assoc:
            victim = min(lisp_set, key=lisp_set.get)
            del lisp_set[victim]
        lisp_set[pc] = self._tick
