"""Integration configuration knobs and the paper's named presets."""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.serialization import SerializableConfig


class IndexScheme(enum.Enum):
    """How the integration table is indexed (paper Section 2.3)."""

    PC = "pc"                                  # original squash-reuse scheme
    OPCODE_IMM = "opcode_imm"                  # opcode ^ immediate
    OPCODE_IMM_CALLDEPTH = "opcode_imm_calldepth"  # enhanced: ^ call depth


class LispMode(enum.Enum):
    """Load-integration suppression flavour."""

    OFF = "off"
    REALISTIC = "realistic"
    ORACLE = "oracle"


@dataclass(frozen=True)
class IntegrationConfig(SerializableConfig):
    """All integration parameters.

    The default values reproduce the paper's baseline configuration: a
    1K-entry, 4-way set-associative IT indexed by
    opcode XOR immediate XOR call-depth, 1K physical registers, 4-bit
    generation counters, 4-bit reference counters, a 1K-entry 2-way LISP,
    and reverse entries for stack-pointer saves/restores.
    """

    enabled: bool = True
    # Extension 1: general reuse (False restricts eligibility to registers
    # freed by squashes, the original squash-reuse discipline).
    general_reuse: bool = True
    # Extension 2: IT index scheme.
    index_scheme: IndexScheme = IndexScheme.OPCODE_IMM_CALLDEPTH
    # Extension 3: reverse integration (speculative memory bypassing).
    reverse: bool = True
    reverse_sp_only: bool = True

    # Integration table geometry.
    it_entries: int = 1024
    it_assoc: int = 4          # 0 means fully associative

    # Register mis-integration control.
    generation_bits: int = 4
    refcount_bits: int = 4

    # Load mis-integration control.
    lisp_mode: LispMode = LispMode.REALISTIC
    lisp_entries: int = 1024
    lisp_assoc: int = 2

    # Physical register file size (the paper simulates 1K registers).
    num_physical_regs: int = 1024

    # ------------------------------------------------------------------
    # presets matching the paper's Figure 4 experiment bars
    # ------------------------------------------------------------------
    @classmethod
    def disabled(cls) -> "IntegrationConfig":
        """No integration at all (the speedup baseline)."""
        return cls(enabled=False)

    @classmethod
    def squash(cls, **overrides) -> "IntegrationConfig":
        """Baseline squash reuse: PC indexing, no simultaneous sharing."""
        cfg = cls(general_reuse=False, index_scheme=IndexScheme.PC,
                  reverse=False)
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def general(cls, **overrides) -> "IntegrationConfig":
        """+general: reference-counted sharing, still PC-indexed."""
        cfg = cls(general_reuse=True, index_scheme=IndexScheme.PC,
                  reverse=False)
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def opcode(cls, **overrides) -> "IntegrationConfig":
        """+opcode: enhanced opcode/immediate/call-depth indexing."""
        cfg = cls(general_reuse=True,
                  index_scheme=IndexScheme.OPCODE_IMM_CALLDEPTH,
                  reverse=False)
        return replace(cfg, **overrides) if overrides else cfg

    @classmethod
    def full(cls, **overrides) -> "IntegrationConfig":
        """+reverse: everything on (the paper's headline configuration)."""
        cfg = cls()
        return replace(cfg, **overrides) if overrides else cfg

    # alias used by the experiment harness
    reverse_preset = full

    def with_lisp(self, mode: LispMode) -> "IntegrationConfig":
        return replace(self, lisp_mode=mode)

    def describe(self) -> str:
        """One-line human-readable description (used in reports)."""
        if not self.enabled:
            return "no-integration"
        parts = ["squash" if not self.general_reuse else "general",
                 self.index_scheme.value]
        if self.reverse:
            parts.append("reverse")
        parts.append(f"IT={self.it_entries}x{self.it_assoc or 'full'}")
        parts.append(f"LISP={self.lisp_mode.value}")
        return "+".join(parts[:3]) + " " + " ".join(parts[3:])
