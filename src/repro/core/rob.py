"""Reorder buffer: the in-order window of in-flight instructions."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.isa.instruction import DynInst


class ReorderBuffer:
    """A bounded FIFO of in-flight dynamic instructions.

    Instructions enter at rename and leave either at retirement (from the
    head) or during a squash (from the tail, youngest first) -- the squash
    order is what lets the renamer undo map-table and reference-count
    updates serially.
    """

    def __init__(self, size: int):
        self.size = size
        self._entries: Deque[DynInst] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.size

    @property
    def empty(self) -> bool:
        return not self._entries

    def push(self, dyn: DynInst) -> None:
        if self.full:
            raise RuntimeError("ROB overflow")
        dyn.rob_index = len(self._entries)
        self._entries.append(dyn)

    def head(self) -> Optional[DynInst]:
        return self._entries[0] if self._entries else None

    def pop_head(self) -> DynInst:
        return self._entries.popleft()

    def squash_younger_than(self, seq: int) -> List[DynInst]:
        """Remove (and return, youngest first) every instruction with a
        sequence number strictly greater than ``seq``."""
        squashed: List[DynInst] = []
        while self._entries and self._entries[-1].seq > seq:
            squashed.append(self._entries.pop())
        return squashed

    def squash_all(self) -> List[DynInst]:
        """Remove every instruction (youngest first)."""
        squashed = list(reversed(self._entries))
        self._entries.clear()
        return squashed

    def younger_than(self, seq: int) -> List[DynInst]:
        """Peek at the instructions younger than ``seq`` without removal."""
        return [dyn for dyn in self._entries if dyn.seq > seq]
