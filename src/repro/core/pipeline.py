r"""The cycle-level out-of-order processor engine.

:class:`Processor` is a thin engine: it instantiates every substrate (branch
prediction, renaming + integration, the reservation-station scheduler, the
load/store queue, the memory hierarchy and the DIVA checker), wires them
into the four stage components of :mod:`repro.core.stages`, and advances the
clock.  All per-stage behaviour lives in the stage classes.

Pipeline organisation (13 stages, paper Section 3.1)::

    fetch(3)  decode(1)  rename(1) | schedule(2) regread(2) execute  wb(1) | DIVA(1) retire(1)
    \------ FrontEnd ------/\-- RenameIntegrate  \--- IssueExecute ---/\- CommitDiva -/

Integrating instructions leave the pipeline at rename: they are never
allocated reservation stations, never issue, and never touch the data cache;
they wait in the reorder buffer until their (shared) physical register value
is ready and then pass through DIVA and retirement like everything else.

Each simulated cycle runs writeback, commit, issue, rename and fetch -- in
that order, so results written back in cycle N are visible to retirement in
the same cycle, matching the seed model exactly.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import MachineConfig
from repro.core.diva import DivaChecker, SimulationError
from repro.core.lsq import CollisionHistoryTable, LoadStoreQueue
from repro.core.rob import ReorderBuffer
from repro.core.scheduler import ReservationStations
from repro.core.stages import (
    CommitDiva,
    FrontEnd,
    IssueExecute,
    PipelineState,
    RecoveryController,
    RenameIntegrate,
    Stage,
)
from repro.core.stats import SimStats
from repro.frontend.branch_predictor import BranchPredictor
from repro.functional.memory import SparseMemory
from repro.functional.state import ArchState
from repro.integration.logic import IntegrationLogic
from repro.isa.program import Program
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rename.map_table import MapTable
from repro.rename.physical import PhysicalRegisterFile
from repro.rename.renamer import Renamer


class Processor:
    """Cycle-level model of the paper's 4-way superscalar machine."""

    def __init__(self, program: Program,
                 config: Optional[MachineConfig] = None,
                 name: Optional[str] = None,
                 initial_state: Optional[ArchState] = None):
        self.program = program
        self.config = config or MachineConfig()
        icfg = self.config.integration

        # Architectural (committed) state -- owned by the DIVA checker.
        # ``initial_state`` resumes from a functional checkpoint (the
        # retirement stream is the functional stream, so a checkpoint after k
        # instructions is exactly the machine state after k retirements); it
        # is copied so the caller's checkpoint stays reusable.
        if initial_state is not None:
            arch = initial_state.copy()
        else:
            arch = ArchState(memory=SparseMemory(program.data),
                             pc=program.entry)
        diva = DivaChecker(arch)

        # Substrates.
        mem = MemoryHierarchy(self.config.memsys)
        predictor = BranchPredictor(self.config.branch_predictor)

        # Renaming + integration.
        prf = PhysicalRegisterFile(icfg.num_physical_regs,
                                   icfg.generation_bits,
                                   icfg.refcount_bits)
        map_table = MapTable()
        renamer = Renamer(map_table, prf)
        renamer.initialize_from_values(arch.regs)
        integration = IntegrationLogic(icfg, prf)

        # Out-of-order engine.  The scheduler is bound to the PRF so operand
        # readiness is tracked by wakeup events instead of per-cycle scans.
        rob = ReorderBuffer(self.config.rob_size)
        rs = ReservationStations(self.config.rs_entries,
                                 self.config.ports,
                                 self.config.combined_ldst_port,
                                 prf=prf)
        prf.on_ready = rs.wakeup
        lsq = LoadStoreQueue(self.config.lsq_size)
        cht = CollisionHistoryTable(self.config.collision_history_entries)

        stats = SimStats(benchmark=name or program.name,
                         config_name=icfg.describe())

        # Shared datapath + stage components.
        self.state = PipelineState(
            program=program, config=self.config, arch=arch, diva=diva,
            mem=mem, predictor=predictor, prf=prf, map_table=map_table,
            renamer=renamer, integration=integration, rob=rob, rs=rs,
            lsq=lsq, cht=cht, stats=stats)
        self.front_end = FrontEnd(self.state)
        self.recovery = RecoveryController(self.state, self.front_end)
        self.rename_integrate = RenameIntegrate(self.state, self.front_end,
                                                self.recovery)
        self.issue_execute = IssueExecute(self.state, self.recovery)
        self.commit_diva = CommitDiva(self.state, self.recovery)
        #: Program order of the stage components (front of the pipe first).
        self.stages: Tuple[Stage, ...] = (
            self.front_end, self.rename_integrate, self.issue_execute,
            self.commit_diva)

        # Counter baselines, advanced past the stats-discarded warm-up phase
        # of a sliced run (zero for ordinary whole-program runs).
        self._cycle_base = 0
        self._cht_hits_base = 0
        self._cht_trainings_base = 0

        # Convenience aliases kept for tests, tools and documentation.
        self.arch = arch
        self.diva = diva
        self.mem = mem
        self.predictor = predictor
        self.prf = prf
        self.map_table = map_table
        self.renamer = renamer
        self.integration = integration
        self.rob = rob
        self.rs = rs
        self.lsq = lsq
        self.cht = cht
        self.stats = stats

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.state.cycle

    @property
    def fetch_queue(self):
        return self.front_end.fetch_queue

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole machine by one cycle.

        Back-to-front evaluation: results written back this cycle are
        visible to retirement, freed resources are visible to rename, and
        redirects take effect before the next fetch.
        """
        state = self.state
        self.issue_execute.writeback()
        self.commit_diva.tick()
        self.issue_execute.tick()
        self.rename_integrate.tick()
        self.front_end.tick()
        state.stats.rs_occupancy_sum += state.rs.occupancy
        state.stats.rs_occupancy_samples += 1
        state.cycle += 1

    def _run_phase(self, budget: Optional[int]) -> None:
        """Advance the clock until halt or exactly ``budget`` retirements.

        The commit stage refuses to retire past ``state.retire_budget``, so
        the machine stops on a precise architectural instruction boundary
        (the property sharded slices rely on to recombine losslessly).
        """
        state = self.state
        config = self.config
        state.retire_budget = budget
        while not state.arch.halted:
            if budget is not None and state.stats.retired >= budget:
                break
            if state.cycle >= config.max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded {config.max_cycles} cycles")
            if state.cycle - state.last_retire_cycle > config.deadlock_cycles:
                raise SimulationError(
                    f"{self.program.name}: no retirement for "
                    f"{config.deadlock_cycles} cycles at cycle {state.cycle} "
                    f"(ROB={len(state.rob)}, RS={state.rs.occupancy})")
            self.step()

    def run(self, max_instructions: Optional[int] = None,
            warmup_instructions: int = 0) -> SimStats:
        """Simulate until the program exits (or a limit is hit).

        ``max_instructions`` is an *exact* retired-instruction budget.
        ``warmup_instructions`` retires that many instructions first in full
        detail but *discards* their statistics: microarchitectural state
        (caches, branch predictor, integration table) is warm when counting
        starts, which is what keeps a mid-program slice's IPC close to the
        same region of an uninterrupted run.  The warm-up instructions do
        advance architectural state, so a slice resumed from the checkpoint
        at ``boundary - warmup`` with ``warmup_instructions=warmup`` counts
        exactly the instructions in ``[boundary, boundary + budget)``.
        """
        state = self.state
        if warmup_instructions:
            self._run_phase(warmup_instructions)
            # Reset the counters; microarchitectural state stays warm.
            warm = state.stats
            fresh = SimStats(benchmark=warm.benchmark,
                             config_name=warm.config_name)
            state.stats = fresh
            self.stats = fresh
            self._cycle_base = state.cycle
            self._cht_hits_base = state.cht.hits
            self._cht_trainings_base = state.cht.trainings
        remaining = None
        if max_instructions is not None:
            remaining = max(0, max_instructions)
        self._run_phase(remaining)
        stats = state.stats
        stats.cycles = state.cycle - self._cycle_base
        stats.cht_hits = state.cht.hits - self._cht_hits_base
        stats.cht_trainings = state.cht.trainings - self._cht_trainings_base
        return stats


def simulate(program: Program, config: Optional[MachineConfig] = None,
             name: Optional[str] = None,
             max_instructions: Optional[int] = None,
             initial_state: Optional[ArchState] = None,
             warmup_instructions: int = 0) -> SimStats:
    """Convenience wrapper: build a :class:`Processor` and run it.

    ``initial_state`` starts the machine from an architectural checkpoint
    (see :func:`repro.functional.emulator.collect_checkpoints`);
    ``warmup_instructions`` retires a stats-discarded detailed warm-up
    first; ``max_instructions`` then stops the run after exactly that many
    counted retirements.  Together they simulate one slice of a sharded
    run.
    """
    processor = Processor(program, config=config, name=name,
                          initial_state=initial_state)
    return processor.run(max_instructions=max_instructions,
                         warmup_instructions=warmup_instructions)
