r"""The cycle-level out-of-order processor engine.

:class:`Processor` is a construction-free engine: a
:class:`~repro.core.builder.MachineBuilder` (resolved from the ``variant``
field of the :class:`~repro.core.config.MachineConfig` via the
:mod:`repro.variants` registry, or passed explicitly) assembles the
substrates and wires them into the four stage components of
:mod:`repro.core.stages`; the engine only advances the clock and enforces
the run limits.  All per-stage behaviour lives in the stage classes; all
per-slot construction lives in the builder.

Pipeline organisation (13 stages, paper Section 3.1)::

    fetch(3)  decode(1)  rename(1) | schedule(2) regread(2) execute  wb(1) | DIVA(1) retire(1)
    \------ FrontEnd ------/\-- RenameIntegrate  \--- IssueExecute ---/\- CommitDiva -/

Integrating instructions leave the pipeline at rename: they are never
allocated reservation stations, never issue, and never touch the data cache;
they wait in the reorder buffer until their (shared) physical register value
is ready and then pass through DIVA and retirement like everything else.

Each simulated cycle runs writeback, commit, issue, rename and fetch -- in
that order, so results written back in cycle N are visible to retirement in
the same cycle, matching the seed model exactly.
"""

from __future__ import annotations

import gc
import os
from heapq import heappop
from typing import Optional, Tuple

from repro.core.builder import MachineBuilder
from repro.core.config import MachineConfig
from repro.core.diva import SimulationError
from repro.core.stages import Stage
from repro.core.stages.commit import CommitDiva
from repro.core.stages.execute import IssueExecute
from repro.core.stages.frontend import FrontEnd
from repro.core.stages.rename import RenameIntegrate
from repro.core.stats import SimStats
from repro.functional.state import ArchState
from repro.isa.program import Program
from repro.obs.cpi import (
    CPI_FRONTEND_EMPTY,
    CPI_MEMORY,
    CPI_RENAME_STALL,
    CPI_RETIRED,
    CPI_WAITING_OPERANDS,
    classify_stall,
)


def fast_path_enabled() -> bool:
    """Validated accessor for ``REPRO_FAST_PATH`` (the only place it is
    read): any value but ``0`` keeps the fused quiescent-skipping driver
    available; ``0`` forces the generic :meth:`Processor.step` loop for
    equivalence testing."""
    return os.environ.get("REPRO_FAST_PATH", "1") != "0"


def elision_enabled() -> bool:
    """Validated accessor for ``REPRO_ELIDE`` (the only place it is read):
    any value but ``0`` lets the fused driver jump the clock across provably
    quiescent spans (event-horizon cycle elision); ``0`` forces per-cycle
    iteration for equivalence testing and timing-sensitive debugging."""
    return os.environ.get("REPRO_ELIDE", "1") != "0"


class Processor:
    """Cycle-level model of the paper's 4-way superscalar machine."""

    def __init__(self, program: Program,
                 config: Optional[MachineConfig] = None,
                 name: Optional[str] = None,
                 initial_state: Optional[ArchState] = None,
                 builder: Optional[MachineBuilder] = None,
                 tracer=None):
        self.program = program
        self.config = config or MachineConfig()
        if builder is None:
            # Resolved here (not at import) so repro.variants can import the
            # builder/stage modules without a cycle.
            from repro.variants import get_builder
            builder = get_builder(self.config.variant)()
        self.builder = builder

        machine = builder.build(program, self.config, name=name,
                                initial_state=initial_state)
        self.state = machine.state
        #: Optional :class:`~repro.obs.trace.PipelineTracer` receiving the
        #: per-instruction lifecycle hooks from every stage.  An active
        #: tracer disables span elision (there would be no per-cycle events
        #: to observe inside a jump); results are bit-identical either way.
        self.tracer = tracer
        self.state.tracer = tracer
        self.front_end = machine.front_end
        self.recovery = machine.recovery
        self.rename_integrate = machine.rename_integrate
        self.issue_execute = machine.issue_execute
        self.commit_diva = machine.commit_diva
        #: Program order of the stage components (front of the pipe first).
        self.stages: Tuple[Stage, ...] = machine.stages

        # Counter baselines, advanced past the stats-discarded warm-up phase
        # of a sliced run (zero for ordinary whole-program runs).
        self._cycle_base = 0
        self._cht_hits_base = 0
        self._cht_trainings_base = 0

        # Convenience aliases kept for tests, tools and documentation.
        state = self.state
        self.arch = state.arch
        self.diva = state.diva
        self.mem = state.mem
        self.predictor = state.predictor
        self.prf = state.prf
        self.map_table = state.map_table
        self.renamer = state.renamer
        self.integration = state.integration
        self.rob = state.rob
        self.rs = state.rs
        self.lsq = state.lsq
        self.cht = state.cht
        self.stats = state.stats

    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        return self.state.cycle

    @property
    def fetch_queue(self):
        return self.front_end.fetch_queue

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the whole machine by one cycle.

        Back-to-front evaluation: results written back this cycle are
        visible to retirement, freed resources are visible to rename, and
        redirects take effect before the next fetch.
        """
        state = self.state
        stats = state.stats
        retired_before = stats.retired
        self.issue_execute.writeback()
        self.commit_diva.tick()
        self.issue_execute.tick()
        self.rename_integrate.tick()
        self.front_end.tick()
        stats.rs_occupancy_sum += state.rs.occupancy
        stats.rs_occupancy_samples += 1
        if stats.retired != retired_before:
            stats.cpi_stack[CPI_RETIRED] += 1
        else:
            stats.cpi_stack[classify_stall(state)] += 1
        state.cycle += 1

    def _fast_path_eligible(self) -> bool:
        """Whether the fused quiescent-skipping loop may drive this machine.

        The fused loop decides *whether* each stage has work from the shared
        engine state, so it is only used when every stage is exactly the
        stock implementation (a variant that overrides a stage falls back to
        the generic :meth:`step` loop) and the scheduler tracks readiness
        through a bound PRF.  ``REPRO_FAST_PATH=0`` forces the generic loop
        for equivalence testing.
        """
        return (fast_path_enabled()
                and type(self.front_end) is FrontEnd
                and type(self.rename_integrate) is RenameIntegrate
                and type(self.issue_execute) is IssueExecute
                and type(self.commit_diva) is CommitDiva
                and self.state.rs._prf is not None)

    def _run_phase(self, budget: Optional[int]) -> None:
        """Advance the clock until halt or exactly ``budget`` retirements.

        The commit stage refuses to retire past ``state.retire_budget``, so
        the machine stops on a precise architectural instruction boundary
        (the property sharded slices rely on to recombine losslessly).
        """
        state = self.state
        config = self.config
        state.retire_budget = budget
        if self._fast_path_eligible():
            self._run_phase_fast(budget)
            return
        while not state.arch.halted:
            if budget is not None and state.stats.retired >= budget:
                break
            if state.cycle >= config.max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded {config.max_cycles} cycles")
            if state.cycle - state.last_retire_cycle > config.deadlock_cycles:
                raise SimulationError(
                    f"{self.program.name}: no retirement for "
                    f"{config.deadlock_cycles} cycles at cycle {state.cycle} "
                    f"(ROB={len(state.rob)}, RS={state.rs.occupancy})")
            self.step()

    def _elide_target(self, cycle: int) -> int:
        """The furthest cycle the clock may jump to from quiescent ``cycle``.

        Returns ``cycle`` itself when the machine is *not* provably
        quiescent (some stage would do work, or attempt work with side
        effects, this cycle).  The caller has already established that no
        writeback event is scheduled for ``cycle`` and the ready pool is
        empty; this method checks the remaining stages and computes the
        horizon -- the earliest future cycle at which any stage could act:

        * fetch -- quiescent when halted, the queue is full, or a redirect
          is in flight (clamps the jump to ``fetch_resume_cycle``);
        * rename -- quiescent when the queue head has not decoded yet
          (clamps to its ready cycle) or is structurally blocked on a full
          ROB/RS/LSQ.  An unblocked head means rename would run
          ``_rename_one`` -- whose integration-table retry is not
          idempotent -- so that is never elided;
        * commit -- quiescent when the ROB is empty or the head cannot
          retire.  A head blocked only by the minimum rename-to-retire age
          clamps the jump to ``rename_cycle + 2``; a retirable head (which
          would also probe store-port acceptance) is never elided;
        * events -- the lazily pruned :attr:`IssueExecute.event_cycles`
          min-heap bounds the jump by the next scheduled wakeup/completion;
        * run limits -- the jump also stops exactly where the per-cycle
          loop would raise ``max_cycles`` / deadlock errors.

        Every quiescence condition above changes only through stage activity
        (events firing, retirement, squash), never with bare time -- the
        time-dependent conditions are the ones clamped -- so a span that is
        quiescent at ``cycle`` stays quiescent until the returned target.
        """
        state = self.state
        config = self.config
        frontend = self.front_end
        fetch_queue = frontend.fetch_queue

        target = config.max_cycles
        deadline = state.last_retire_cycle + config.deadlock_cycles + 1
        if deadline < target:
            target = deadline

        if (not frontend.fetch_halted
                and len(fetch_queue) < config.fetch_queue_size):
            resume = frontend.fetch_resume_cycle
            if resume <= cycle:
                return cycle
            if resume < target:
                target = resume

        if fetch_queue:
            head, ready_cycle = fetch_queue[0]
            if ready_cycle > cycle:
                if ready_cycle < target:
                    target = ready_cycle
            else:
                rob = state.rob
                if len(rob._entries) < rob.size:
                    info = head.info
                    rs = state.rs
                    lsq = state.lsq
                    if not ((info.needs_rs
                             and len(rs._waiting) >= rs.entries)
                            or (info.is_mem
                                and len(lsq._by_seq) >= lsq.size)):
                        return cycle

        rob_entries = state.rob._entries
        if rob_entries:
            head = rob_entries[0]
            if head.integrated:
                dest = head.dest_preg
                blocked = dest is not None and not state.prf.ready[dest]
            else:
                blocked = not head.completed
            if not blocked:
                earliest = head.rename_cycle + 2
                if earliest <= cycle:
                    return cycle
                if earliest < target:
                    target = earliest

        execute = self.issue_execute
        heap = execute.event_cycles
        while heap and heap[0] <= cycle:
            heappop(heap)
        if heap and heap[0] < target:
            target = heap[0]
        return target

    def _run_phase_fast(self, budget: Optional[int]) -> None:
        """The fused per-cycle loop: skip stages with provably no work.

        Per-cycle stage order and semantics are identical to :meth:`step`;
        the only difference is that a stage whose no-work early-return would
        fire is never called at all:

        * writeback -- no wakeup/completion event scheduled for this cycle,
        * commit -- reorder buffer empty,
        * issue -- ready pool empty (select cannot pick anything; holds for
          the in-order variant's scheduler too, which stops at the first
          not-ready instruction),
        * rename -- fetch queue empty or its head not yet decoded,
        * fetch -- halted, redirect in flight, or fetch queue full.

        All guards read live engine state that squash/recovery mutate in
        place, so a redirect or flush in cycle N is reflected by the guards
        of cycle N+1 exactly as in the generic loop.

        On top of the per-stage skips, a cycle on which *every* stage is
        provably quiescent (see :meth:`_elide_target`) advances the clock
        arithmetically to the event horizon in one jump: per-cycle
        occupancy statistics -- constant across the span, since only stage
        activity changes them -- are accumulated by multiplication, and the
        skipped iterations are counted in ``SimStats.cycles_elided``.
        ``REPRO_ELIDE=0`` disables the jump (bit-identical results either
        way, only wall-clock changes).
        """
        state = self.state
        config = self.config
        arch = state.arch
        stats = state.stats
        execute = self.issue_execute
        frontend = self.front_end
        wakeup_events = execute.wakeup_events
        complete_events = execute.complete_events
        rs_ready = state.rs._ready
        rs_waiting = state.rs._waiting
        rob_entries = state.rob._entries
        fetch_queue = frontend.fetch_queue
        fetch_queue_size = config.fetch_queue_size
        max_cycles = config.max_cycles
        deadlock_cycles = config.deadlock_cycles
        writeback = execute.writeback
        commit_tick = self.commit_diva.tick
        execute_tick = execute.tick
        rename_tick = self.rename_integrate.tick
        frontend_tick = frontend.tick
        elide_target = self._elide_target
        # An active tracer wants one hook call per per-cycle event, and an
        # elided span by construction has none; forcing REPRO_ELIDE-off
        # semantics keeps the trace complete (results are bit-identical).
        elide = elision_enabled() and state.tracer is None
        classify = classify_stall
        prf_ready = state.prf.ready
        occupancy_sum = 0
        samples = 0
        elided = 0
        cpi_retired = 0
        stalls: dict = {}
        cycle = state.cycle
        retired_at = state.last_retire_cycle
        try:
            while not arch.halted:
                if budget is not None and stats.retired >= budget:
                    break
                if cycle >= max_cycles:
                    raise SimulationError(
                        f"{self.program.name}: exceeded {max_cycles} cycles")
                if cycle - state.last_retire_cycle > deadlock_cycles:
                    raise SimulationError(
                        f"{self.program.name}: no retirement for "
                        f"{deadlock_cycles} cycles at cycle {cycle} "
                        f"(ROB={len(rob_entries)}, RS={len(rs_waiting)})")
                if cycle in wakeup_events or cycle in complete_events:
                    writeback()
                elif elide and not rs_ready:
                    target = elide_target(cycle)
                    if target > cycle:
                        span = target - cycle
                        occupancy_sum += span * len(rs_waiting)
                        samples += span
                        elided += span - 1
                        # Nothing retires inside a quiescent span and every
                        # classify_stall condition is constant across it
                        # (the span is clamped before the head's age gate
                        # opens and before the fetch head decodes), so the
                        # whole span takes the blame of the current state.
                        bucket = classify(state)
                        stalls[bucket] = stalls.get(bucket, 0) + span
                        cycle = target
                        state.cycle = cycle
                        continue
                if rob_entries:
                    commit_tick()
                if rs_ready:
                    execute_tick()
                if fetch_queue and fetch_queue[0][1] <= cycle:
                    rename_tick()
                if (not frontend.fetch_halted
                        and cycle >= frontend.fetch_resume_cycle
                        and len(fetch_queue) < fetch_queue_size):
                    frontend_tick()
                occupancy_sum += len(rs_waiting)
                samples += 1
                # ``last_retire_cycle`` is stamped by every retirement, so
                # any move past the ``retired_at`` watermark means this
                # cycle retired.  The stall branch is an inline mirror of
                # :func:`repro.obs.cpi.classify_stall` over hoisted locals;
                # the fast/slow fingerprint equivalence tests (which
                # include ``cpi_stack``) hold the two in lockstep.
                if state.last_retire_cycle != retired_at:
                    retired_at = state.last_retire_cycle
                    cpi_retired += 1
                else:
                    if rob_entries:
                        head = rob_entries[0]
                        if head.integrated:
                            dest = head.dest_preg
                            if dest is not None and not prf_ready[dest]:
                                bucket = CPI_WAITING_OPERANDS
                            else:
                                bucket = CPI_RENAME_STALL
                        elif head.completed:
                            bucket = CPI_RENAME_STALL
                        elif head.issued and head.info.is_mem:
                            bucket = CPI_MEMORY
                        else:
                            bucket = CPI_WAITING_OPERANDS
                    else:
                        bucket = state.stall_cause
                        if bucket is None:
                            bucket = CPI_FRONTEND_EMPTY
                    stalls[bucket] = stalls.get(bucket, 0) + 1
                cycle += 1
                state.cycle = cycle
        finally:
            stats.rs_occupancy_sum += occupancy_sum
            stats.rs_occupancy_samples += samples
            stats.cycles_elided += elided
            # Flush only non-zero buckets: a zero Counter entry would
            # serialize (and fingerprint) differently from an absent key.
            if cpi_retired:
                stats.cpi_stack[CPI_RETIRED] += cpi_retired
            cpi_stack = stats.cpi_stack
            for bucket, count in stalls.items():
                cpi_stack[bucket] += count

    def run(self, max_instructions: Optional[int] = None,
            warmup_instructions: int = 0) -> SimStats:
        """Simulate until the program exits (or a limit is hit).

        ``max_instructions`` is an *exact* retired-instruction budget.
        ``warmup_instructions`` retires that many instructions first in full
        detail but *discards* their statistics: microarchitectural state
        (caches, branch predictor, integration table) is warm when counting
        starts, which is what keeps a mid-program slice's IPC close to the
        same region of an uninterrupted run.  The warm-up instructions do
        advance architectural state, so a slice resumed from the checkpoint
        at ``boundary - warmup`` with ``warmup_instructions=warmup`` counts
        exactly the instructions in ``[boundary, boundary + budget)``.
        """
        # The per-cycle loop allocates heavily (DynInst, IT entries, event
        # buckets) but the object graph is cycle-free, so reference counting
        # reclaims everything promptly; pausing the cyclic collector for the
        # run avoids pointless generation scans in the middle of the hot
        # loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run(max_instructions, warmup_instructions)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self, max_instructions: Optional[int],
             warmup_instructions: int) -> SimStats:
        state = self.state
        if warmup_instructions:
            self._run_phase(warmup_instructions)
            # Reset the counters; microarchitectural state stays warm.
            warm = state.stats
            fresh = SimStats(benchmark=warm.benchmark,
                             config_name=warm.config_name,
                             variant=warm.variant)
            state.stats = fresh
            self.stats = fresh
            self._cycle_base = state.cycle
            self._cht_hits_base = state.cht.hits
            self._cht_trainings_base = state.cht.trainings
        remaining = None
        if max_instructions is not None:
            remaining = max(0, max_instructions)
        self._run_phase(remaining)
        stats = state.stats
        stats.cycles = state.cycle - self._cycle_base
        stats.cht_hits = state.cht.hits - self._cht_hits_base
        stats.cht_trainings = state.cht.trainings - self._cht_trainings_base
        return stats


def simulate(program: Program, config: Optional[MachineConfig] = None,
             name: Optional[str] = None,
             max_instructions: Optional[int] = None,
             initial_state: Optional[ArchState] = None,
             warmup_instructions: int = 0,
             builder: Optional[MachineBuilder] = None,
             tracer=None) -> SimStats:
    """Convenience wrapper: build a :class:`Processor` and run it.

    ``initial_state`` starts the machine from an architectural checkpoint
    (see :func:`repro.functional.emulator.collect_checkpoints`);
    ``warmup_instructions`` retires a stats-discarded detailed warm-up
    first; ``max_instructions`` then stops the run after exactly that many
    counted retirements.  Together they simulate one slice of a sharded
    run.  ``builder`` overrides the machine variant resolved from
    ``config.variant``; ``tracer`` attaches a
    :class:`~repro.obs.trace.PipelineTracer` to the lifecycle hooks.
    """
    processor = Processor(program, config=config, name=name,
                          initial_state=initial_state, builder=builder,
                          tracer=tracer)
    return processor.run(max_instructions=max_instructions,
                         warmup_instructions=warmup_instructions)
