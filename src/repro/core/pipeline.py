"""The cycle-level out-of-order processor model.

:class:`Processor` glues together every substrate -- fetch with branch
prediction, the integration-aware rename stage, the reservation-station
scheduler, the load/store queue, the memory hierarchy, and the DIVA checker
that doubles as the commit point -- and advances them one cycle at a time.

Pipeline organisation (13 stages, paper Section 3.1)::

    fetch(3)  decode(1)  rename(1) | schedule(2) regread(2) execute  wb(1) | DIVA(1) retire(1)

Integrating instructions leave the pipeline at rename: they are never
allocated reservation stations, never issue, and never touch the data cache;
they wait in the reorder buffer until their (shared) physical register value
is ready and then pass through DIVA and retirement like everything else.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Dict, List, Optional

from repro.core.config import MachineConfig
from repro.core.diva import DivaChecker, DivaFault, SimulationError
from repro.core.lsq import CollisionHistoryTable, LoadStoreQueue
from repro.core.rob import ReorderBuffer
from repro.core.scheduler import ReservationStations
from repro.core.stats import (
    IntegrationType,
    ResultStatus,
    SimStats,
    distance_bucket,
)
from repro.frontend.branch_predictor import BranchPredictor, BranchPrediction
from repro.functional.memory import SparseMemory
from repro.functional.state import ArchState
from repro.integration.config import LispMode
from repro.integration.logic import IntegrationLogic
from repro.isa.instruction import DynInst, StaticInst
from repro.isa.opcodes import (
    Opcode,
    OpClass,
    is_branch,
    is_cond_branch,
    is_fp,
    is_load,
    is_store,
)
from repro.isa.program import INST_SIZE, Program
from repro.isa.registers import REG_SP
from repro.isa import semantics
from repro.memsys.hierarchy import MemoryHierarchy
from repro.rename.map_table import MapTable
from repro.rename.physical import PhysicalRegisterFile
from repro.rename.renamer import Renamer

# Opcode classes that occupy a reservation station (everything that must pass
# through the out-of-order execution engine when it does not integrate).
_RS_CLASSES = frozenset({
    OpClass.IALU, OpClass.IMUL, OpClass.LOAD, OpClass.STORE,
    OpClass.COND_BRANCH, OpClass.FP_ADD, OpClass.FP_MUL, OpClass.FP_DIV,
    OpClass.CALL_INDIRECT, OpClass.INDIRECT_JUMP, OpClass.RETURN,
})
# Opcode classes whose results/effects are fully known at rename time.
_RENAME_COMPLETE_CLASSES = frozenset({
    OpClass.DIRECT_JUMP, OpClass.CALL_DIRECT, OpClass.SYSCALL, OpClass.NOP,
})
_INDIRECT_CLASSES = frozenset({
    OpClass.CALL_INDIRECT, OpClass.INDIRECT_JUMP, OpClass.RETURN,
})
_ALU_CLASSES = frozenset({
    OpClass.IALU, OpClass.IMUL, OpClass.FP_ADD, OpClass.FP_MUL,
    OpClass.FP_DIV,
})


def _integration_type(inst: StaticInst) -> Optional[IntegrationType]:
    """Categorise an instruction for the Figure 5 "Type" breakdown."""
    op = inst.op
    if is_load(op):
        if inst.ra == REG_SP:
            return IntegrationType.LOAD_SP
        return IntegrationType.LOAD_OTHER
    if is_cond_branch(op):
        return IntegrationType.BRANCH
    if is_fp(op):
        return IntegrationType.FP
    if inst.info.cls in (OpClass.IALU, OpClass.IMUL):
        return IntegrationType.ALU
    return None


class Processor:
    """Cycle-level model of the paper's 4-way superscalar machine."""

    def __init__(self, program: Program,
                 config: Optional[MachineConfig] = None,
                 name: Optional[str] = None):
        self.program = program
        self.config = config or MachineConfig()
        icfg = self.config.integration

        # Architectural (committed) state -- owned by the DIVA checker.
        self.arch = ArchState(memory=SparseMemory(program.data),
                              pc=program.entry)
        self.diva = DivaChecker(self.arch)

        # Substrates.
        self.mem = MemoryHierarchy(self.config.memsys)
        self.predictor = BranchPredictor(self.config.branch_predictor)

        # Renaming + integration.
        self.prf = PhysicalRegisterFile(icfg.num_physical_regs,
                                        icfg.generation_bits,
                                        icfg.refcount_bits)
        self.map_table = MapTable()
        self.renamer = Renamer(self.map_table, self.prf)
        self.renamer.initialize_from_values(self.arch.regs)
        self.integration = IntegrationLogic(icfg, self.prf)

        # Out-of-order engine.
        self.rob = ReorderBuffer(self.config.rob_size)
        self.rs = ReservationStations(self.config.rs_entries,
                                      self.config.ports,
                                      self.config.combined_ldst_port)
        self.lsq = LoadStoreQueue(self.config.lsq_size)
        self.cht = CollisionHistoryTable(self.config.collision_history_entries)

        # Front end.
        self.fetch_pc = program.entry
        self.fetch_resume_cycle = 0
        self.fetch_halted = False
        self.fetch_queue: deque = deque()   # (DynInst, rename_ready_cycle)
        self.predictions: Dict[int, BranchPrediction] = {}

        # Bookkeeping.
        self.cycle = 0
        self.seq = 0
        self.preg_producer: Dict[int, DynInst] = {}
        self.wakeup_events: Dict[int, List] = defaultdict(list)
        self.complete_events: Dict[int, List[DynInst]] = defaultdict(list)
        self.last_retire_cycle = 0
        self.stats = SimStats(benchmark=name or program.name,
                              config_name=icfg.describe())

    # ==================================================================
    # main loop
    # ==================================================================
    def run(self, max_instructions: Optional[int] = None) -> SimStats:
        """Simulate until the program exits (or a limit is hit)."""
        config = self.config
        while not self.arch.halted:
            if self.cycle >= config.max_cycles:
                raise SimulationError(
                    f"{self.program.name}: exceeded {config.max_cycles} cycles")
            if self.cycle - self.last_retire_cycle > config.deadlock_cycles:
                raise SimulationError(
                    f"{self.program.name}: no retirement for "
                    f"{config.deadlock_cycles} cycles at cycle {self.cycle} "
                    f"(ROB={len(self.rob)}, RS={self.rs.occupancy})")
            self._process_events()
            self._retire()
            self._issue()
            self._rename()
            self._fetch()
            self.stats.rs_occupancy_sum += self.rs.occupancy
            self.stats.rs_occupancy_samples += 1
            self.cycle += 1
            if max_instructions is not None and self.stats.retired >= max_instructions:
                break
        self.stats.cycles = self.cycle
        return self.stats

    # ==================================================================
    # event processing (wakeups and completions)
    # ==================================================================
    def _process_events(self) -> None:
        wakeups = self.wakeup_events.pop(self.cycle, None)
        if wakeups:
            for dyn, value in wakeups:
                if dyn.squashed or dyn.dest_preg is None:
                    continue
                self.prf.set_value(dyn.dest_preg, value)
        completions = self.complete_events.pop(self.cycle, None)
        if completions:
            for dyn in completions:
                if dyn.squashed:
                    continue
                self._complete(dyn)

    def _complete(self, dyn: DynInst) -> None:
        dyn.completed = True
        dyn.executed = True
        dyn.complete_cycle = self.cycle
        cls = dyn.inst.info.cls
        if cls is OpClass.COND_BRANCH:
            self._resolve_branch(dyn)
        elif cls in _INDIRECT_CLASSES:
            self._resolve_indirect(dyn)
        elif cls is OpClass.STORE:
            self._resolve_store(dyn)

    # ------------------------------------------------------------------
    def _resolve_branch(self, dyn: DynInst) -> None:
        """Resolution of an executed (non-integrated) conditional branch."""
        taken = dyn.branch_taken
        target = dyn.next_pc
        self.integration.record_branch_outcome(dyn, taken)
        prediction = self.predictions.get(dyn.seq)
        if prediction is None:
            return
        mispredicted = self.predictor.resolve(dyn.inst, prediction, taken,
                                              target)
        if mispredicted:
            dyn.branch_mispredicted = True
            self._squash_younger(dyn, redirect_pc=target)

    def _resolve_indirect(self, dyn: DynInst) -> None:
        target = dyn.next_pc
        prediction = self.predictions.get(dyn.seq)
        if prediction is None:
            return
        mispredicted = self.predictor.resolve(dyn.inst, prediction, True,
                                              target)
        if mispredicted:
            dyn.branch_mispredicted = True
            self._squash_younger(dyn, redirect_pc=target)

    def _resolve_store(self, dyn: DynInst) -> None:
        violations = self.lsq.resolve_store(dyn, dyn.eff_addr)
        if not violations:
            return
        victim = violations[0]
        victim.mem_mispeculated = True
        self.stats.memory_order_violations += 1
        self.cht.train(victim.inst.pc)
        self._squash_from(victim, redirect_pc=victim.pc)

    # ==================================================================
    # retire + DIVA
    # ==================================================================
    def _retire(self) -> None:
        retired = 0
        while retired < self.config.retire_width:
            dyn = self.rob.head()
            if dyn is None or not self._can_retire(dyn):
                break
            if is_store(dyn.op):
                stall, accepted = self.mem.store(dyn.eff_addr or 0, self.cycle)
                if not accepted:
                    break
            observed_value, observed_taken, observed_next_pc = \
                self._observed_results(dyn)
            step, fault = self.diva.check_and_commit(
                dyn, observed_value, observed_taken, observed_next_pc)
            if fault is not None:
                self._handle_diva_fault(dyn, step, fault)
                self._retire_commit(dyn)
                retired += 1
                break
            self._retire_commit(dyn)
            retired += 1
            if self.arch.halted:
                break

    def _can_retire(self, dyn: DynInst) -> bool:
        if self.cycle <= dyn.rename_cycle + 1:
            return False
        if dyn.integrated:
            if dyn.dest_preg is not None and not self.prf.ready[dyn.dest_preg]:
                return False
            return True
        return dyn.completed

    def _observed_results(self, dyn: DynInst):
        """Collect what the timing core believes this instruction produced."""
        observed_value = None
        observed_taken = None
        observed_next_pc = None
        inst = dyn.inst
        cls = inst.info.cls
        if is_store(inst.op):
            observed_value = dyn.store_value
        elif is_cond_branch(inst.op):
            observed_taken = dyn.branch_taken
        elif cls in _INDIRECT_CLASSES:
            observed_next_pc = dyn.next_pc
        elif inst.dest_reg() is not None and dyn.dest_preg is not None:
            observed_value = self.prf.value(dyn.dest_preg)
        return observed_value, observed_taken, observed_next_pc

    def _retire_commit(self, dyn: DynInst) -> None:
        """Post-DIVA retirement bookkeeping and statistics."""
        self.rob.pop_head()
        self.renamer.commit(dyn)
        if dyn.lsq_index:
            self.lsq.remove(dyn)
        dyn.retire_cycle = self.cycle
        self.last_retire_cycle = self.cycle
        self.predictions.pop(dyn.seq, None)
        stats = self.stats
        stats.retired += 1

        itype = _integration_type(dyn.inst)
        if itype is not None:
            stats.retired_by_type[itype] += 1
        if is_cond_branch(dyn.op):
            stats.retired_branches += 1
            if dyn.branch_mispredicted or dyn.mis_integrated:
                stats.retired_mispredicted_branches += 1
                stats.branch_resolution_latency_sum += max(
                    0, dyn.complete_cycle - dyn.fetch_cycle)
        if dyn.integrated and not dyn.mis_integrated:
            if dyn.reverse_integrated:
                stats.integrated_reverse += 1
                if itype is not None:
                    stats.reverse_by_type[itype] += 1
            else:
                stats.integrated_direct += 1
            if itype is not None:
                stats.integration_by_type[itype] += 1
            stats.integration_distance[
                distance_bucket(dyn.integration_distance)] += 1
            if dyn.integration_status is not None:
                stats.integration_status[dyn.integration_status] += 1
            if dyn.integration_refcount:
                stats.integration_refcount[dyn.integration_refcount] += 1

    def _handle_diva_fault(self, dyn: DynInst, step, fault: DivaFault) -> None:
        """Recover from a mis-integration (or other value fault).

        The paper models recovery as a complete pipeline flush.  We squash
        every younger instruction, repair the faulting instruction's
        destination mapping with a freshly allocated register holding the
        architecturally correct value, and restart fetch at the correct
        next PC.
        """
        if not dyn.integrated:
            raise SimulationError(
                f"DIVA fault on non-integrated instruction {dyn} "
                f"({fault.kind}): timing core produced "
                f"{fault.observed_value!r}, expected {fault.correct_value!r}")
        dyn.mis_integrated = True
        self.stats.mis_integrations += 1
        if is_load(dyn.op):
            self.stats.load_mis_integrations += 1
            self.integration.train_lisp(dyn.inst.pc)
        else:
            self.stats.register_mis_integrations += 1

        squashed = self.rob.squash_younger_than(dyn.seq)
        self._do_squash(squashed, redirect_pc=step.next_pc)
        self._recover_predictor_after(dyn,
                                      taken=bool(step.taken),
                                      target=step.next_pc)
        # Repair the destination mapping with the correct value.
        dest = dyn.inst.dest_reg()
        if dest is not None and dyn.dest_preg is not None and fault.kind == "value":
            self.prf.release(dyn.dest_preg)
            fresh = self.prf.allocate(ready=True, value=step.dest_value)
            if fresh is None:
                raise SimulationError("no physical register available for "
                                      "mis-integration repair")
            self.map_table.set(dest, fresh, self.prf.gen[fresh])
            dyn.dest_preg = fresh
            dyn.dest_gen = self.prf.gen[fresh]
            self.preg_producer[fresh] = dyn

    # ==================================================================
    # issue + execute
    # ==================================================================
    def _issue(self) -> None:
        selected = self.rs.select(self._operands_ready, self._load_can_issue)
        for dyn in selected:
            self._execute(dyn)

    def _operands_ready(self, dyn: DynInst) -> bool:
        ready = self.prf.ready
        for preg in dyn.src_pregs:
            if not ready[preg]:
                return False
        return True

    def _load_can_issue(self, dyn: DynInst) -> bool:
        base = self.prf.value(dyn.src_pregs[0])
        addr = semantics.effective_address(base, dyn.inst.imm)
        if (self.cht.predicts_collision(dyn.inst.pc)
                and self.lsq.older_stores_unresolved(dyn)):
            return False
        store, data_ready = self.lsq.forward_from(dyn, addr)
        if store is not None and not data_ready:
            return False
        return True

    def _execute(self, dyn: DynInst) -> None:
        config = self.config
        dyn.issued = True
        dyn.issue_cycle = self.cycle
        self.stats.issued += 1
        inst = dyn.inst
        cls = inst.info.cls
        values = [self.prf.value(p) for p in dyn.src_pregs]
        dyn.src_values = values
        regread = config.regread_stages
        wb = config.writeback_stages

        if cls in _ALU_CLASSES:
            a = values[0] if values else 0
            b = values[1] if len(values) > 1 else 0
            result = semantics.evaluate(inst.op, a, b, inst.imm)
            dyn.result = result
            latency = inst.info.latency
            self._schedule_wakeup(dyn, latency, result)
            self._schedule_complete(dyn, regread + latency + wb)
        elif cls is OpClass.COND_BRANCH:
            taken = semantics.branch_taken(inst.op, values[0])
            dyn.branch_taken = taken
            dyn.next_pc = inst.target if taken else inst.pc + INST_SIZE
            self._schedule_complete(dyn, regread + 1 + wb)
        elif cls in _INDIRECT_CLASSES:
            target = int(values[0]) & semantics.MASK64
            dyn.next_pc = target
            if cls is OpClass.CALL_INDIRECT and dyn.dest_preg is not None:
                link = inst.pc + INST_SIZE
                dyn.result = link
                self._schedule_wakeup(dyn, 1, link)
            self._schedule_complete(dyn, regread + 1 + wb)
        elif cls is OpClass.LOAD:
            self._execute_load(dyn, values)
        elif cls is OpClass.STORE:
            self._execute_store(dyn, values)
        else:  # pragma: no cover - such classes never enter the RS
            raise SimulationError(f"unexpected issue of {dyn}")

    def _execute_load(self, dyn: DynInst, values) -> None:
        config = self.config
        inst = dyn.inst
        agen = config.memsys.address_generation_latency
        addr = semantics.effective_address(values[0], inst.imm)
        dyn.eff_addr = addr
        self.lsq.record_load(dyn, addr)
        self.stats.executed_loads += 1
        store, _ = self.lsq.forward_from(dyn, addr)
        if store is not None:
            latency = agen + config.memsys.store_forward_latency
            value = store.store_value
        else:
            access = self.mem.load(addr, self.cycle + agen)
            latency = agen + access.latency
            value = self.arch.memory.read(addr)
        value = semantics.narrow_load_value(inst.op, value)
        dyn.result = value
        self._schedule_wakeup(dyn, latency, value)
        self._schedule_complete(dyn, config.regread_stages + latency
                                + config.writeback_stages)

    def _execute_store(self, dyn: DynInst, values) -> None:
        config = self.config
        inst = dyn.inst
        data, base = values[0], values[1]
        addr = semantics.effective_address(base, inst.imm)
        dyn.eff_addr = addr
        dyn.store_value = semantics.narrow_store_value(inst.op, data)
        self.stats.executed_stores += 1
        agen = config.memsys.address_generation_latency
        self._schedule_complete(dyn, config.regread_stages + agen
                                + config.writeback_stages)

    def _schedule_wakeup(self, dyn: DynInst, delay: int, value) -> None:
        self.wakeup_events[self.cycle + max(1, delay)].append((dyn, value))

    def _schedule_complete(self, dyn: DynInst, delay: int) -> None:
        self.complete_events[self.cycle + max(1, delay)].append(dyn)

    # ==================================================================
    # rename + integration
    # ==================================================================
    def _rename(self) -> None:
        config = self.config
        renamed = 0
        while renamed < config.rename_width and self.fetch_queue:
            dyn, ready_cycle = self.fetch_queue[0]
            if ready_cycle > self.cycle or self.rob.full:
                break
            cls = dyn.inst.info.cls
            needs_rs = cls in _RS_CLASSES
            needs_lsq = cls in (OpClass.LOAD, OpClass.STORE)
            if needs_rs and not self.rs.has_space():
                break
            if needs_lsq and not self.lsq.has_space():
                break
            # Remove the instruction from the front-end queue before renaming
            # it: an integrated branch that redirects fetch flushes the queue
            # and must not flush itself.
            self.fetch_queue.popleft()
            if not self._rename_one(dyn):
                self.fetch_queue.appendleft((dyn, ready_cycle))
                break
            dyn.rename_cycle = self.cycle
            self.rob.push(dyn)
            self.stats.renamed += 1
            renamed += 1
            # An integrated branch that redirected fetch ends the rename
            # group (everything behind it in the queue was flushed).
            if dyn.branch_mispredicted and dyn.integrated:
                break

    def _rename_one(self, dyn: DynInst) -> bool:
        """Rename (or integrate) one instruction; False means stall."""
        inst = dyn.inst
        cls = inst.info.cls
        self.renamer.lookup_sources(dyn)

        oracle = None
        if (self.config.integration.lisp_mode is LispMode.ORACLE
                and is_load(inst.op)):
            oracle = self._oracle_allow
        decision = self.integration.consider(dyn, dyn.call_depth,
                                             oracle_allow=oracle)
        if decision.suppressed_by_lisp or decision.suppressed_by_oracle:
            self.stats.lisp_suppressed += 1

        if decision.integrate:
            if self._apply_integration(dyn, decision):
                return True
            self.stats.refcount_saturation_failures += 1

        result = self.renamer.allocate_dest(dyn)
        if result is None:
            return False
        if result.allocated:
            self.preg_producer[dyn.dest_preg] = dyn
        self.integration.create_entries(dyn, dyn.call_depth)

        if cls is OpClass.CALL_DIRECT:
            link = inst.pc + INST_SIZE
            if dyn.dest_preg is not None:
                self.prf.set_value(dyn.dest_preg, link)
            dyn.result = link
            self._mark_rename_complete(dyn)
        elif cls in _RENAME_COMPLETE_CLASSES:
            self._mark_rename_complete(dyn)
        else:
            self.rs.insert(dyn)
            if cls in (OpClass.LOAD, OpClass.STORE):
                self.lsq.insert(dyn)
            dyn.dispatch_cycle = self.cycle
        return True

    def _mark_rename_complete(self, dyn: DynInst) -> None:
        dyn.executed = True
        dyn.completed = True
        dyn.complete_cycle = self.cycle

    def _apply_integration(self, dyn: DynInst, decision) -> bool:
        """Point the instruction at the matched IT entry's result."""
        entry = decision.entry
        if is_cond_branch(dyn.op):
            self._integrate_branch(dyn, entry)
            return True
        status = self._result_status(entry.out)
        if not self.renamer.integrate_dest(dyn, entry.out, entry.out_gen):
            return False
        dyn.integrated = True
        dyn.reverse_integrated = entry.is_reverse
        dyn.integration_distance = max(0, dyn.seq - entry.creator_seq)
        dyn.integration_status = status
        dyn.integration_refcount = self.prf.refcount[entry.out]
        self._mark_rename_complete(dyn)
        return True

    def _integrate_branch(self, dyn: DynInst, entry) -> None:
        """An integrating conditional branch resolves at rename."""
        inst = dyn.inst
        outcome = bool(entry.branch_outcome)
        dyn.integrated = True
        dyn.reverse_integrated = entry.is_reverse
        dyn.integration_distance = max(0, dyn.seq - entry.creator_seq)
        dyn.branch_taken = outcome
        dyn.next_pc = inst.target if outcome else inst.pc + INST_SIZE
        self._mark_rename_complete(dyn)
        prediction = self.predictions.get(dyn.seq)
        if prediction is None:
            return
        mispredicted = self.predictor.resolve(inst, prediction, outcome,
                                              dyn.next_pc)
        if mispredicted:
            # Early resolution at rename: nothing younger has been renamed
            # yet, so only the front-end queues need flushing.
            dyn.branch_mispredicted = True
            self._flush_frontend(redirect_pc=dyn.next_pc)
            self._recover_predictor_after(dyn, outcome, dyn.next_pc)

    def _result_status(self, preg: int) -> ResultStatus:
        """State of the to-be-integrated result (Figure 5 Status breakdown)."""
        if self.prf.refcount[preg] == 0:
            return ResultStatus.SHADOW_SQUASH
        producer = self.preg_producer.get(preg)
        if producer is None or producer.retire_cycle >= 0:
            return ResultStatus.RETIRE
        if producer.issued or producer.completed:
            return ResultStatus.ISSUE
        return ResultStatus.RENAME

    def _oracle_allow(self, dyn: DynInst, entry) -> bool:
        """Approximate oracle load-suppression: allow the integration only if
        the value it would reuse matches the best currently-knowable value of
        the load (store-queue forwarding or committed memory)."""
        if entry.out is None or not self.prf.ready[entry.out]:
            return True
        base_preg = dyn.src_pregs[0]
        if not self.prf.ready[base_preg]:
            return True
        addr = semantics.effective_address(self.prf.value(base_preg),
                                           dyn.inst.imm)
        store, data_ready = self.lsq.forward_from(dyn, addr)
        if store is not None:
            if not data_ready:
                return True
            expected = store.store_value
        else:
            expected = self.arch.memory.read(addr)
        expected = semantics.narrow_load_value(dyn.op, expected)
        return expected == self.prf.value(entry.out)

    # ==================================================================
    # fetch
    # ==================================================================
    def _fetch(self) -> None:
        config = self.config
        if (self.fetch_halted or self.cycle < self.fetch_resume_cycle
                or len(self.fetch_queue) >= config.fetch_queue_size):
            return
        first = self.program.at(self.fetch_pc)
        if first is None:
            self.fetch_halted = True
            return
        access = self.mem.ifetch(self.fetch_pc, self.cycle)
        ready_cycle = (self.cycle + config.fetch_stages + config.decode_stages
                       + max(0, access.latency - 1))
        for _ in range(config.fetch_width):
            inst = self.program.at(self.fetch_pc)
            if inst is None:
                self.fetch_halted = True
                break
            self.seq += 1
            dyn = DynInst(self.seq, inst)
            dyn.fetch_cycle = self.cycle
            dyn.call_depth = self.predictor.call_depth
            dyn.map_checkpoint = self.predictor.snapshot()
            prediction = self.predictor.predict(inst)
            dyn.pred_taken = prediction.taken
            dyn.pred_next_pc = prediction.target
            if is_branch(inst.op):
                self.predictions[dyn.seq] = prediction
            self.stats.fetched += 1
            self.fetch_queue.append((dyn, ready_cycle))
            if is_branch(inst.op) and prediction.taken:
                self.fetch_pc = prediction.target
                break
            self.fetch_pc = inst.pc + INST_SIZE

    # ==================================================================
    # squash machinery
    # ==================================================================
    def _squash_younger(self, dyn: DynInst, redirect_pc: int) -> None:
        """Squash everything younger than ``dyn`` (branch misprediction)."""
        squashed = self.rob.squash_younger_than(dyn.seq)
        self._do_squash(squashed, redirect_pc)
        self._recover_predictor_after(dyn, dyn.branch_taken, redirect_pc)

    def _squash_from(self, dyn: DynInst, redirect_pc: int) -> None:
        """Squash ``dyn`` and everything younger (memory-order violation)."""
        squashed = self.rob.squash_younger_than(dyn.seq - 1)
        self._do_squash(squashed, redirect_pc)
        self._recover_predictor_before(dyn)

    def _do_squash(self, squashed: List[DynInst], redirect_pc: int) -> None:
        """Common squash worker: walk the squashed instructions youngest
        first, undoing their rename effects, then flush the front end."""
        seqs = set()
        for dyn in squashed:            # youngest first (ROB pop order)
            dyn.squashed = True
            seqs.add(dyn.seq)
            self.renamer.squash(dyn)
            self.predictions.pop(dyn.seq, None)
            self.stats.squashed += 1
        if seqs:
            self.rs.squash(seqs)
            self.lsq.squash(seqs)
        self._flush_frontend(redirect_pc)

    def _flush_frontend(self, redirect_pc: int) -> None:
        for dyn, _ in self.fetch_queue:
            dyn.squashed = True
            self.predictions.pop(dyn.seq, None)
            self.stats.squashed += 1
        self.fetch_queue.clear()
        self.fetch_pc = redirect_pc
        self.fetch_resume_cycle = self.cycle + 1
        self.fetch_halted = False

    # ------------------------------------------------------------------
    def _recover_predictor_after(self, dyn: DynInst, taken: bool,
                                 target: int) -> None:
        """Restore the front-end prediction state to "just after ``dyn``"."""
        if dyn.map_checkpoint is None:
            return
        self.predictor.restore(dyn.map_checkpoint)
        cls = dyn.inst.info.cls
        if cls is OpClass.COND_BRANCH:
            self.predictor._push_history(taken)
        elif cls in (OpClass.CALL_DIRECT, OpClass.CALL_INDIRECT):
            self.predictor.ras.push(dyn.inst.pc + INST_SIZE)
        elif cls is OpClass.RETURN:
            self.predictor.ras.pop()

    def _recover_predictor_before(self, dyn: DynInst) -> None:
        if dyn.map_checkpoint is not None:
            self.predictor.restore(dyn.map_checkpoint)


def simulate(program: Program, config: Optional[MachineConfig] = None,
             name: Optional[str] = None,
             max_instructions: Optional[int] = None) -> SimStats:
    """Convenience wrapper: build a :class:`Processor` and run it."""
    processor = Processor(program, config=config, name=name)
    return processor.run(max_instructions=max_instructions)
