"""Kernel backend selection: pure-Python or compiled inner loops.

The engine's scheduler inner loops exist twice: the reference pure-Python
implementation in :mod:`repro.core.scheduler` and an optional C extension
(``repro/core/_kernel.c``, built opportunistically by ``setup.py``).  The
``REPRO_KERNEL`` environment variable picks the backend:

``REPRO_KERNEL=py``
    Force the pure-Python loops (the default reference semantics).
``REPRO_KERNEL=compiled``
    Use the compiled loops; **silently falls back to pure Python** when the
    extension is not built or its baked-in layout constants do not match
    :mod:`repro.core.window` (the fallback is automatic because results are
    bit-identical either way -- only wall-clock changes).
``REPRO_KERNEL`` unset (or ``auto``)
    Use the compiled loops when importable, pure Python otherwise.

The resolved backend is re-evaluated per :class:`~repro.core.scheduler.
ReservationStations` construction via :func:`select_backend`, so tests can
flip the environment variable between simulations without reimporting.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.core import window as _window

class KernelEnvError(SystemExit):
    """A malformed ``REPRO_KERNEL`` value.

    Subclasses :class:`SystemExit` (mirroring
    :class:`repro.experiments.runner.EnvVarError`, which lives above this
    layer) so a bad value aborts CLI runs with a one-line message instead
    of a traceback, while still being catchable in library use.
    """

    def __init__(self, value: str) -> None:
        self.value = value
        super().__init__(
            f"REPRO_KERNEL={value!r}: expected 'py', 'compiled' or 'auto'")


#: Entry points a usable build must export; a .so predating any of them is
#: stale as a whole (partial activation would split the backend per stage).
#: The kernel-parity lint rule checks each name against the C method table.
REQUIRED_KERNEL_FUNCTIONS = ("select_ready", "wakeup", "drain_wakeups",
                             "lsq_forward_from", "lsq_older_unresolved")

_compiled: Optional[object] = None
_compiled_checked: bool = False


def _load_compiled() -> Optional[object]:
    """Import (once) and sanity-check the C extension; None if unusable."""
    global _compiled, _compiled_checked
    if _compiled_checked:
        return _compiled
    _compiled_checked = True
    try:
        from repro.core import _kernel  # type: ignore[attr-defined]
    except ImportError:
        return None
    # The extension bakes in layout constants from window.py and the
    # zero-register number from rename/physical.py; refuse to use a stale
    # build rather than silently corrupting the select order or register
    # writeback.  Imported here (not at module top) because rename sits
    # above core in the layering.
    from repro.rename.physical import ZERO_PREG
    if (getattr(_kernel, "SEQ_BITS", None) != _window.SEQ_BITS
            or getattr(_kernel, "PORT_LOAD", None) != _window.PORT_LOAD
            or getattr(_kernel, "ZERO_PREG", None) != ZERO_PREG):
        return None
    for fn in REQUIRED_KERNEL_FUNCTIONS:
        if not hasattr(_kernel, fn):
            return None
    _compiled = _kernel
    return _compiled


def select_backend() -> Tuple[str, Optional[object]]:
    """Resolve ``(backend_name, module)`` from ``REPRO_KERNEL``.

    ``backend_name`` is ``"py"`` or ``"compiled"``; ``module`` is the C
    extension module when (and only when) the compiled backend is active.
    """
    mode = os.environ.get("REPRO_KERNEL", "auto").strip().lower()
    if mode == "py":
        return "py", None
    if mode not in ("auto", "compiled"):
        raise KernelEnvError(mode)
    compiled = _load_compiled()
    if compiled is None:
        return "py", None
    return "compiled", compiled


def backend_name() -> str:
    """The backend a machine built right now would use."""
    return select_backend()[0]
