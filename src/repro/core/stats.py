"""Simulation statistics.

:class:`SimStats` carries every metric the paper's evaluation reports:
IPC/speedup inputs, integration rates split into direct and reverse,
mis-integration counts, the four integration-stream breakdowns of Figure 5
(instruction type, integration distance, result status, reference count),
branch-resolution latency, fetched-instruction counts, executed-instruction
counts and reservation-station occupancy.
"""

from __future__ import annotations

import dataclasses
import enum
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Optional


class IntegrationType(enum.Enum):
    """Instruction-type categories of the Figure 5 "Type" breakdown."""

    LOAD_SP = "load_sp"
    LOAD_OTHER = "load"
    ALU = "alu"
    BRANCH = "branch"
    FP = "fp"


class ResultStatus(enum.Enum):
    """State of the integrated result at integration time (Figure 5
    "Status" breakdown)."""

    RENAME = "rename"          # producer renamed but not yet issued
    ISSUE = "issue"            # producer issued but not yet retired
    RETIRE = "retire"          # producer retired, mapping still live
    SHADOW_SQUASH = "shadow"   # zero references: shadowed or squashed


# Buckets used by the Figure 5 "Distance" breakdown (renamed instructions
# between the entry creator and the integrating instruction).
DISTANCE_BUCKETS = (4, 16, 64, 256, 1024)


@dataclass
class SimStats:
    """All counters produced by one simulation run."""

    benchmark: str = ""
    config_name: str = ""
    #: Machine variant the run was built on (see :mod:`repro.variants`).
    #: Identification only -- merged like ``benchmark`` (first non-empty) and
    #: absent from pre-variant cache entries (deserializes to "").
    variant: str = ""

    # Global progress.
    cycles: int = 0
    #: Cycles the fused driver advanced arithmetically instead of iterating
    #: (event-horizon elision).  A driver-mechanics counter: machine
    #: behaviour is bit-identical with elision on or off, so this field is
    #: excluded from the cross-driver equivalence fingerprint.
    cycles_elided: int = 0
    fetched: int = 0
    renamed: int = 0
    retired: int = 0
    squashed: int = 0

    # Execution engine.
    issued: int = 0
    executed_loads: int = 0
    executed_stores: int = 0
    rs_occupancy_sum: int = 0
    rs_occupancy_samples: int = 0

    # Branches.
    retired_branches: int = 0
    retired_mispredicted_branches: int = 0
    branch_resolution_latency_sum: int = 0
    memory_order_violations: int = 0

    # Collision history table (one hit per dynamic load whose issue was
    # constrained by a collision prediction; one training per violation).
    cht_hits: int = 0
    cht_trainings: int = 0

    # Integration (counted at retirement, per the paper's methodology).
    integrated_direct: int = 0
    integrated_reverse: int = 0
    mis_integrations: int = 0
    load_mis_integrations: int = 0
    register_mis_integrations: int = 0
    lisp_suppressed: int = 0
    refcount_saturation_failures: int = 0

    # Figure 5 breakdowns (retired integrating instructions only).
    integration_by_type: Counter = field(default_factory=Counter)
    reverse_by_type: Counter = field(default_factory=Counter)
    integration_distance: Counter = field(default_factory=Counter)
    integration_status: Counter = field(default_factory=Counter)
    integration_refcount: Counter = field(default_factory=Counter)

    # Per-type retirement counts (denominators for per-type integration rates).
    retired_by_type: Counter = field(default_factory=Counter)

    # CPI stall stack: every simulated cycle is blamed on exactly one
    # bucket from :mod:`repro.obs.cpi` (``retired`` / ``frontend_empty`` /
    # ``rename_stall`` / ``waiting_operands`` / ``memory`` /
    # ``integration_replay`` / ``squash_recovery``), so the stack's values
    # always sum to ``cycles``.  Keys are plain strings; elided spans are
    # attributed arithmetically (span x blame of the quiescent state), so
    # the stack is bit-identical with elision on or off and merges
    # losslessly across shards like every other Counter.
    cpi_stack: Counter = field(default_factory=Counter)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0

    @property
    def integrated(self) -> int:
        return self.integrated_direct + self.integrated_reverse

    @property
    def integration_rate(self) -> float:
        """Fraction of retired instructions that integrated (bypassed the
        execution engine)."""
        return self.integrated / self.retired if self.retired else 0.0

    @property
    def direct_integration_rate(self) -> float:
        return self.integrated_direct / self.retired if self.retired else 0.0

    @property
    def reverse_integration_rate(self) -> float:
        return self.integrated_reverse / self.retired if self.retired else 0.0

    @property
    def mis_integrations_per_million(self) -> float:
        if not self.retired:
            return 0.0
        return self.mis_integrations * 1_000_000.0 / self.retired

    @property
    def avg_rs_occupancy(self) -> float:
        if not self.rs_occupancy_samples:
            return 0.0
        return self.rs_occupancy_sum / self.rs_occupancy_samples

    @property
    def avg_branch_resolution_latency(self) -> float:
        if not self.retired_mispredicted_branches:
            return 0.0
        return (self.branch_resolution_latency_sum
                / self.retired_mispredicted_branches)

    @property
    def branch_misprediction_rate(self) -> float:
        if not self.retired_branches:
            return 0.0
        return self.retired_mispredicted_branches / self.retired_branches

    def load_integration_rate(self) -> float:
        """Fraction of retired loads that integrated."""
        loads = (self.retired_by_type[IntegrationType.LOAD_SP]
                 + self.retired_by_type[IntegrationType.LOAD_OTHER])
        if not loads:
            return 0.0
        integrated = (self.integration_by_type[IntegrationType.LOAD_SP]
                      + self.integration_by_type[IntegrationType.LOAD_OTHER])
        return integrated / loads

    def stack_load_integration_rate(self) -> float:
        loads = self.retired_by_type[IntegrationType.LOAD_SP]
        if not loads:
            return 0.0
        return self.integration_by_type[IntegrationType.LOAD_SP] / loads

    def distance_fraction_within(self, limit: int) -> float:
        """Fraction of integrations whose producer was renamed within
        ``limit`` dynamic instructions."""
        if not self.integrated:
            return 0.0
        within = sum(count for bucket, count in self.integration_distance.items()
                     if bucket <= limit)
        return within / self.integrated

    def status_fraction(self, status: ResultStatus) -> float:
        if not self.integrated:
            return 0.0
        return self.integration_status[status] / self.integrated

    def refcount_fraction_at_most(self, limit: int) -> float:
        if not self.integrated:
            return 0.0
        within = sum(count for rc, count in self.integration_refcount.items()
                     if rc <= limit)
        return within / self.integrated

    # ------------------------------------------------------------------
    # lossless recombination of per-slice statistics
    # ------------------------------------------------------------------
    def merge(self, other: "SimStats") -> "SimStats":
        """Combine two runs' counters losslessly into a new :class:`SimStats`.

        Every raw counter is a sum (including the occupancy/latency
        accumulator + sample pairs, so the derived averages recombine
        correctly); the histogram ``Counter`` fields add element-wise.  The
        operation is associative with ``SimStats()`` as identity, which is
        what lets sharded simulation merge per-slice statistics in any
        grouping and get the same result.  Identification fields
        (``benchmark``/``config_name``) keep the first non-empty value.
        """
        merged = SimStats()
        for f in dataclasses.fields(self):
            mine = getattr(self, f.name)
            theirs = getattr(other, f.name)
            if isinstance(mine, Counter):
                total: Counter = Counter(mine)
                total.update(theirs)
                setattr(merged, f.name, total)
            elif isinstance(mine, str):
                setattr(merged, f.name, mine or theirs)
            else:
                setattr(merged, f.name, mine + theirs)
        return merged

    @classmethod
    def merge_all(cls, parts: "Iterable[SimStats]") -> "SimStats":
        """Fold :meth:`merge` over ``parts`` (empty input -> identity)."""
        merged = cls()
        for part in parts:
            merged = merged.merge(part)
        return merged

    # ------------------------------------------------------------------
    # canonical serialization (used by the on-disk result cache)
    # ------------------------------------------------------------------
    #: Counter fields keyed by an enum (serialized via the enum value).
    _ENUM_COUNTERS = {
        "integration_by_type": IntegrationType,
        "reverse_by_type": IntegrationType,
        "integration_status": ResultStatus,
        "retired_by_type": IntegrationType,
    }
    #: Counter fields keyed by a plain int.
    _INT_COUNTERS = ("integration_distance", "integration_refcount")
    #: Counter fields keyed by a plain string (deserialized back into a
    #: Counter, not left as a bare dict).
    _STR_COUNTERS = ("cpi_stack",)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON rendering: counters become {key: count} dicts."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Counter):
                if f.name in self._ENUM_COUNTERS:
                    out[f.name] = {key.value: count
                                   for key, count in value.items()}
                else:
                    out[f.name] = {str(key): count
                                   for key, count in value.items()}
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimStats":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        field_names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - field_names
        if unknown:
            raise ValueError(f"unknown SimStats fields: {sorted(unknown)}")
        kwargs: Dict[str, Any] = {}
        for name, value in data.items():
            if name in cls._ENUM_COUNTERS:
                enum_cls = cls._ENUM_COUNTERS[name]
                kwargs[name] = Counter({enum_cls(key): count
                                        for key, count in value.items()})
            elif name in cls._INT_COUNTERS:
                kwargs[name] = Counter({int(key): count
                                        for key, count in value.items()})
            elif name in cls._STR_COUNTERS:
                kwargs[name] = Counter({str(key): count
                                        for key, count in value.items()})
            else:
                kwargs[name] = value
        return cls(**kwargs)

    # ------------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Compact dictionary used by the experiment reporters."""
        return {
            "benchmark": self.benchmark,
            "config": self.config_name,
            "cycles": self.cycles,
            "retired": self.retired,
            "ipc": round(self.ipc, 4),
            "integration_rate": round(self.integration_rate, 4),
            "direct_rate": round(self.direct_integration_rate, 4),
            "reverse_rate": round(self.reverse_integration_rate, 4),
            "mis_integrations_per_million": round(
                self.mis_integrations_per_million, 1),
            "branch_resolution_latency": round(
                self.avg_branch_resolution_latency, 2),
            "avg_rs_occupancy": round(self.avg_rs_occupancy, 2),
        }


def distance_bucket(distance: int) -> int:
    """Map a raw integration distance to its histogram bucket."""
    for bucket in DISTANCE_BUCKETS:
        if distance <= bucket:
            return bucket
    return DISTANCE_BUCKETS[-1] * 4
