"""Load/store queue, store-to-load forwarding, and speculative-load
disambiguation with a collision history table.

Loads issue speculatively in the presence of older stores with unresolved
addresses.  When a store later resolves to an address that a younger,
already-executed load read, the processor takes a full squash from that load
and the collision history table (CHT) learns the load's PC so future
instances wait for older store addresses to resolve (paper Section 3.1).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.functional.memory import SparseMemory
from repro.isa.instruction import DynInst
from repro.isa.opcodes import is_load, is_store
from repro.isa.program import INST_SIZE


class CollisionHistoryTable:
    """Direct-mapped table of load PCs that have caused memory-order
    violations; a hit makes the load wait for older store addresses."""

    def __init__(self, entries: int = 256):
        self.entries = entries
        self._tags: List[Optional[int]] = [None] * entries
        self.trainings = 0
        self.hits = 0

    def _index(self, pc: int) -> int:
        return (pc // INST_SIZE) % self.entries

    def predicts_collision(self, pc: int) -> bool:
        hit = self._tags[self._index(pc)] == pc
        if hit:
            self.hits += 1
        return hit

    def train(self, pc: int) -> None:
        self.trainings += 1
        self._tags[self._index(pc)] = pc


class _MemEntry:
    __slots__ = ("dyn", "is_store", "addr", "data_ready", "executed")

    def __init__(self, dyn: DynInst, is_store_op: bool):
        self.dyn = dyn
        self.is_store = is_store_op
        self.addr: Optional[int] = None
        self.data_ready = False
        self.executed = False


class LoadStoreQueue:
    """The in-order queue of in-flight memory operations.

    Entries are allocated at rename (program order) and removed at
    retirement or squash, so ordering checks can compare positions by
    sequence number.
    """

    def __init__(self, size: int = 64):
        self.size = size
        self._entries: List[_MemEntry] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def has_space(self, count: int = 1) -> bool:
        return len(self._entries) + count <= self.size

    def insert(self, dyn: DynInst) -> None:
        if not self.has_space():
            raise RuntimeError("LSQ overflow")
        entry = _MemEntry(dyn, is_store(dyn.op))
        dyn.lsq_index = True
        self._entries.append(entry)

    def remove(self, dyn: DynInst) -> None:
        self._entries = [e for e in self._entries if e.dyn.seq != dyn.seq]

    def squash(self, squashed_seqs: set) -> int:
        before = len(self._entries)
        self._entries = [e for e in self._entries
                         if e.dyn.seq not in squashed_seqs]
        return before - len(self._entries)

    def _find(self, dyn: DynInst) -> Optional[_MemEntry]:
        for entry in self._entries:
            if entry.dyn.seq == dyn.seq:
                return entry
        return None

    # ------------------------------------------------------------------
    # store side
    # ------------------------------------------------------------------
    def resolve_store(self, dyn: DynInst, addr: int) -> List[DynInst]:
        """Record a store's resolved address and data.

        Returns the younger loads that already executed against the same
        word -- each is a memory-order violation requiring a squash.
        """
        entry = self._find(dyn)
        if entry is None:
            return []
        entry.addr = SparseMemory.align(addr)
        entry.data_ready = True
        entry.executed = True
        violations = []
        for other in self._entries:
            if (not other.is_store and other.executed
                    and other.dyn.seq > dyn.seq
                    and other.addr == entry.addr):
                violations.append(other.dyn)
        violations.sort(key=lambda d: d.seq)
        return violations

    # ------------------------------------------------------------------
    # load side
    # ------------------------------------------------------------------
    def record_load(self, dyn: DynInst, addr: int) -> None:
        entry = self._find(dyn)
        if entry is not None:
            entry.addr = SparseMemory.align(addr)
            entry.executed = True

    def forward_from(self, dyn: DynInst, addr: int
                     ) -> Tuple[Optional[DynInst], bool]:
        """Find the youngest older store to the same word.

        Returns ``(store, data_ready)`` -- ``store`` is ``None`` when no
        older store matches.  ``data_ready`` is False when the matching
        store has not produced its data yet (the load must wait).
        """
        aligned = SparseMemory.align(addr)
        best: Optional[_MemEntry] = None
        for entry in self._entries:
            if (entry.is_store and entry.dyn.seq < dyn.seq
                    and entry.addr == aligned):
                if best is None or entry.dyn.seq > best.dyn.seq:
                    best = entry
        if best is None:
            return None, True
        return best.dyn, best.data_ready

    def older_stores_unresolved(self, dyn: DynInst) -> bool:
        """True when any older store has not yet resolved its address."""
        for entry in self._entries:
            if (entry.is_store and entry.dyn.seq < dyn.seq
                    and entry.addr is None):
                return True
        return False

    def older_store_conflict_possible(self, dyn: DynInst, addr: int) -> bool:
        """True when an older store either matches the address or is still
        unresolved (used by conservative, CHT-stalled loads)."""
        aligned = SparseMemory.align(addr)
        for entry in self._entries:
            if entry.is_store and entry.dyn.seq < dyn.seq:
                if entry.addr is None or entry.addr == aligned:
                    return True
        return False
